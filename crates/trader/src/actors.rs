//! Simulator actors: a trader shard and an importer with a lookup
//! cache, wired together over the deterministic simulator.
//!
//! A [`TraderActor`] serves one shard of the domain's offer space. On
//! withdraw or modify it multicasts an [`Invalidation`] note to the
//! cache-coherence group (traders + importers) through a reliable
//! `odp_groupcomm::GroupEngine`, so importer caches converge without
//! polling. An [`ImporterActor`] runs a lookup workload: cache hits
//! resolve locally at zero latency; misses pay the round-trip to the
//! owning shard. Both record the metrics the acceptance experiments
//! read: the `lookup_latency` histogram and the `cache_hit_rate`
//! pseudo-histogram (1 µs per hit, 0 µs per miss, so its mean in
//! microseconds *is* the hit rate), plus plain counters.

use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_groupcomm::membership::View;
use odp_groupcomm::multicast::{GcMsg, GroupEngine, Ordering, Reliability, Step};
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::qos::QosSpec;
use odp_telemetry::span::{Carrier, SpanContext};

use crate::cache::LookupCache;
use crate::offer::{OfferId, ServiceOffer, ServiceType};
use crate::select::{match_offers, select, SelectionLoad, SelectionPolicy};
use crate::store::{HashRing, OfferStore};

/// Why a cached entry went stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationReason {
    /// The exporter withdrew the offer.
    Withdrawn,
    /// The exporter re-advertised with different QoS.
    Modified,
    /// The type's offers moved to a different shard (ring change), so
    /// resolutions cached against the old owner may be stale.
    Rebalanced,
}

/// The cache-coherence note traders multicast on withdraw/modify.
#[derive(Debug, Clone, PartialEq)]
pub struct Invalidation {
    /// The service type whose cached resolutions are stale.
    pub service_type: ServiceType,
    /// What happened.
    pub reason: InvalidationReason,
}

/// Messages exchanged by traders and importers.
#[derive(Debug, Clone)]
pub enum TraderMsg {
    /// Exporter → trader: advertise an offer.
    Export(ServiceOffer),
    /// Exporter → trader: withdraw an offer.
    Withdraw(OfferId),
    /// Exporter → trader: replace an offer's QoS.
    Modify(OfferId, QosSpec),
    /// Importer → trader: resolve a service type under a QoS
    /// requirement.
    Lookup {
        /// Correlation id, unique per importer.
        call: u64,
        /// The wanted type.
        service_type: ServiceType,
        /// The importer's requirement.
        required: QosSpec,
        /// Piggybacked telemetry span (the importer's `trader.import`
        /// root), if the importer has telemetry on.
        span: Option<SpanContext>,
    },
    /// Trader → importer: the offers that satisfied the requirement
    /// (selection-policy-ranked; best first).
    LookupReply {
        /// Correlation id from the lookup.
        call: u64,
        /// The resolved type.
        service_type: ServiceType,
        /// Satisfying offers, best first; empty = no match.
        resolved: Vec<ServiceOffer>,
        /// Piggybacked telemetry span (the trader's `trader.serve`
        /// child), if the trader minted one.
        span: Option<SpanContext>,
    },
    /// Operator → everyone: the trader ring changed. Traders rehome
    /// offers; importers re-route future lookups.
    ShardChange {
        /// Traders that joined the ring.
        added: Vec<NodeId>,
        /// Traders that left the ring.
        removed: Vec<NodeId>,
    },
    /// Trader → trader: an offer migrating to its new owner after a
    /// ring change.
    Transfer(ServiceOffer),
    /// Cache-coherence traffic (reliable multicast engine payloads).
    Gc(GcMsg<Invalidation>),
}

impl Carrier for TraderMsg {
    fn span(&self) -> Option<SpanContext> {
        match self {
            TraderMsg::Lookup { span, .. } | TraderMsg::LookupReply { span, .. } => *span,
            _ => None,
        }
    }

    fn set_span(&mut self, new: Option<SpanContext>) {
        if let TraderMsg::Lookup { span, .. } | TraderMsg::LookupReply { span, .. } = self {
            *span = new;
        }
    }
}

const TICK_TAG: u64 = 1;
const LOOKUP_TAG: u64 = 2;
const TICK_EVERY: SimDuration = SimDuration::from_millis(100);

/// One trader shard as a simulator actor.
pub struct TraderActor {
    store: OfferStore,
    engine: GroupEngine<Invalidation>,
    policy: SelectionPolicy,
    selection_load: SelectionLoad,
    ring: HashRing,
    rebalance_invalidations: bool,
    telemetry: bool,
    // Precomputed: exports arrive per message, and building the metric
    // name there would allocate on the delivery path.
    shard_counter: String,
}

impl TraderActor {
    /// A trader for node `me`, multicasting invalidations to
    /// `coherence_group` (traders + importers). The shard ring contains
    /// only `me`; deployments that rebalance use
    /// [`TraderActor::with_ring`].
    pub fn new(me: NodeId, coherence_group: View, policy: SelectionPolicy) -> Self {
        Self::with_ring(me, coherence_group, policy, HashRing::new([me]))
    }

    /// Like [`TraderActor::new`] but sharing the domain ring, so the
    /// trader can rehome offers when a [`TraderMsg::ShardChange`]
    /// arrives.
    pub fn with_ring(
        me: NodeId,
        coherence_group: View,
        policy: SelectionPolicy,
        ring: HashRing,
    ) -> Self {
        TraderActor {
            store: OfferStore::new(),
            engine: GroupEngine::new(me, coherence_group, Ordering::Fifo, Reliability::reliable()),
            policy,
            selection_load: SelectionLoad::new(),
            ring,
            rebalance_invalidations: true,
            telemetry: false,
            shard_counter: format!("trader.shard.{me}.offers"),
        }
    }

    /// Enables span telemetry. Off by default: minting spans draws from
    /// the actor's RNG stream, which would perturb existing seeded runs.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// The shard's store (assertions in tests).
    pub fn store(&self) -> &OfferStore {
        &self.store
    }

    /// The trader's view of the domain ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Fault injection for the coherence checker: when disabled, the
    /// trader rebalances shards *silently* — neither the old owner
    /// (after migrating offers out on a [`TraderMsg::ShardChange`]) nor
    /// the new owner (after adopting a [`TraderMsg::Transfer`])
    /// multicasts the `Rebalanced` invalidation. An importer whose
    /// lookup races the in-flight transfer then caches a stale (empty)
    /// resolution that nothing ever evicts — the exact bug the
    /// ROADMAP's "cache coherence under churn" item describes.
    /// Production code never calls this.
    pub fn set_rebalance_invalidations(&mut self, on: bool) {
        self.rebalance_invalidations = on;
    }

    fn flush(step: Step<Invalidation>, ctx: &mut dyn NetCtx<TraderMsg>) {
        for (to, msg) in step.outbound {
            ctx.send(to, TraderMsg::Gc(msg));
        }
    }

    fn invalidate(&mut self, note: Invalidation, ctx: &mut dyn NetCtx<TraderMsg>) {
        let step = self.engine.mcast(note, ctx.now());
        Self::flush(step, ctx);
    }
}

impl TraderActor {
    fn handle_start(&mut self, ctx: &mut dyn NetCtx<TraderMsg>) {
        ctx.set_timer(TICK_EVERY, TICK_TAG);
    }

    fn handle_message(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, from: NodeId, msg: TraderMsg) {
        match msg {
            TraderMsg::Export(offer) => {
                // A slow export can arrive after a ring change moved its
                // type to another shard; forward it to the owner rather
                // than stranding the offer here.
                let me = ctx.id();
                match self.ring.node_for(&offer.service_type) {
                    Some(owner) if owner != me => {
                        ctx.metrics().incr("trader.exports.forwarded");
                        ctx.send(owner, TraderMsg::Export(offer));
                    }
                    _ => {
                        ctx.metrics().incr("trader.exports");
                        ctx.metrics().add(&self.shard_counter, 1);
                        self.store.insert(offer);
                    }
                }
            }
            TraderMsg::Withdraw(id) => {
                if let Some(offer) = self.store.remove(id) {
                    ctx.metrics().incr("trader.withdrawals");
                    self.invalidate(
                        Invalidation {
                            service_type: offer.service_type,
                            reason: InvalidationReason::Withdrawn,
                        },
                        ctx,
                    );
                }
            }
            TraderMsg::Modify(id, qos) => {
                if self.store.modify_qos(id, qos) {
                    if let Some(service_type) = self.store.offer(id).map(|o| o.service_type.clone())
                    {
                        ctx.metrics().incr("trader.modifications");
                        self.invalidate(
                            Invalidation {
                                service_type,
                                reason: InvalidationReason::Modified,
                            },
                            ctx,
                        );
                    }
                }
            }
            TraderMsg::Lookup {
                call,
                service_type,
                required,
                span,
            } => {
                ctx.metrics().incr("trader.lookups");
                // Serve span: a child of the importer's import root,
                // open and closed here (service time is zero in the
                // simulator; the span marks where the work happened).
                let serve = match span.filter(|_| self.telemetry) {
                    Some(parent) => {
                        let serve = parent.child(ctx.rng());
                        ctx.span_open(serve.carrier(), "trader.serve");
                        ctx.span_close(serve.carrier());
                        Some(serve)
                    }
                    None => None,
                };
                let offers: Vec<ServiceOffer> = self
                    .store
                    .offers_of_type(&service_type)
                    .into_iter()
                    .cloned()
                    .collect();
                let mut matches = match_offers(&offers, &required);
                // Rank: the policy's pick first, the rest in store order
                // (importers cache the whole list and fail over down it).
                if let Some(best) = select(&matches, self.policy, &mut self.selection_load, None) {
                    matches.retain(|m| m.offer.id != best.offer.id);
                    matches.insert(0, best);
                }
                let resolved = matches.into_iter().map(|m| m.offer).collect();
                ctx.send(
                    from,
                    TraderMsg::LookupReply {
                        call,
                        service_type,
                        resolved,
                        span: serve,
                    },
                );
            }
            TraderMsg::ShardChange { added, removed } => {
                for t in &added {
                    self.ring.add(*t);
                }
                for t in &removed {
                    self.ring.remove(*t);
                }
                // Rehome: every held offer whose type now hashes
                // elsewhere migrates to its new owner, and the moved
                // types are invalidated so importers drop resolutions
                // cached against this shard.
                let me = ctx.id();
                let to_move: Vec<OfferId> = self
                    .store
                    .iter()
                    .filter(|o| self.ring.node_for(&o.service_type) != Some(me))
                    .map(|o| o.id)
                    .collect();
                let mut moved_types = std::collections::BTreeSet::new();
                for id in to_move {
                    let Some(offer) = self.store.remove(id) else {
                        continue;
                    };
                    let Some(owner) = self.ring.node_for(&offer.service_type) else {
                        continue;
                    };
                    ctx.metrics().incr("trader.transfers.out");
                    // Rebalances are rare ring reconfigurations, not
                    // per-delivery traffic.
                    // odp-check: allow(hot-path-alloc)
                    moved_types.insert(offer.service_type.clone());
                    ctx.send(owner, TraderMsg::Transfer(offer));
                }
                if self.rebalance_invalidations {
                    for service_type in moved_types {
                        self.invalidate(
                            Invalidation {
                                service_type,
                                reason: InvalidationReason::Rebalanced,
                            },
                            ctx,
                        );
                    }
                }
            }
            TraderMsg::Transfer(offer) => {
                // Double churn: the type moved again while this transfer
                // was in flight, so pass the offer along to its current
                // owner instead of adopting it.
                let me = ctx.id();
                if let Some(owner) = self.ring.node_for(&offer.service_type) {
                    if owner != me {
                        ctx.metrics().incr("trader.transfers.forwarded");
                        ctx.send(owner, TraderMsg::Transfer(offer));
                        return;
                    }
                }
                ctx.metrics().incr("trader.transfers.in");
                let service_type = offer.service_type.clone();
                self.store.place(offer);
                // Announce the adopted type: importers that cached an
                // empty resolution while the offer was in flight (or a
                // resolution against the old owner) must re-resolve.
                if self.rebalance_invalidations {
                    self.invalidate(
                        Invalidation {
                            service_type,
                            reason: InvalidationReason::Rebalanced,
                        },
                        ctx,
                    );
                }
            }
            TraderMsg::Gc(gc) => {
                let step = self.engine.on_message(from, gc, ctx.now());
                // Traders originate invalidations; delivered notes from
                // peer traders need no local action (no cache here).
                Self::flush(step, ctx);
            }
            // Replies are importer-bound; a trader receiving one is a
            // misrouted duplicate.
            TraderMsg::LookupReply { .. } => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, tag: u64) {
        if tag == TICK_TAG {
            let step = self.engine.on_tick(ctx.now());
            Self::flush(step, ctx);
            ctx.set_timer(TICK_EVERY, TICK_TAG);
        }
    }
}

/// Sim backend: `&mut Ctx` coerces to `&mut dyn NetCtx`, whose methods
/// forward 1:1, so seeded runs match the pre-`odp-net` adapter exactly.
impl Actor<TraderMsg> for TraderActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TraderMsg>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TraderMsg>, from: NodeId, msg: TraderMsg) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TraderMsg>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

/// Real-transport backends drive the same handlers.
impl TransportActor<TraderMsg> for TraderActor {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<TraderMsg>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, from: NodeId, msg: TraderMsg) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

/// One scripted lookup in an importer's workload.
#[derive(Debug, Clone)]
pub struct LookupJob {
    /// When to issue it.
    pub at: SimDuration,
    /// What to ask for.
    pub service_type: ServiceType,
    /// Under which requirement.
    pub required: QosSpec,
}

/// Counters an importer accumulates (read back by tests/experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImporterStats {
    /// Lookups resolved from the local cache.
    pub cache_hits: u64,
    /// Lookups that paid a trader round-trip.
    pub cold_lookups: u64,
    /// Replies that resolved at least one offer.
    pub resolved: u64,
    /// Replies with no satisfying offer.
    pub unresolved: u64,
}

/// An importing client as a simulator actor.
pub struct ImporterActor {
    ring: HashRing,
    cache: LookupCache,
    engine: GroupEngine<Invalidation>,
    jobs: Vec<LookupJob>,
    /// call → (type, issue time, the type's invalidation epoch at
    /// issue, the `trader.import` root span if telemetry is on).
    pending: std::collections::BTreeMap<u64, (ServiceType, SimTime, u64, Option<SpanContext>)>,
    /// Per-type count of invalidations seen. A reply that raced an
    /// invalidation (issued under an older epoch) is *used* but not
    /// *cached*: the result was valid when computed, but caching it
    /// would resurrect an entry the invalidation just evicted.
    epochs: std::collections::BTreeMap<ServiceType, u64>,
    next_call: u64,
    stats: ImporterStats,
    telemetry: bool,
    /// Optional cooperation-event bus: delivered invalidations are
    /// republished as [`CoopKind::ServiceInvalidated`] events so local
    /// observers (awareness displays, binding monitors) learn *why*
    /// their cached resolutions went stale.
    bus: Option<EventBus>,
    /// The most recent resolution per type (tests bind through this).
    pub last_resolved: std::collections::BTreeMap<ServiceType, Vec<ServiceOffer>>,
}

impl ImporterActor {
    /// An importer for node `me`: `ring` routes a type to its shard's
    /// trader (updated on [`TraderMsg::ShardChange`]), `ttl` bounds
    /// cache staleness, `coherence_group` delivers invalidations,
    /// `jobs` is the scripted workload.
    pub fn new(
        me: NodeId,
        coherence_group: View,
        ttl: SimDuration,
        ring: HashRing,
        jobs: Vec<LookupJob>,
    ) -> Self {
        ImporterActor {
            ring,
            cache: LookupCache::new(ttl),
            engine: GroupEngine::new(me, coherence_group, Ordering::Fifo, Reliability::reliable()),
            jobs,
            pending: std::collections::BTreeMap::new(),
            epochs: std::collections::BTreeMap::new(),
            next_call: 0,
            stats: ImporterStats::default(),
            telemetry: false,
            bus: None,
            last_resolved: std::collections::BTreeMap::new(),
        }
    }

    /// Enables span telemetry. Off by default: minting spans draws from
    /// the actor's RNG stream, which would perturb existing seeded runs.
    pub fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Attaches a cooperation-event bus: every delivered invalidation is
    /// republished on it as a `trader.invalidated` event (artefact
    /// `svc/{type}`, actor = the multicasting trader).
    pub fn attach_bus(&mut self, bus: EventBus) {
        self.bus = Some(bus);
    }

    /// The attached bus, if any (observer stats, delivery counters).
    pub fn bus(&self) -> Option<&EventBus> {
        self.bus.as_ref()
    }

    fn epoch(&self, service_type: &ServiceType) -> u64 {
        self.epochs.get(service_type).copied().unwrap_or(0)
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ImporterStats {
        self.stats
    }

    /// The cache (tests assert on hit/miss/invalidation counts).
    pub fn cache(&self) -> &LookupCache {
        &self.cache
    }

    fn flush(step: Step<Invalidation>, ctx: &mut dyn NetCtx<TraderMsg>) {
        for (to, msg) in step.outbound {
            ctx.send(to, TraderMsg::Gc(msg));
        }
    }

    fn record_outcome(ctx: &mut dyn NetCtx<TraderMsg>, latency: SimDuration, hit: bool) {
        ctx.metrics().observe("lookup_latency", latency);
        // Mean of this histogram in milliseconds = cache hit rate: each
        // hit observes 1 ms, each miss 0 ms.
        ctx.metrics().observe(
            "cache_hit_rate",
            if hit {
                SimDuration::from_millis(1)
            } else {
                SimDuration::ZERO
            },
        );
        ctx.metrics().incr(if hit {
            "importer.cache.hits"
        } else {
            "importer.cache.misses"
        });
    }

    fn issue(&mut self, job: LookupJob, ctx: &mut dyn NetCtx<TraderMsg>) {
        if let Some(resolved) = self.cache.get(&job.service_type, ctx.now()) {
            // Served locally: zero added latency.
            self.stats.cache_hits += 1;
            if resolved.is_empty() {
                self.stats.unresolved += 1;
            } else {
                self.stats.resolved += 1;
            }
            self.last_resolved
                .insert(job.service_type.clone(), resolved);
            Self::record_outcome(ctx, SimDuration::ZERO, true);
            return;
        }
        self.stats.cold_lookups += 1;
        self.next_call += 1;
        let call = self.next_call;
        // Import span: the root of this lookup's trace, closed when the
        // reply is processed (or never, if the reply is lost — the
        // telemetry audit will flag the unclosed span).
        let root = if self.telemetry {
            let root = SpanContext::root(ctx.rng());
            ctx.span_open(root.carrier(), "trader.import");
            Some(root)
        } else {
            None
        };
        self.pending.insert(
            call,
            (
                job.service_type.clone(),
                ctx.now(),
                self.epoch(&job.service_type),
                root,
            ),
        );
        let Some(trader) = self.ring.node_for(&job.service_type) else {
            return;
        };
        ctx.send(
            trader,
            TraderMsg::Lookup {
                call,
                service_type: job.service_type,
                required: job.required,
                span: root,
            },
        );
    }
}

impl ImporterActor {
    fn handle_start(&mut self, ctx: &mut dyn NetCtx<TraderMsg>) {
        ctx.set_timer(TICK_EVERY, TICK_TAG);
        for (i, job) in self.jobs.iter().enumerate() {
            ctx.set_timer(job.at, LOOKUP_TAG + 1 + i as u64);
        }
    }

    fn handle_message(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, from: NodeId, msg: TraderMsg) {
        match msg {
            TraderMsg::LookupReply {
                call,
                service_type,
                resolved,
                span,
            } => {
                let Some((_, sent_at, issue_epoch, root)) = self.pending.remove(&call) else {
                    return; // stale duplicate
                };
                let latency = ctx.now().saturating_since(sent_at);
                // Reply span (a child of the trader's serve span), then
                // close the import root this reply completes.
                if self.telemetry {
                    if let Some(serve) = span {
                        let reply = serve.child(ctx.rng());
                        ctx.span_open(reply.carrier(), "trader.reply");
                        ctx.span_close(reply.carrier());
                    }
                    if let Some(root) = root {
                        ctx.span_close(root.carrier());
                    }
                }
                if resolved.is_empty() {
                    self.stats.unresolved += 1;
                } else {
                    self.stats.resolved += 1;
                }
                Self::record_outcome(ctx, latency, false);
                // The epoch guard: an invalidation for this type arrived
                // while the lookup was in flight, so the reply reflects
                // a store state the coherence protocol already declared
                // stale. Use it for this resolution, but do not cache.
                if issue_epoch == self.epoch(&service_type) {
                    self.cache
                        .put(service_type.clone(), resolved.clone(), ctx.now());
                } else {
                    ctx.metrics().incr("importer.cache.raced_reply");
                }
                self.last_resolved.insert(service_type, resolved);
            }
            TraderMsg::Gc(gc) => {
                let step = self.engine.on_message(from, gc, ctx.now());
                for delivery in &step.delivered {
                    let service_type = &delivery.payload.service_type;
                    // Invalidations are rare coherence events; the epoch
                    // key must be owned.
                    // odp-check: allow(hot-path-alloc)
                    *self.epochs.entry(service_type.clone()).or_insert(0) += 1;
                    if self.cache.invalidate(service_type) {
                        ctx.metrics().incr("importer.cache.invalidated");
                    }
                    if let Some(bus) = &mut self.bus {
                        let published = bus.publish(CoopEvent::broadcast(
                            from,
                            // As above: invalidations are rare.
                            // odp-check: allow(hot-path-alloc)
                            format!("svc/{service_type}"),
                            ctx.now(),
                            CoopKind::ServiceInvalidated {
                                // odp-check: allow(hot-path-alloc)
                                reason: format!("{:?}", delivery.payload.reason),
                            },
                        ));
                        ctx.metrics()
                            .add("importer.coop.invalidations", published.len() as u64);
                    }
                }
                Self::flush(step, ctx);
            }
            TraderMsg::ShardChange { added, removed } => {
                // Conservative eviction: any type whose owner moves —
                // cached *or* with a lookup in flight to the old owner —
                // is treated as invalidated immediately rather than
                // waiting for the rebalance multicast, so a reply
                // computed against the pre-change ring can never be
                // cached after the change.
                let affected: std::collections::BTreeSet<ServiceType> = self
                    .cache
                    .entries()
                    .map(|(t, _, _)| t.clone())
                    .chain(self.pending.values().map(|(t, ..)| t.clone()))
                    .collect();
                let owners_before: Vec<(ServiceType, Option<NodeId>)> = affected
                    .into_iter()
                    .map(|t| {
                        let owner = self.ring.node_for(&t);
                        (t, owner)
                    })
                    .collect();
                for t in &added {
                    self.ring.add(*t);
                }
                for t in &removed {
                    self.ring.remove(*t);
                }
                for (service_type, owner) in owners_before {
                    if self.ring.node_for(&service_type) != owner {
                        // Shard changes are rare ring reconfigurations.
                        // odp-check: allow(hot-path-alloc)
                        *self.epochs.entry(service_type.clone()).or_insert(0) += 1;
                        if self.cache.invalidate(&service_type) {
                            ctx.metrics().incr("importer.cache.invalidated");
                        }
                    }
                }
            }
            // Importers ignore trader-side traffic.
            TraderMsg::Export(_)
            | TraderMsg::Withdraw(_)
            | TraderMsg::Modify(..)
            | TraderMsg::Transfer(_)
            | TraderMsg::Lookup { .. } => {}
        }
    }

    fn handle_timer(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, tag: u64) {
        if tag == TICK_TAG {
            let step = self.engine.on_tick(ctx.now());
            Self::flush(step, ctx);
            ctx.set_timer(TICK_EVERY, TICK_TAG);
            return;
        }
        let idx = (tag - LOOKUP_TAG - 1) as usize;
        if let Some(job) = self.jobs.get(idx).cloned() {
            self.issue(job, ctx);
        }
    }
}

/// Sim backend: `&mut Ctx` coerces to `&mut dyn NetCtx`, whose methods
/// forward 1:1, so seeded runs match the pre-`odp-net` adapter exactly.
impl Actor<TraderMsg> for ImporterActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TraderMsg>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TraderMsg>, from: NodeId, msg: TraderMsg) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TraderMsg>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

/// Real-transport backends drive the same handlers.
impl TransportActor<TraderMsg> for ImporterActor {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<TraderMsg>) {
        self.handle_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, from: NodeId, msg: TraderMsg) {
        self.handle_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<TraderMsg>, _timer: TimerId, tag: u64) {
        self.handle_timer(ctx, tag);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::SessionKind;
    use crate::store::HashRing;
    use odp_groupcomm::membership::GroupId;
    use odp_sim::prelude::{ActorHandle, SimBuilder, Until};
    use odp_sim::sim::Sim;
    use odp_telemetry::span::{CLOSE, OPEN};

    const T1: NodeId = NodeId(0);
    const T2: NodeId = NodeId(1);
    const IMP: NodeId = NodeId(10);
    const EXP: NodeId = NodeId(20);

    fn st() -> ServiceType {
        ServiceType::new("video/conference")
    }

    fn view() -> View {
        View::initial(GroupId(7), [T1, T2, IMP])
    }

    fn offer() -> ServiceOffer {
        // In the actor protocol the *exporter* owns id uniqueness (the
        // shards are distributed and cannot coordinate a counter).
        let mut o = ServiceOffer::session(st(), SessionKind::Conference, QosSpec::video(), EXP);
        o.id = OfferId(1);
        o
    }

    fn jobs(times_ms: &[u64]) -> Vec<LookupJob> {
        times_ms
            .iter()
            .map(|ms| LookupJob {
                at: SimDuration::from_millis(*ms),
                service_type: st(),
                required: QosSpec::video(),
            })
            .collect()
    }

    fn build(jobs_ms: &[u64], ttl_ms: u64) -> Sim<TraderMsg> {
        let mut sim = SimBuilder::new(42).build();
        sim.add_actor(T1, TraderActor::new(T1, view(), SelectionPolicy::FirstFit));
        sim.add_actor(T2, TraderActor::new(T2, view(), SelectionPolicy::FirstFit));
        sim.add_actor(
            IMP,
            ImporterActor::new(
                IMP,
                view(),
                SimDuration::from_millis(ttl_ms),
                HashRing::new([T1, T2]),
                jobs(jobs_ms),
            ),
        );
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(SimTime::ZERO, EXP, shard, TraderMsg::Export(offer()));
        sim
    }

    #[test]
    fn telemetry_spans_form_a_well_formed_import_chain() {
        // One cold lookup with telemetry on everywhere: the importer
        // mints the trader.import root, the owning shard parents a
        // trader.serve under it, and the reply closes the chain with a
        // trader.reply leaf.
        let mut sim = SimBuilder::new(42).build();
        let mut t1 = TraderActor::new(T1, view(), SelectionPolicy::FirstFit);
        t1.set_telemetry(true);
        let mut t2 = TraderActor::new(T2, view(), SelectionPolicy::FirstFit);
        t2.set_telemetry(true);
        sim.add_actor(T1, t1);
        sim.add_actor(T2, t2);
        let mut imp = ImporterActor::new(
            IMP,
            view(),
            SimDuration::from_millis(10_000),
            HashRing::new([T1, T2]),
            jobs(&[10]),
        );
        imp.set_telemetry(true);
        sim.add_actor(IMP, imp);
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(SimTime::ZERO, EXP, shard, TraderMsg::Export(offer()));
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));

        let collector = odp_telemetry::collector::Collector::from_trace(sim.trace());
        assert_eq!(collector.well_formed(), Ok(()), "span audit must pass");
        assert_eq!(collector.len(), 1, "one lookup, one trace");
        let dag = collector.traces().next().unwrap().1;
        assert_eq!(dag.len(), 3);
        let kinds: Vec<&str> = dag
            .critical_path()
            .iter()
            .map(|s| s.kind.as_str())
            .collect();
        assert_eq!(kinds, ["trader.import", "trader.serve", "trader.reply"]);
    }

    #[test]
    fn telemetry_off_emits_no_trader_span_events() {
        let mut sim = build(&[10], 10_000);
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));
        assert_eq!(sim.trace().with_label(OPEN).count(), 0);
        assert_eq!(sim.trace().with_label(CLOSE).count(), 0);
    }

    #[test]
    fn cold_then_cached_lookup_hit_rates_and_latencies() {
        let mut sim = build(&[10, 20, 30], 10_000);
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));
        let imp: &ImporterActor = sim.get(ActorHandle::of(IMP)).unwrap();
        let stats = imp.stats();
        assert_eq!(stats.cold_lookups, 1, "first lookup misses");
        assert_eq!(stats.cache_hits, 2, "subsequent lookups hit");
        assert_eq!(stats.resolved, 3);
        assert_eq!(sim.metrics().counter("importer.cache.hits"), 2);
        assert_eq!(sim.metrics().counter("importer.cache.misses"), 1);
        let lat = sim
            .metrics()
            .histogram("lookup_latency")
            .expect("latency histogram recorded");
        assert_eq!(lat.len(), 3);
        // Cold lookup pays network latency; hits are free.
        let mut lat = lat.clone();
        assert!(lat.max() > SimDuration::ZERO);
        assert_eq!(lat.min(), SimDuration::ZERO);
        let hit_rate = sim
            .metrics()
            .histogram("cache_hit_rate")
            .expect("hit-rate histogram recorded")
            .mean();
        // Two hits, one miss → mean 2/3 ms ≈ 666 µs.
        assert_eq!(hit_rate.as_micros(), 666);
    }

    #[test]
    fn ttl_expiry_forces_a_fresh_round_trip() {
        // Lookups at 10ms and 900ms with a 200ms TTL: both go cold.
        let mut sim = build(&[10, 900], 200);
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));
        let imp: &ImporterActor = sim.get(ActorHandle::of(IMP)).unwrap();
        assert_eq!(imp.stats().cold_lookups, 2);
        assert_eq!(imp.stats().cache_hits, 0);
        assert_eq!(imp.cache().stats().expiries, 1);
    }

    #[test]
    fn withdraw_invalidates_importer_caches() {
        let mut sim = build(&[10, 1500], 60_000);
        // Withdraw the (sole) offer at t=1s; the trader multicasts an
        // invalidation, so the importer's 1.5s lookup must go cold and
        // resolve to nothing.
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(
            SimTime::ZERO + SimDuration::from_secs(1),
            EXP,
            shard,
            TraderMsg::Withdraw(OfferId(1)),
        );
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(3)));
        let imp: &ImporterActor = sim.get(ActorHandle::of(IMP)).unwrap();
        assert_eq!(
            sim.metrics().counter("importer.cache.invalidated"),
            1,
            "the multicast note must evict the cached type"
        );
        assert_eq!(
            imp.stats().cold_lookups,
            2,
            "post-withdraw lookup goes cold"
        );
        assert_eq!(imp.stats().unresolved, 1, "nothing left to resolve");
        assert!(imp.last_resolved.get(&st()).unwrap().is_empty());
    }

    #[test]
    fn withdraw_republishes_on_an_attached_coop_bus() {
        let mut sim = SimBuilder::new(42).build();
        sim.add_actor(T1, TraderActor::new(T1, view(), SelectionPolicy::FirstFit));
        sim.add_actor(T2, TraderActor::new(T2, view(), SelectionPolicy::FirstFit));
        let mut imp = ImporterActor::new(
            IMP,
            view(),
            SimDuration::from_millis(60_000),
            HashRing::new([T1, T2]),
            jobs(&[10]),
        );
        // A local observer (e.g. the importer's awareness display).
        let mut bus = EventBus::new();
        bus.register(NodeId(99), 0.0);
        imp.attach_bus(bus);
        sim.add_actor(IMP, imp);
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(SimTime::ZERO, EXP, shard, TraderMsg::Export(offer()));
        sim.inject(
            SimTime::ZERO + SimDuration::from_secs(1),
            EXP,
            shard,
            TraderMsg::Withdraw(OfferId(1)),
        );
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));
        assert_eq!(
            sim.metrics().counter("importer.coop.invalidations"),
            1,
            "the withdrawal reaches the local observer as a coop event"
        );
        let imp: &ImporterActor = sim.get(ActorHandle::of(IMP)).unwrap();
        let bus = imp.bus().unwrap();
        assert_eq!(bus.published(), 1);
        assert_eq!(bus.stats(NodeId(99)).unwrap().received, 1);
    }

    #[test]
    fn modify_also_invalidates() {
        let mut sim = build(&[10], 60_000);
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(
            SimTime::ZERO + SimDuration::from_secs(1),
            EXP,
            shard,
            TraderMsg::Modify(OfferId(1), QosSpec::mobile_video()),
        );
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(2)));
        assert_eq!(sim.metrics().counter("importer.cache.invalidated"), 1);
        assert_eq!(sim.metrics().counter("trader.modifications"), 1);
    }

    #[test]
    fn rebalancing_migrates_offers_and_invalidates_caches() {
        // Both traders share the ring; the offer's owner is removed
        // from the ring mid-run, so the offer must migrate to the
        // survivor and the importer's cached resolution must go stale.
        let ring = || HashRing::new([T1, T2]);
        let owner = ring().node_for(&st()).unwrap();
        let survivor = if owner == T1 { T2 } else { T1 };
        let mut sim = SimBuilder::new(42).build();
        for t in [T1, T2] {
            sim.add_actor(
                t,
                TraderActor::with_ring(t, view(), SelectionPolicy::FirstFit, ring()),
            );
        }
        sim.add_actor(
            IMP,
            ImporterActor::new(
                IMP,
                view(),
                SimDuration::from_secs(60),
                ring(),
                jobs(&[10, 2000]),
            ),
        );
        sim.inject(SimTime::ZERO, EXP, owner, TraderMsg::Export(offer()));
        let change = || TraderMsg::ShardChange {
            added: vec![],
            removed: vec![owner],
        };
        for node in [T1, T2, IMP] {
            sim.inject(
                SimTime::ZERO + SimDuration::from_secs(1),
                NodeId(99),
                node,
                change(),
            );
        }
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(4)));
        assert_eq!(sim.metrics().counter("trader.transfers.out"), 1);
        assert_eq!(sim.metrics().counter("trader.transfers.in"), 1);
        let surv: &TraderActor = sim.get(ActorHandle::of(survivor)).unwrap();
        assert_eq!(surv.store().load().offers, 1, "offer migrated");
        let old: &TraderActor = sim.get(ActorHandle::of(owner)).unwrap();
        assert_eq!(old.store().load().offers, 0, "old owner drained");
        let imp: &ImporterActor = sim.get(ActorHandle::of(IMP)).unwrap();
        assert_eq!(
            imp.stats().cold_lookups,
            2,
            "post-rebalance lookup must go cold, not serve the stale entry"
        );
        assert_eq!(imp.stats().resolved, 2, "both lookups resolved the offer");
        assert!(
            !imp.last_resolved.get(&st()).unwrap().is_empty(),
            "the migrated offer is still discoverable"
        );
    }

    #[test]
    fn shard_export_counters_track_placement() {
        let mut sim = build(&[], 1000);
        // Export a second type; whichever shard owns it gets the count.
        let other = ServiceType::new("audio/talk");
        let ring = HashRing::new([T1, T2]);
        let mut audio = ServiceOffer::session(
            other.clone(),
            SessionKind::Conference,
            QosSpec::audio(),
            EXP,
        );
        audio.id = OfferId(2);
        sim.inject(
            SimTime::ZERO,
            EXP,
            ring.node_for(&other).unwrap(),
            TraderMsg::Export(audio),
        );
        sim.run(Until::At(SimTime::ZERO + SimDuration::from_secs(1)));
        assert_eq!(sim.metrics().counter("trader.exports"), 2);
        let total: u64 = [T1, T2]
            .iter()
            .map(|t| sim.metrics().counter(&format!("trader.shard.{t}.offers")))
            .sum();
        assert_eq!(total, 2, "every export lands on exactly one shard counter");
    }
}
