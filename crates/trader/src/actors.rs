//! Simulator actors: a trader shard and an importer with a lookup
//! cache, wired together over the deterministic simulator.
//!
//! A [`TraderActor`] serves one shard of the domain's offer space. On
//! withdraw or modify it multicasts an [`Invalidation`] note to the
//! cache-coherence group (traders + importers) through a reliable
//! `odp_groupcomm::GroupEngine`, so importer caches converge without
//! polling. An [`ImporterActor`] runs a lookup workload: cache hits
//! resolve locally at zero latency; misses pay the round-trip to the
//! owning shard. Both record the metrics the acceptance experiments
//! read: the `lookup_latency` histogram and the `cache_hit_rate`
//! pseudo-histogram (1 µs per hit, 0 µs per miss, so its mean in
//! microseconds *is* the hit rate), plus plain counters.

use odp_groupcomm::membership::View;
use odp_groupcomm::multicast::{GcMsg, GroupEngine, Ordering, Reliability, Step};
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::qos::QosSpec;

use crate::cache::LookupCache;
use crate::offer::{OfferId, ServiceOffer, ServiceType};
use crate::select::{match_offers, select, SelectionLoad, SelectionPolicy};
use crate::store::OfferStore;

/// Why a cached entry went stale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvalidationReason {
    /// The exporter withdrew the offer.
    Withdrawn,
    /// The exporter re-advertised with different QoS.
    Modified,
}

/// The cache-coherence note traders multicast on withdraw/modify.
#[derive(Debug, Clone, PartialEq)]
pub struct Invalidation {
    /// The service type whose cached resolutions are stale.
    pub service_type: ServiceType,
    /// What happened.
    pub reason: InvalidationReason,
}

/// Messages exchanged by traders and importers.
#[derive(Debug, Clone)]
pub enum TraderMsg {
    /// Exporter → trader: advertise an offer.
    Export(ServiceOffer),
    /// Exporter → trader: withdraw an offer.
    Withdraw(OfferId),
    /// Exporter → trader: replace an offer's QoS.
    Modify(OfferId, QosSpec),
    /// Importer → trader: resolve a service type under a QoS
    /// requirement.
    Lookup {
        /// Correlation id, unique per importer.
        call: u64,
        /// The wanted type.
        service_type: ServiceType,
        /// The importer's requirement.
        required: QosSpec,
    },
    /// Trader → importer: the offers that satisfied the requirement
    /// (selection-policy-ranked; best first).
    LookupReply {
        /// Correlation id from the lookup.
        call: u64,
        /// The resolved type.
        service_type: ServiceType,
        /// Satisfying offers, best first; empty = no match.
        resolved: Vec<ServiceOffer>,
    },
    /// Cache-coherence traffic (reliable multicast engine payloads).
    Gc(GcMsg<Invalidation>),
}

const TICK_TAG: u64 = 1;
const LOOKUP_TAG: u64 = 2;
const TICK_EVERY: SimDuration = SimDuration::from_millis(100);

/// One trader shard as a simulator actor.
pub struct TraderActor {
    store: OfferStore,
    engine: GroupEngine<Invalidation>,
    policy: SelectionPolicy,
    selection_load: SelectionLoad,
}

impl TraderActor {
    /// A trader for node `me`, multicasting invalidations to
    /// `coherence_group` (traders + importers).
    pub fn new(me: NodeId, coherence_group: View, policy: SelectionPolicy) -> Self {
        TraderActor {
            store: OfferStore::new(),
            engine: GroupEngine::new(me, coherence_group, Ordering::Fifo, Reliability::reliable()),
            policy,
            selection_load: SelectionLoad::new(),
        }
    }

    /// The shard's store (assertions in tests).
    pub fn store(&self) -> &OfferStore {
        &self.store
    }

    fn flush(step: Step<Invalidation>, ctx: &mut Ctx<'_, TraderMsg>) {
        for (to, msg) in step.outbound {
            ctx.send(to, TraderMsg::Gc(msg));
        }
    }

    fn invalidate(&mut self, note: Invalidation, ctx: &mut Ctx<'_, TraderMsg>) {
        let step = self.engine.mcast(note, ctx.now());
        Self::flush(step, ctx);
    }
}

impl Actor<TraderMsg> for TraderActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TraderMsg>) {
        ctx.set_timer(TICK_EVERY, TICK_TAG);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TraderMsg>, from: NodeId, msg: TraderMsg) {
        match msg {
            TraderMsg::Export(offer) => {
                ctx.metrics().incr("trader.exports");
                let shard_counter = format!("trader.shard.{}.offers", ctx.id());
                ctx.metrics().add(&shard_counter, 1);
                self.store.insert(offer);
            }
            TraderMsg::Withdraw(id) => {
                if let Some(offer) = self.store.remove(id) {
                    ctx.metrics().incr("trader.withdrawals");
                    self.invalidate(
                        Invalidation {
                            service_type: offer.service_type,
                            reason: InvalidationReason::Withdrawn,
                        },
                        ctx,
                    );
                }
            }
            TraderMsg::Modify(id, qos) => {
                if self.store.modify_qos(id, qos) {
                    let service_type = self
                        .store
                        .offer(id)
                        .map(|o| o.service_type.clone())
                        .expect("offer present: modify_qos succeeded");
                    ctx.metrics().incr("trader.modifications");
                    self.invalidate(
                        Invalidation {
                            service_type,
                            reason: InvalidationReason::Modified,
                        },
                        ctx,
                    );
                }
            }
            TraderMsg::Lookup {
                call,
                service_type,
                required,
            } => {
                ctx.metrics().incr("trader.lookups");
                let offers: Vec<ServiceOffer> = self
                    .store
                    .offers_of_type(&service_type)
                    .into_iter()
                    .cloned()
                    .collect();
                let mut matches = match_offers(&offers, &required);
                // Rank: the policy's pick first, the rest in store order
                // (importers cache the whole list and fail over down it).
                if let Some(best) = select(&matches, self.policy, &mut self.selection_load, None) {
                    matches.retain(|m| m.offer.id != best.offer.id);
                    matches.insert(0, best);
                }
                let resolved = matches.into_iter().map(|m| m.offer).collect();
                ctx.send(
                    from,
                    TraderMsg::LookupReply {
                        call,
                        service_type,
                        resolved,
                    },
                );
            }
            TraderMsg::Gc(gc) => {
                let step = self.engine.on_message(from, gc, ctx.now());
                // Traders originate invalidations; delivered notes from
                // peer traders need no local action (no cache here).
                Self::flush(step, ctx);
            }
            // Replies are importer-bound; a trader receiving one is a
            // misrouted duplicate.
            TraderMsg::LookupReply { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TraderMsg>, _timer: TimerId, tag: u64) {
        if tag == TICK_TAG {
            let step = self.engine.on_tick(ctx.now());
            Self::flush(step, ctx);
            ctx.set_timer(TICK_EVERY, TICK_TAG);
        }
    }
}

/// One scripted lookup in an importer's workload.
#[derive(Debug, Clone)]
pub struct LookupJob {
    /// When to issue it.
    pub at: SimDuration,
    /// What to ask for.
    pub service_type: ServiceType,
    /// Under which requirement.
    pub required: QosSpec,
}

/// Counters an importer accumulates (read back by tests/experiments).
#[derive(Debug, Clone, Copy, Default)]
pub struct ImporterStats {
    /// Lookups resolved from the local cache.
    pub cache_hits: u64,
    /// Lookups that paid a trader round-trip.
    pub cold_lookups: u64,
    /// Replies that resolved at least one offer.
    pub resolved: u64,
    /// Replies with no satisfying offer.
    pub unresolved: u64,
}

/// An importing client as a simulator actor.
pub struct ImporterActor {
    trader_for: Box<dyn Fn(&ServiceType) -> NodeId>,
    cache: LookupCache,
    engine: GroupEngine<Invalidation>,
    jobs: Vec<LookupJob>,
    pending: std::collections::BTreeMap<u64, (ServiceType, SimTime)>,
    next_call: u64,
    stats: ImporterStats,
    /// The most recent resolution per type (tests bind through this).
    pub last_resolved: std::collections::BTreeMap<ServiceType, Vec<ServiceOffer>>,
}

impl ImporterActor {
    /// An importer for node `me`: `trader_for` routes a type to its
    /// shard's trader (the domain ring), `ttl` bounds cache staleness,
    /// `coherence_group` delivers invalidations, `jobs` is the scripted
    /// workload.
    pub fn new(
        me: NodeId,
        coherence_group: View,
        ttl: SimDuration,
        trader_for: impl Fn(&ServiceType) -> NodeId + 'static,
        jobs: Vec<LookupJob>,
    ) -> Self {
        ImporterActor {
            trader_for: Box::new(trader_for),
            cache: LookupCache::new(ttl),
            engine: GroupEngine::new(me, coherence_group, Ordering::Fifo, Reliability::reliable()),
            jobs,
            pending: std::collections::BTreeMap::new(),
            next_call: 0,
            stats: ImporterStats::default(),
            last_resolved: std::collections::BTreeMap::new(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ImporterStats {
        self.stats
    }

    /// The cache (tests assert on hit/miss/invalidation counts).
    pub fn cache(&self) -> &LookupCache {
        &self.cache
    }

    fn flush(step: Step<Invalidation>, ctx: &mut Ctx<'_, TraderMsg>) {
        for (to, msg) in step.outbound {
            ctx.send(to, TraderMsg::Gc(msg));
        }
    }

    fn record_outcome(ctx: &mut Ctx<'_, TraderMsg>, latency: SimDuration, hit: bool) {
        ctx.metrics().observe("lookup_latency", latency);
        // Mean of this histogram in milliseconds = cache hit rate: each
        // hit observes 1 ms, each miss 0 ms.
        ctx.metrics().observe(
            "cache_hit_rate",
            if hit {
                SimDuration::from_millis(1)
            } else {
                SimDuration::ZERO
            },
        );
        ctx.metrics().incr(if hit {
            "importer.cache.hits"
        } else {
            "importer.cache.misses"
        });
    }

    fn issue(&mut self, job: LookupJob, ctx: &mut Ctx<'_, TraderMsg>) {
        if let Some(resolved) = self.cache.get(&job.service_type, ctx.now()) {
            // Served locally: zero added latency.
            self.stats.cache_hits += 1;
            if resolved.is_empty() {
                self.stats.unresolved += 1;
            } else {
                self.stats.resolved += 1;
            }
            self.last_resolved
                .insert(job.service_type.clone(), resolved);
            Self::record_outcome(ctx, SimDuration::ZERO, true);
            return;
        }
        self.stats.cold_lookups += 1;
        self.next_call += 1;
        let call = self.next_call;
        self.pending
            .insert(call, (job.service_type.clone(), ctx.now()));
        let trader = (self.trader_for)(&job.service_type);
        ctx.send(
            trader,
            TraderMsg::Lookup {
                call,
                service_type: job.service_type,
                required: job.required,
            },
        );
    }
}

impl Actor<TraderMsg> for ImporterActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, TraderMsg>) {
        ctx.set_timer(TICK_EVERY, TICK_TAG);
        for (i, job) in self.jobs.iter().enumerate() {
            ctx.set_timer(job.at, LOOKUP_TAG + 1 + i as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, TraderMsg>, from: NodeId, msg: TraderMsg) {
        match msg {
            TraderMsg::LookupReply {
                call,
                service_type,
                resolved,
            } => {
                let Some((_, sent_at)) = self.pending.remove(&call) else {
                    return; // stale duplicate
                };
                let latency = ctx.now().saturating_since(sent_at);
                if resolved.is_empty() {
                    self.stats.unresolved += 1;
                } else {
                    self.stats.resolved += 1;
                }
                Self::record_outcome(ctx, latency, false);
                self.cache
                    .put(service_type.clone(), resolved.clone(), ctx.now());
                self.last_resolved.insert(service_type, resolved);
            }
            TraderMsg::Gc(gc) => {
                let step = self.engine.on_message(from, gc, ctx.now());
                for delivery in &step.delivered {
                    if self.cache.invalidate(&delivery.payload.service_type) {
                        ctx.metrics().incr("importer.cache.invalidated");
                    }
                }
                Self::flush(step, ctx);
            }
            // Importers ignore trader-side traffic.
            TraderMsg::Export(_)
            | TraderMsg::Withdraw(_)
            | TraderMsg::Modify(..)
            | TraderMsg::Lookup { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, TraderMsg>, _timer: TimerId, tag: u64) {
        if tag == TICK_TAG {
            let step = self.engine.on_tick(ctx.now());
            Self::flush(step, ctx);
            ctx.set_timer(TICK_EVERY, TICK_TAG);
            return;
        }
        let idx = (tag - LOOKUP_TAG - 1) as usize;
        if let Some(job) = self.jobs.get(idx).cloned() {
            self.issue(job, ctx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::SessionKind;
    use crate::store::HashRing;
    use odp_groupcomm::membership::GroupId;
    use odp_sim::sim::Sim;

    const T1: NodeId = NodeId(0);
    const T2: NodeId = NodeId(1);
    const IMP: NodeId = NodeId(10);
    const EXP: NodeId = NodeId(20);

    fn st() -> ServiceType {
        ServiceType::new("video/conference")
    }

    fn view() -> View {
        View::initial(GroupId(7), [T1, T2, IMP])
    }

    fn offer() -> ServiceOffer {
        // In the actor protocol the *exporter* owns id uniqueness (the
        // shards are distributed and cannot coordinate a counter).
        let mut o = ServiceOffer::session(st(), SessionKind::Conference, QosSpec::video(), EXP);
        o.id = OfferId(1);
        o
    }

    fn jobs(times_ms: &[u64]) -> Vec<LookupJob> {
        times_ms
            .iter()
            .map(|ms| LookupJob {
                at: SimDuration::from_millis(*ms),
                service_type: st(),
                required: QosSpec::video(),
            })
            .collect()
    }

    fn build(jobs_ms: &[u64], ttl_ms: u64) -> Sim<TraderMsg> {
        let mut sim = Sim::new(42);
        let ring = HashRing::new([T1, T2]);
        sim.add_actor(T1, TraderActor::new(T1, view(), SelectionPolicy::FirstFit));
        sim.add_actor(T2, TraderActor::new(T2, view(), SelectionPolicy::FirstFit));
        sim.add_actor(
            IMP,
            ImporterActor::new(
                IMP,
                view(),
                SimDuration::from_millis(ttl_ms),
                move |t| ring.node_for(t).expect("ring has traders"),
                jobs(jobs_ms),
            ),
        );
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(SimTime::ZERO, EXP, shard, TraderMsg::Export(offer()));
        sim
    }

    #[test]
    fn cold_then_cached_lookup_hit_rates_and_latencies() {
        let mut sim = build(&[10, 20, 30], 10_000);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let imp: &ImporterActor = sim.actor(IMP).unwrap();
        let stats = imp.stats();
        assert_eq!(stats.cold_lookups, 1, "first lookup misses");
        assert_eq!(stats.cache_hits, 2, "subsequent lookups hit");
        assert_eq!(stats.resolved, 3);
        assert_eq!(sim.metrics().counter("importer.cache.hits"), 2);
        assert_eq!(sim.metrics().counter("importer.cache.misses"), 1);
        let lat = sim
            .metrics()
            .histogram("lookup_latency")
            .expect("latency histogram recorded");
        assert_eq!(lat.len(), 3);
        // Cold lookup pays network latency; hits are free.
        let mut lat = lat.clone();
        assert!(lat.max() > SimDuration::ZERO);
        assert_eq!(lat.min(), SimDuration::ZERO);
        let hit_rate = sim
            .metrics()
            .histogram("cache_hit_rate")
            .expect("hit-rate histogram recorded")
            .mean();
        // Two hits, one miss → mean 2/3 ms ≈ 666 µs.
        assert_eq!(hit_rate.as_micros(), 666);
    }

    #[test]
    fn ttl_expiry_forces_a_fresh_round_trip() {
        // Lookups at 10ms and 900ms with a 200ms TTL: both go cold.
        let mut sim = build(&[10, 900], 200);
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        let imp: &ImporterActor = sim.actor(IMP).unwrap();
        assert_eq!(imp.stats().cold_lookups, 2);
        assert_eq!(imp.stats().cache_hits, 0);
        assert_eq!(imp.cache().stats().expiries, 1);
    }

    #[test]
    fn withdraw_invalidates_importer_caches() {
        let mut sim = build(&[10, 1500], 60_000);
        // Withdraw the (sole) offer at t=1s; the trader multicasts an
        // invalidation, so the importer's 1.5s lookup must go cold and
        // resolve to nothing.
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(
            SimTime::ZERO + SimDuration::from_secs(1),
            EXP,
            shard,
            TraderMsg::Withdraw(OfferId(1)),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(3));
        let imp: &ImporterActor = sim.actor(IMP).unwrap();
        assert_eq!(
            sim.metrics().counter("importer.cache.invalidated"),
            1,
            "the multicast note must evict the cached type"
        );
        assert_eq!(
            imp.stats().cold_lookups,
            2,
            "post-withdraw lookup goes cold"
        );
        assert_eq!(imp.stats().unresolved, 1, "nothing left to resolve");
        assert!(imp.last_resolved.get(&st()).unwrap().is_empty());
    }

    #[test]
    fn modify_also_invalidates() {
        let mut sim = build(&[10], 60_000);
        let shard = HashRing::new([T1, T2]).node_for(&st()).unwrap();
        sim.inject(
            SimTime::ZERO + SimDuration::from_secs(1),
            EXP,
            shard,
            TraderMsg::Modify(OfferId(1), QosSpec::mobile_video()),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(2));
        assert_eq!(sim.metrics().counter("importer.cache.invalidated"), 1);
        assert_eq!(sim.metrics().counter("trader.modifications"), 1);
    }

    #[test]
    fn shard_export_counters_track_placement() {
        let mut sim = build(&[], 1000);
        // Export a second type; whichever shard owns it gets the count.
        let other = ServiceType::new("audio/talk");
        let ring = HashRing::new([T1, T2]);
        let mut audio = ServiceOffer::session(
            other.clone(),
            SessionKind::Conference,
            QosSpec::audio(),
            EXP,
        );
        audio.id = OfferId(2);
        sim.inject(
            SimTime::ZERO,
            EXP,
            ring.node_for(&other).unwrap(),
            TraderMsg::Export(audio),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_secs(1));
        assert_eq!(sim.metrics().counter("trader.exports"), 2);
        let total: u64 = [T1, T2]
            .iter()
            .map(|t| sim.metrics().counter(&format!("trader.shard.{t}.offers")))
            .sum();
        assert_eq!(total, 2, "every export lands on exactly one shard counter");
    }
}
