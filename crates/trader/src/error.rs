//! The unified trader error.
//!
//! Earlier revisions spread failures over per-module enums (a store
//! error in [`crate::offer`], an import error in [`crate::federation`]),
//! which forced callers juggling both surfaces to write two error paths
//! for one logical operation. This module collapses them into a single
//! [`TraderError`]: non-exhaustive (the trading function grows — new
//! variants must not break downstream matches) and a proper
//! [`std::error::Error`] so embedding errors (e.g. `cscw-core`'s
//! discovery error) can expose it through `source()` chains.

use std::fmt;

use crate::federation::DomainId;
use crate::offer::OfferId;

/// Why a trading operation failed — store, cache and federation
/// surfaces share this one enum.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraderError {
    /// No shard holds the named offer.
    UnknownOffer(OfferId),
    /// The store has no shard (no trader nodes registered).
    NoShards,
    /// The starting domain is not in the federation.
    UnknownDomain(DomainId),
    /// No reachable domain holds a satisfying offer — genuine scarcity,
    /// possibly after penalized-QoS rejection of every candidate.
    NoMatch,
    /// Offers of the type exist in linked domains, but every path to
    /// them is barred: missing rights, an inadmissible link scope, or a
    /// transitively narrowed scope that excludes the type.
    AccessDenied,
}

impl fmt::Display for TraderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraderError::UnknownOffer(id) => write!(f, "unknown {id}"),
            TraderError::NoShards => write!(f, "offer store has no trader shards"),
            TraderError::UnknownDomain(d) => write!(f, "unknown {d}"),
            TraderError::NoMatch => write!(f, "no satisfying offer in reach"),
            TraderError::AccessDenied => write!(f, "offers exist but every path is barred"),
        }
    }
}

impl std::error::Error for TraderError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_failure() {
        assert_eq!(
            TraderError::UnknownDomain(DomainId(9)).to_string(),
            "unknown domain9"
        );
        assert_eq!(
            TraderError::UnknownOffer(OfferId(3)).to_string(),
            "unknown offer#3"
        );
        assert!(TraderError::AccessDenied.to_string().contains("barred"));
    }

    #[test]
    fn is_a_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(TraderError::NoMatch);
        assert!(err.source().is_none(), "TraderError is a root cause");
    }
}
