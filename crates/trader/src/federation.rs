//! Trader federation: linked trading domains with scoped, access-gated
//! import paths and a QoS-penalty-aware import planner.
//!
//! The paper's open distributed processing setting is inherently
//! multi-organisational ("negotiation and interaction between different
//! administrative and management domains", §4.2.1). One trader cannot
//! hold every offer, so traders *link* to traders in other domains. A
//! [`TraderLink`] restricts what flows across it twice over:
//!
//! - a **scope** prefix — only service types under the prefix are
//!   visible through the link (an organisation exports its public
//!   conference services, not its internal tooling);
//! - **required rights** — the importer must hold the link's
//!   `odp_access::rights::Rights` for the traversal (export gating).
//!
//! and charges a [`LinkQos`] **penalty** — the latency, jitter and loss
//! a binding to an offer behind the link would actually pay, typically
//! drawn from the simulated topology via [`Network::link_qos`].
//!
//! [`Federation::resolve`] plans an import as a best-first search over
//! (narrowed scope, accumulated penalty) path states: link scopes
//! intersect transitively ([`Scope::narrow`]) and branches whose
//! narrowed scope can no longer admit the requested type are pruned
//! *before* their stores are consulted; domains are settled in order of
//! accumulated penalty, so the first satisfying answer is also the
//! least-penalized one, and offers are matched on their QoS *as seen
//! across the path* ([`QosSpec::degrade_across`]) — a weaker-but-nearer
//! offer can beat a stronger-but-farther one, and an offer whose
//! penalized QoS no longer satisfies the requirement is rejected before
//! selection. With zero penalties the search degenerates to exactly the
//! legacy breadth-first order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use odp_access::rights::Rights;
use odp_sim::net::{LinkQos, Network};

use crate::error::TraderError;
use crate::plan::{ImportRequest, ImportResolution, PathState, Scope};
use crate::select::{match_offers_via, select, SelectionLoad};
use crate::store::ShardedStore;

/// Names a trading domain (one administrative authority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// A directed federation link from one domain's trader to another's.
#[derive(Debug, Clone)]
pub struct TraderLink {
    /// The importing (querying) side.
    pub from: DomainId,
    /// The exporting (answering) side.
    pub to: DomainId,
    /// Service-type prefix admitted across the link ("" admits all).
    pub scope: String,
    /// Rights the importer must hold to traverse.
    pub required: Rights,
    /// The QoS degradation a binding across this link pays.
    pub qos: LinkQos,
}

/// A federation of trading domains joined by scoped links.
#[derive(Debug, Default)]
pub struct Federation {
    domains: BTreeMap<DomainId, ShardedStore>,
    links: Vec<TraderLink>,
    selection_load: SelectionLoad,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Adds (or replaces) a domain's offer store.
    pub fn add_domain(&mut self, id: DomainId, store: ShardedStore) {
        self.domains.insert(id, store);
    }

    /// A domain's store.
    pub fn domain(&self, id: DomainId) -> Option<&ShardedStore> {
        self.domains.get(&id)
    }

    /// A domain's store, mutably (for exports/withdrawals).
    pub fn domain_mut(&mut self, id: DomainId) -> Option<&mut ShardedStore> {
        self.domains.get_mut(&id)
    }

    /// Links `from` to `to` with no QoS penalty: lookups started in
    /// `from` may consult `to` for service types under `scope`, if the
    /// importer holds `required`.
    pub fn link(
        &mut self,
        from: DomainId,
        to: DomainId,
        scope: impl Into<String>,
        required: Rights,
    ) {
        self.link_via(from, to, scope, required, LinkQos::NONE);
    }

    /// Links `from` to `to` charging `qos` per traversal (typically
    /// [`Network::link_qos`] between the domains' gateway nodes).
    pub fn link_via(
        &mut self,
        from: DomainId,
        to: DomainId,
        scope: impl Into<String>,
        required: Rights,
        qos: LinkQos,
    ) {
        self.links.push(TraderLink {
            from,
            to,
            scope: scope.into(),
            required,
            qos,
        });
    }

    /// Every link, in registration order.
    pub fn links(&self) -> &[TraderLink] {
        &self.links
    }

    /// The links out of a domain.
    pub fn links_from(&self, from: DomainId) -> impl Iterator<Item = &TraderLink> {
        self.links.iter().filter(move |l| l.from == from)
    }

    /// Plans and resolves an import starting at `at`.
    ///
    /// Best-first over accumulated link penalty (ties: fewest hops,
    /// then link registration order — the legacy breadth-first order):
    /// the local domain is settled first, then reachable domains in
    /// penalty order, up to the request's hop bound. A link is enqueued
    /// only if the importer holds its rights and (under scope
    /// narrowing) the path's narrowed scope still admits the requested
    /// type. The first settled domain with a satisfying *penalized*
    /// match answers; the request's policy picks among that domain's
    /// matches.
    ///
    /// `net` is consulted only by [`SelectionPolicy::LowestLatency`];
    /// link penalties live on the links themselves.
    ///
    /// # Errors
    ///
    /// See [`TraderError`]; notably [`TraderError::AccessDenied`] is
    /// distinguished from [`TraderError::NoMatch`] so callers can tell
    /// policy failures from genuine scarcity.
    pub fn resolve(
        &mut self,
        at: DomainId,
        request: &ImportRequest,
        net: Option<&Network>,
    ) -> Result<ImportResolution, TraderError> {
        if !self.domains.contains_key(&at) {
            return Err(TraderError::UnknownDomain(at));
        }
        let mut frontier: BTreeMap<(u64, u64, u64, u32, u64), PathState> = BTreeMap::new();
        // Settled per (domain, narrowed scope): the same domain reached
        // under a different narrowed scope is a genuinely different
        // state (it may admit types the first visit could not).
        let mut settled: BTreeSet<(DomainId, Scope)> = BTreeSet::new();
        let mut seq = 0u64;
        let start = PathState {
            domain: at,
            hops: 0,
            scope: Scope::all(),
            penalty: LinkQos::NONE,
            path: vec![at],
            seq,
        };
        frontier.insert(start.key(), start);
        let mut barred_offers_exist = false;
        let mut domains_queried = 0u32;

        while let Some((_, state)) = frontier.pop_first() {
            // Several frontier entries may reach the same (domain,
            // scope) state; only the best-ranked one is settled (and
            // thus queried).
            if !settled.insert((state.domain, state.scope.clone())) {
                continue;
            }
            let offers = self
                .domains
                .get_mut(&state.domain)
                .map(|store| store.offers_of_type(request.service_type()))
                .unwrap_or_default();
            if state.domain != at {
                domains_queried += 1;
            }
            // With narrowing the scope gate already ran at enqueue
            // time; without it (flood mode) it must run here, at answer
            // time, or out-of-scope offers would leak across.
            let admitted = state.scope.admits(request.service_type());
            if !admitted && !offers.is_empty() {
                barred_offers_exist = true;
            }
            let path_penalty = if request.accounts_penalty() {
                state.penalty
            } else {
                LinkQos::NONE
            };
            let matches = if admitted {
                match_offers_via(&offers, request.required(), &path_penalty)
            } else {
                Vec::new()
            };
            if let Some(matched) = select(
                &matches,
                request.selection_policy(),
                &mut self.selection_load,
                net,
            ) {
                return Ok(ImportResolution {
                    matched,
                    domain: state.domain,
                    hops: state.hops,
                    path: state.path,
                    narrowed_scope: state.scope,
                    penalty: state.penalty,
                    domains_queried,
                });
            }
            if state.hops >= request.hop_bound() {
                continue;
            }
            for link in self.links.iter().filter(|l| l.from == state.domain) {
                let narrowed = state.scope.narrow(&link.scope);
                if settled.contains(&(link.to, narrowed.clone())) {
                    continue;
                }
                let scope_ok = !request.narrows_scope() || narrowed.admits(request.service_type());
                let rights_ok = request.importer_rights().contains(link.required);
                if !(scope_ok && rights_ok) {
                    // Only report AccessDenied if something real was
                    // barred: check the target actually holds the type.
                    if self
                        .domains
                        .get(&link.to)
                        .is_some_and(|s| s.has_type(request.service_type()))
                    {
                        barred_offers_exist = true;
                    }
                    continue;
                }
                seq += 1;
                let mut path = state.path.clone();
                path.push(link.to);
                let next = PathState {
                    domain: link.to,
                    hops: state.hops + 1,
                    scope: narrowed,
                    penalty: state.penalty.then(link.qos),
                    path,
                    seq,
                };
                frontier.insert(next.key(), next);
            }
        }
        if barred_offers_exist {
            Err(TraderError::AccessDenied)
        } else {
            Err(TraderError::NoMatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{ServiceOffer, ServiceType, SessionKind};
    use crate::select::SelectionPolicy;
    use odp_sim::net::NodeId;
    use odp_sim::time::SimDuration;
    use odp_streams::qos::QosSpec;

    fn store_with(traders: &[u32], offers: &[(&str, u32)]) -> ShardedStore {
        let mut s = ShardedStore::new(traders.iter().copied().map(NodeId));
        for (name, node) in offers {
            s.export(ServiceOffer::session(
                ServiceType::new(*name),
                SessionKind::Conference,
                QosSpec::video(),
                NodeId(*node),
            ))
            .unwrap();
        }
        s
    }

    fn st() -> ServiceType {
        ServiceType::new("video/conference")
    }

    fn video_request() -> ImportRequest {
        ImportRequest::for_type(st()).qos(QosSpec::video())
    }

    fn penalty_ms(lat: u64) -> LinkQos {
        LinkQos::new(SimDuration::from_millis(lat), SimDuration::ZERO, 0.0)
    }

    #[test]
    fn local_offers_win_with_zero_hops() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[("video/conference", 5)]));
        let r = fed
            .resolve(DomainId(0), &video_request().rights(Rights::READ), None)
            .unwrap();
        assert_eq!(r.hops, 0);
        assert_eq!(r.domain, DomainId(0));
        assert_eq!(r.path, vec![DomainId(0)]);
        assert_eq!(r.narrowed_scope, Scope::all());
        assert!(r.penalty.is_none());
        assert_eq!(r.domains_queried, 0, "the local store is free");
        assert_eq!(r.matched.penalized, r.matched.offer.qos);
    }

    #[test]
    fn federated_import_crosses_an_admissible_link() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(DomainId(0), DomainId(1), "video/", Rights::READ);
        let r = fed
            .resolve(DomainId(0), &video_request().rights(Rights::READ), None)
            .unwrap();
        assert_eq!(r.hops, 1);
        assert_eq!(r.domain, DomainId(1));
        assert_eq!(r.matched.offer.node, NodeId(15));
        assert_eq!(r.path, vec![DomainId(0), DomainId(1)]);
        assert_eq!(r.narrowed_scope, Scope::prefix("video/"));
        assert_eq!(r.domains_queried, 1);
    }

    #[test]
    fn out_of_scope_types_do_not_cross() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(DomainId(0), DomainId(1), "audio/", Rights::NONE);
        let err = fed
            .resolve(DomainId(0), &video_request().rights(Rights::ALL), None)
            .unwrap_err();
        assert_eq!(err, TraderError::AccessDenied);
    }

    #[test]
    fn missing_rights_bar_the_link() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(
            DomainId(0),
            DomainId(1),
            "",
            Rights::READ.union(Rights::GRANT),
        );
        assert_eq!(
            fed.resolve(DomainId(0), &video_request().rights(Rights::READ), None)
                .unwrap_err(),
            TraderError::AccessDenied
        );
        // With GRANT added the same import succeeds.
        assert!(fed
            .resolve(
                DomainId(0),
                &video_request().rights(Rights::READ.union(Rights::GRANT)),
                None
            )
            .is_ok());
    }

    #[test]
    fn hop_bound_limits_transitive_reach() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[("video/conference", 25)]));
        fed.link(DomainId(0), DomainId(1), "", Rights::NONE);
        fed.link(DomainId(1), DomainId(2), "", Rights::NONE);
        assert_eq!(
            fed.resolve(DomainId(0), &video_request().max_hops(1), None)
                .unwrap_err(),
            TraderError::NoMatch
        );
        let r = fed
            .resolve(DomainId(0), &video_request().max_hops(2), None)
            .unwrap();
        assert_eq!(r.hops, 2);
        assert_eq!(r.path, vec![DomainId(0), DomainId(1), DomainId(2)]);
    }

    #[test]
    fn nearest_domain_answers_first() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 11)]));
        fed.add_domain(DomainId(2), store_with(&[20], &[("video/conference", 22)]));
        fed.link(DomainId(0), DomainId(1), "", Rights::NONE);
        fed.link(DomainId(1), DomainId(2), "", Rights::NONE);
        let r = fed
            .resolve(DomainId(0), &video_request().max_hops(5), None)
            .unwrap();
        assert_eq!(r.domain, DomainId(1), "one hop beats two");
    }

    #[test]
    fn unknown_start_domain_errors() {
        let mut fed = Federation::new();
        assert_eq!(
            fed.resolve(DomainId(9), &video_request(), None)
                .unwrap_err(),
            TraderError::UnknownDomain(DomainId(9))
        );
    }

    #[test]
    fn weaker_but_nearer_beats_stronger_but_farther() {
        // Domain 1 is 100 ms away with a broadcast-grade offer; domain
        // 2 is 10 ms away with a modest one. Register the expensive
        // link first so plain insertion order would pick domain 1 —
        // only penalty ranking can prefer domain 2.
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[]));
        let strong =
            ServiceOffer::session(st(), SessionKind::Conference, QosSpec::video(), NodeId(11));
        let modest = ServiceOffer::session(
            st(),
            SessionKind::Conference,
            QosSpec {
                throughput_fps: 12,
                latency_bound: SimDuration::from_millis(300),
                ..QosSpec::video()
            },
            NodeId(22),
        );
        fed.domain_mut(DomainId(1)).unwrap().export(strong).unwrap();
        fed.domain_mut(DomainId(2)).unwrap().export(modest).unwrap();
        fed.link_via(DomainId(0), DomainId(1), "", Rights::NONE, penalty_ms(100));
        fed.link_via(DomainId(0), DomainId(2), "", Rights::NONE, penalty_ms(10));
        let r = fed
            .resolve(
                DomainId(0),
                &ImportRequest::for_type(st()).qos(QosSpec {
                    throughput_fps: 10,
                    latency_bound: SimDuration::from_millis(400),
                    jitter_bound: SimDuration::from_millis(60),
                    ..QosSpec::video()
                }),
                None,
            )
            .unwrap();
        assert_eq!(r.domain, DomainId(2), "the nearer modest offer wins");
        assert_eq!(r.penalty, penalty_ms(10));
        assert_eq!(
            r.matched.penalized.latency_bound,
            SimDuration::from_millis(310),
            "the match is judged on penalized QoS"
        );
    }

    #[test]
    fn penalized_offers_that_no_longer_satisfy_are_rejected() {
        // The offer satisfies the requirement at home, but two lossy
        // links compound to ~19% loss — past anything the video
        // requirement's degradation ladder tolerates.
        let lossy = LinkQos::new(SimDuration::ZERO, SimDuration::ZERO, 0.1);
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[("video/conference", 25)]));
        fed.link_via(DomainId(0), DomainId(1), "", Rights::NONE, lossy);
        fed.link_via(DomainId(1), DomainId(2), "", Rights::NONE, lossy);
        assert_eq!(
            fed.resolve(DomainId(0), &video_request(), None)
                .unwrap_err(),
            TraderError::NoMatch
        );
        // Disabling accounting (the checker's fault-injection knob)
        // makes the same import succeed on the raw advertised QoS.
        let r = fed
            .resolve(
                DomainId(0),
                &video_request().penalty_accounting(false),
                None,
            )
            .unwrap();
        assert_eq!(r.domain, DomainId(2));
        assert_eq!(r.matched.penalized, r.matched.offer.qos);
    }

    #[test]
    fn diamond_narrowing_prunes_the_excluding_arm() {
        // 0 → 1 (video/) → 3 ("") and 0 → 2 (video/hd/) → 3 (""):
        // "video/conference" can only arrive via the 1-arm; the 2-arm's
        // narrowed scope video/hd/ excludes it, and the planner must
        // not query domain 2 at all. The 2-arm is cheaper, so without
        // narrowing it would be settled (and queried) first.
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[]));
        fed.add_domain(DomainId(3), store_with(&[30], &[("video/conference", 35)]));
        fed.link_via(
            DomainId(0),
            DomainId(1),
            "video/",
            Rights::NONE,
            penalty_ms(40),
        );
        fed.link_via(
            DomainId(0),
            DomainId(2),
            "video/hd/",
            Rights::NONE,
            penalty_ms(10),
        );
        fed.link_via(DomainId(1), DomainId(3), "", Rights::NONE, penalty_ms(40));
        fed.link_via(DomainId(2), DomainId(3), "", Rights::NONE, penalty_ms(10));
        let r = fed.resolve(DomainId(0), &video_request(), None).unwrap();
        assert_eq!(r.path, vec![DomainId(0), DomainId(1), DomainId(3)]);
        assert_eq!(r.narrowed_scope, Scope::prefix("video/"));
        assert_eq!(r.penalty, penalty_ms(80));
        assert_eq!(
            r.domains_queried, 2,
            "domain 2 is pruned before its store is consulted"
        );

        // The same diamond admits "video/hd/tour" through *both* arms;
        // the cheaper hd-arm wins and the scope narrows to the longer
        // prefix.
        let hd = ServiceType::new("video/hd/tour");
        fed.domain_mut(DomainId(3))
            .unwrap()
            .export(ServiceOffer::session(
                hd.clone(),
                SessionKind::Conference,
                QosSpec::video(),
                NodeId(36),
            ))
            .unwrap();
        let r = fed
            .resolve(
                DomainId(0),
                &ImportRequest::for_type(hd).qos(QosSpec::mobile_video()),
                None,
            )
            .unwrap();
        assert_eq!(r.path, vec![DomainId(0), DomainId(2), DomainId(3)]);
        assert_eq!(r.narrowed_scope, Scope::prefix("video/hd/"));
        assert_eq!(r.penalty, penalty_ms(20));
    }

    #[test]
    fn flood_mode_finds_the_same_offer_but_queries_more_domains() {
        // Same diamond as above: flood mode (narrowing off) traverses
        // on rights alone and filters at answer time, so it consults
        // the pruned arm's stores too — the planner's saving is exactly
        // the cross-domain messages it never sends.
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[]));
        fed.add_domain(DomainId(3), store_with(&[30], &[("video/conference", 35)]));
        fed.link_via(
            DomainId(0),
            DomainId(1),
            "video/",
            Rights::NONE,
            penalty_ms(40),
        );
        fed.link_via(
            DomainId(0),
            DomainId(2),
            "video/hd/",
            Rights::NONE,
            penalty_ms(10),
        );
        fed.link_via(DomainId(1), DomainId(3), "", Rights::NONE, penalty_ms(40));
        fed.link_via(DomainId(2), DomainId(3), "", Rights::NONE, penalty_ms(10));
        let planned = fed.resolve(DomainId(0), &video_request(), None).unwrap();
        let flooded = fed
            .resolve(DomainId(0), &video_request().narrowing(false), None)
            .unwrap();
        assert_eq!(planned.matched.offer, flooded.matched.offer);
        assert!(
            planned.domains_queried < flooded.domains_queried,
            "pruning must cut cross-domain lookups: {} vs {}",
            planned.domains_queried,
            flooded.domains_queried
        );
        // Flood mode settles the cheap hd-arm first, reaches domain 3
        // under the narrowed scope video/hd/ — which bars the answer at
        // query time — and only finds the offer on the second visit,
        // via the admitting video/ arm: two wasted cross-domain
        // queries the planner never sends.
        assert_eq!(flooded.domain, planned.domain);
        assert_eq!(flooded.narrowed_scope, Scope::prefix("video/"));
    }

    #[test]
    fn builder_request_resolves_across_one_link() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(DomainId(0), DomainId(1), "video/", Rights::READ);
        let request = ImportRequest::for_type(st())
            .qos(QosSpec::video())
            .rights(Rights::READ)
            .policy(SelectionPolicy::FirstFit)
            .max_hops(3);
        let r = fed.resolve(DomainId(0), &request, None).unwrap();
        assert_eq!(r.domain, DomainId(1));
        assert_eq!(r.hops, 1);
    }
}
