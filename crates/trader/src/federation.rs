//! Trader federation: linked trading domains with scoped, access-gated
//! import paths.
//!
//! The paper's open distributed processing setting is inherently
//! multi-organisational ("negotiation and interaction between different
//! administrative and management domains", §4.2.1). One trader cannot
//! hold every offer, so traders *link* to traders in other domains. A
//! [`TraderLink`] restricts what flows across it twice over:
//!
//! - a **scope** prefix — only service types under the prefix are
//!   visible through the link (an organisation exports its public
//!   conference services, not its internal tooling);
//! - **required rights** — the importer must hold the link's
//!   `odp_access::rights::Rights` for the traversal (export gating).
//!
//! Imports search the local domain first, then breadth-first over
//! admissible links up to a hop bound.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use odp_access::rights::Rights;
use odp_sim::net::Network;
use odp_streams::qos::QosSpec;

use crate::offer::ServiceType;
use crate::select::{match_offers, select, OfferMatch, SelectionLoad, SelectionPolicy};
use crate::store::ShardedStore;

/// Names a trading domain (one administrative authority).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain{}", self.0)
    }
}

/// A directed federation link from one domain's trader to another's.
#[derive(Debug, Clone)]
pub struct TraderLink {
    /// The importing (querying) side.
    pub from: DomainId,
    /// The exporting (answering) side.
    pub to: DomainId,
    /// Service-type prefix admitted across the link ("" admits all).
    pub scope: String,
    /// Rights the importer must hold to traverse.
    pub required: Rights,
}

/// A successful federated import.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportResolution {
    /// The selected offer.
    pub matched: OfferMatch,
    /// The domain the offer came from.
    pub domain: DomainId,
    /// Federation hops traversed (0 = local domain).
    pub hops: u32,
}

/// Why a federated import failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImportError {
    /// The starting domain is not in the federation.
    UnknownDomain(DomainId),
    /// No reachable domain holds a satisfying offer.
    NoMatch,
    /// Offers of the type exist in linked domains, but every path to
    /// them is barred (scope or rights).
    AccessDenied,
}

impl fmt::Display for ImportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImportError::UnknownDomain(d) => write!(f, "unknown {d}"),
            ImportError::NoMatch => write!(f, "no satisfying offer in reach"),
            ImportError::AccessDenied => write!(f, "offers exist but every link is barred"),
        }
    }
}

impl std::error::Error for ImportError {}

/// A federation of trading domains joined by scoped links.
#[derive(Debug, Default)]
pub struct Federation {
    domains: BTreeMap<DomainId, ShardedStore>,
    links: Vec<TraderLink>,
    selection_load: SelectionLoad,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Self {
        Federation::default()
    }

    /// Adds (or replaces) a domain's offer store.
    pub fn add_domain(&mut self, id: DomainId, store: ShardedStore) {
        self.domains.insert(id, store);
    }

    /// A domain's store.
    pub fn domain(&self, id: DomainId) -> Option<&ShardedStore> {
        self.domains.get(&id)
    }

    /// A domain's store, mutably (for exports/withdrawals).
    pub fn domain_mut(&mut self, id: DomainId) -> Option<&mut ShardedStore> {
        self.domains.get_mut(&id)
    }

    /// Links `from` to `to`: lookups started in `from` may consult `to`
    /// for service types under `scope`, if the importer holds
    /// `required`.
    pub fn link(
        &mut self,
        from: DomainId,
        to: DomainId,
        scope: impl Into<String>,
        required: Rights,
    ) {
        self.links.push(TraderLink {
            from,
            to,
            scope: scope.into(),
            required,
        });
    }

    /// The links out of a domain.
    pub fn links_from(&self, from: DomainId) -> impl Iterator<Item = &TraderLink> {
        self.links.iter().filter(move |l| l.from == from)
    }

    /// Resolves an import starting at `at`: local domain first, then
    /// breadth-first over links the importer's `rights` and the type's
    /// scope admit, up to `max_hops`. The nearest (fewest-hop) domain
    /// with any match answers; `policy` picks among that domain's
    /// matches.
    ///
    /// # Errors
    ///
    /// See [`ImportError`]; notably [`ImportError::AccessDenied`] is
    /// distinguished from [`ImportError::NoMatch`] so callers can tell
    /// policy failures from genuine scarcity.
    #[allow(clippy::too_many_arguments)] // the full import context; callers name each piece
    pub fn import(
        &mut self,
        at: DomainId,
        rights: Rights,
        service_type: &ServiceType,
        required: &QosSpec,
        policy: SelectionPolicy,
        max_hops: u32,
        net: Option<&Network>,
    ) -> Result<ImportResolution, ImportError> {
        if !self.domains.contains_key(&at) {
            return Err(ImportError::UnknownDomain(at));
        }
        let mut visited: BTreeSet<DomainId> = BTreeSet::new();
        let mut queue: VecDeque<(DomainId, u32)> = VecDeque::new();
        queue.push_back((at, 0));
        visited.insert(at);
        let mut barred_offers_exist = false;

        while let Some((domain, hops)) = queue.pop_front() {
            let offers = self
                .domains
                .get_mut(&domain)
                .map(|store| store.offers_of_type(service_type))
                .unwrap_or_default();
            let matches = match_offers(&offers, required);
            if let Some(matched) = select(&matches, policy, &mut self.selection_load, net) {
                return Ok(ImportResolution {
                    matched,
                    domain,
                    hops,
                });
            }
            if hops >= max_hops {
                continue;
            }
            for link in self.links.iter().filter(|l| l.from == domain) {
                if visited.contains(&link.to) {
                    continue;
                }
                let admissible =
                    service_type.in_scope(&link.scope) && rights.contains(link.required);
                if !admissible {
                    // Only report AccessDenied if something real was
                    // barred: check the target actually holds the type.
                    if self
                        .domains
                        .get(&link.to)
                        .is_some_and(|s| s.has_type(service_type))
                    {
                        barred_offers_exist = true;
                    }
                    continue;
                }
                visited.insert(link.to);
                queue.push_back((link.to, hops + 1));
            }
        }
        if barred_offers_exist {
            Err(ImportError::AccessDenied)
        } else {
            Err(ImportError::NoMatch)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{ServiceOffer, SessionKind};
    use odp_sim::net::NodeId;

    fn store_with(traders: &[u32], offers: &[(&str, u32)]) -> ShardedStore {
        let mut s = ShardedStore::new(traders.iter().copied().map(NodeId));
        for (name, node) in offers {
            s.export(ServiceOffer::session(
                ServiceType::new(*name),
                SessionKind::Conference,
                QosSpec::video(),
                NodeId(*node),
            ))
            .unwrap();
        }
        s
    }

    fn st() -> ServiceType {
        ServiceType::new("video/conference")
    }

    #[test]
    fn local_offers_win_with_zero_hops() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[("video/conference", 5)]));
        let r = fed
            .import(
                DomainId(0),
                Rights::READ,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                3,
                None,
            )
            .unwrap();
        assert_eq!(r.hops, 0);
        assert_eq!(r.domain, DomainId(0));
    }

    #[test]
    fn federated_import_crosses_an_admissible_link() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(DomainId(0), DomainId(1), "video/", Rights::READ);
        let r = fed
            .import(
                DomainId(0),
                Rights::READ,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                3,
                None,
            )
            .unwrap();
        assert_eq!(r.hops, 1);
        assert_eq!(r.domain, DomainId(1));
        assert_eq!(r.matched.offer.node, NodeId(15));
    }

    #[test]
    fn out_of_scope_types_do_not_cross() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(DomainId(0), DomainId(1), "audio/", Rights::NONE);
        let err = fed
            .import(
                DomainId(0),
                Rights::ALL,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                3,
                None,
            )
            .unwrap_err();
        assert_eq!(err, ImportError::AccessDenied);
    }

    #[test]
    fn missing_rights_bar_the_link() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 15)]));
        fed.link(
            DomainId(0),
            DomainId(1),
            "",
            Rights::READ.union(Rights::GRANT),
        );
        assert_eq!(
            fed.import(
                DomainId(0),
                Rights::READ,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                3,
                None
            )
            .unwrap_err(),
            ImportError::AccessDenied
        );
        // With GRANT added the same import succeeds.
        assert!(fed
            .import(
                DomainId(0),
                Rights::READ.union(Rights::GRANT),
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                3,
                None
            )
            .is_ok());
    }

    #[test]
    fn hop_bound_limits_transitive_reach() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[]));
        fed.add_domain(DomainId(2), store_with(&[20], &[("video/conference", 25)]));
        fed.link(DomainId(0), DomainId(1), "", Rights::NONE);
        fed.link(DomainId(1), DomainId(2), "", Rights::NONE);
        assert_eq!(
            fed.import(
                DomainId(0),
                Rights::NONE,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                1,
                None
            )
            .unwrap_err(),
            ImportError::NoMatch
        );
        let r = fed
            .import(
                DomainId(0),
                Rights::NONE,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                2,
                None,
            )
            .unwrap();
        assert_eq!(r.hops, 2);
    }

    #[test]
    fn nearest_domain_answers_first() {
        let mut fed = Federation::new();
        fed.add_domain(DomainId(0), store_with(&[0], &[]));
        fed.add_domain(DomainId(1), store_with(&[10], &[("video/conference", 11)]));
        fed.add_domain(DomainId(2), store_with(&[20], &[("video/conference", 22)]));
        fed.link(DomainId(0), DomainId(1), "", Rights::NONE);
        fed.link(DomainId(1), DomainId(2), "", Rights::NONE);
        let r = fed
            .import(
                DomainId(0),
                Rights::NONE,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                5,
                None,
            )
            .unwrap();
        assert_eq!(r.domain, DomainId(1), "one hop beats two");
    }

    #[test]
    fn unknown_start_domain_errors() {
        let mut fed = Federation::new();
        assert_eq!(
            fed.import(
                DomainId(9),
                Rights::ALL,
                &st(),
                &QosSpec::video(),
                SelectionPolicy::FirstFit,
                1,
                None
            )
            .unwrap_err(),
            ImportError::UnknownDomain(DomainId(9))
        );
    }
}
