//! QoS-aware matching and pluggable offer selection.
//!
//! Matching reuses `odp_streams::qos::negotiate` as the satisfaction
//! check: an offer matches a requirement iff negotiation reaches an
//! agreed contract (possibly degraded) rather than best-effort. Ranking
//! among matches is a [`SelectionPolicy`]: take the first fit, spread
//! load over equivalent exporters, or minimise expected network latency
//! to the importer using the simulator's link model.

use odp_sim::net::{LinkQos, Network, NodeId};
use odp_streams::qos::{negotiate, NegotiationOutcome, QosSpec};

use crate::offer::ServiceOffer;

/// An offer that satisfied the importer's requirement, with the contract
/// negotiation settled on.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferMatch {
    /// The matching offer.
    pub offer: ServiceOffer,
    /// The offer's QoS as seen by the importer — the advertised QoS
    /// degraded across the federation path's accumulated penalty
    /// (identical to `offer.qos` for local resolutions).
    pub penalized: QosSpec,
    /// The agreed QoS (the requirement, possibly walked down its
    /// degradation ladder until the *penalized* offer satisfies it).
    pub agreed: QosSpec,
}

/// Filters `offers` to those whose advertised QoS can meet `required`
/// (via negotiation), preserving input order. Equivalent to
/// [`match_offers_via`] with a free path.
pub fn match_offers(offers: &[ServiceOffer], required: &QosSpec) -> Vec<OfferMatch> {
    match_offers_via(offers, required, &LinkQos::NONE)
}

/// Filters `offers` to those that can meet `required` *across* a path
/// charging `penalty`: each offer's advertised QoS is first degraded by
/// the accumulated penalty, and negotiation runs against that. Offers
/// that satisfy at home but not across the path are rejected here,
/// before selection.
pub fn match_offers_via(
    offers: &[ServiceOffer],
    required: &QosSpec,
    penalty: &LinkQos,
) -> Vec<OfferMatch> {
    offers
        .iter()
        .filter_map(|offer| {
            let penalized = offer.qos.degrade_across(penalty);
            match negotiate(&penalized, required) {
                NegotiationOutcome::Agreed(agreed) => Some(OfferMatch {
                    offer: offer.clone(),
                    penalized,
                    agreed,
                }),
                NegotiationOutcome::BestEffortOnly(_) => None,
            }
        })
        .collect()
}

/// How to pick among offers that all satisfy the requirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// The first match in store order (cheapest; deterministic).
    #[default]
    FirstFit,
    /// The match whose exporting node has been selected least often —
    /// spreads importers over replicated services.
    LeastLoaded,
    /// The match whose exporting node has the lowest expected one-way
    /// latency to the importer, per the network's link model.
    LowestLatency {
        /// The importing node latency is measured from.
        importer: NodeId,
    },
}

/// Tracks how often each exporting node has been handed out, for
/// [`SelectionPolicy::LeastLoaded`].
#[derive(Debug, Clone, Default)]
pub struct SelectionLoad {
    counts: std::collections::BTreeMap<NodeId, u64>,
}

impl SelectionLoad {
    /// A fresh (all-zero) load record.
    pub fn new() -> Self {
        SelectionLoad::default()
    }

    /// Times `node` has been selected.
    pub fn count(&self, node: NodeId) -> u64 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// Records a selection.
    pub fn record(&mut self, node: NodeId) {
        *self.counts.entry(node).or_insert(0) += 1;
    }
}

/// Picks one match according to `policy`, recording the choice in
/// `load`. `net` is consulted only by
/// [`SelectionPolicy::LowestLatency`]; passing `None` there falls back
/// to first-fit.
pub fn select(
    matches: &[OfferMatch],
    policy: SelectionPolicy,
    load: &mut SelectionLoad,
    net: Option<&Network>,
) -> Option<OfferMatch> {
    let chosen = match policy {
        SelectionPolicy::FirstFit => matches.first(),
        SelectionPolicy::LeastLoaded => matches
            .iter()
            .min_by_key(|m| (load.count(m.offer.node), m.offer.node)),
        SelectionPolicy::LowestLatency { importer } => match net {
            Some(net) => matches
                .iter()
                .min_by_key(|m| (net.link(m.offer.node, importer).latency, m.offer.node)),
            None => matches.first(),
        },
    };
    let chosen = chosen.cloned()?;
    load.record(chosen.offer.node);
    Some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{ServiceOffer, ServiceType, SessionKind};
    use odp_sim::net::LinkSpec;
    use odp_sim::time::SimDuration;

    fn offer_at(node: u32, qos: QosSpec) -> ServiceOffer {
        ServiceOffer::session(
            ServiceType::new("video/live"),
            SessionKind::Conference,
            qos,
            NodeId(node),
        )
    }

    #[test]
    fn matching_requires_an_agreed_contract() {
        let strong = offer_at(0, QosSpec::video());
        let hopeless = offer_at(
            1,
            QosSpec {
                throughput_fps: 1,
                latency_bound: SimDuration::from_secs(10),
                jitter_bound: SimDuration::from_secs(10),
                loss_bound: 1.0,
                ..QosSpec::video()
            },
        );
        let matches = match_offers(&[strong.clone(), hopeless], &QosSpec::video());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].offer.node, strong.node);
        assert_eq!(matches[0].agreed, QosSpec::video());
    }

    #[test]
    fn matching_accepts_degraded_agreements() {
        // 8 fps offer vs. a 25 fps requirement: negotiation degrades the
        // requirement until the offer satisfies it.
        let modest = offer_at(
            0,
            QosSpec {
                throughput_fps: 8,
                latency_bound: SimDuration::from_millis(400),
                jitter_bound: SimDuration::from_millis(100),
                loss_bound: 0.05,
                ..QosSpec::video()
            },
        );
        let matches = match_offers(&[modest], &QosSpec::video());
        assert_eq!(matches.len(), 1);
        assert!(matches[0].agreed.throughput_fps <= 8);
    }

    #[test]
    fn least_loaded_round_robins_equivalent_exporters() {
        let matches = match_offers(
            &[offer_at(0, QosSpec::video()), offer_at(1, QosSpec::video())],
            &QosSpec::video(),
        );
        let mut load = SelectionLoad::new();
        let mut picks = Vec::new();
        for _ in 0..4 {
            picks.push(
                select(&matches, SelectionPolicy::LeastLoaded, &mut load, None)
                    .unwrap()
                    .offer
                    .node,
            );
        }
        assert_eq!(load.count(NodeId(0)), 2);
        assert_eq!(load.count(NodeId(1)), 2);
        assert_ne!(picks[0], picks[1], "second pick must go to the other node");
    }

    #[test]
    fn lowest_latency_consults_the_link_model() {
        let mut net = Network::new(LinkSpec::wan(SimDuration::from_millis(80)));
        net.set_link(NodeId(1), NodeId(9), LinkSpec::lan());
        let matches = match_offers(
            &[offer_at(0, QosSpec::video()), offer_at(1, QosSpec::video())],
            &QosSpec::video(),
        );
        let mut load = SelectionLoad::new();
        let picked = select(
            &matches,
            SelectionPolicy::LowestLatency {
                importer: NodeId(9),
            },
            &mut load,
            Some(&net),
        )
        .unwrap();
        assert_eq!(
            picked.offer.node,
            NodeId(1),
            "LAN exporter beats WAN exporter"
        );
    }

    #[test]
    fn empty_match_set_selects_nothing() {
        let mut load = SelectionLoad::new();
        assert!(select(&[], SelectionPolicy::FirstFit, &mut load, None).is_none());
    }

    #[test]
    fn penalized_matching_charges_the_path() {
        use odp_sim::net::LinkQos;
        // At home the offer meets the video requirement exactly; across
        // a 60 ms path it no longer does, and negotiation must settle
        // on a degraded contract instead.
        let offer = offer_at(0, QosSpec::video());
        let penalty = LinkQos::new(SimDuration::from_millis(60), SimDuration::ZERO, 0.0);
        let at_home = match_offers_via(
            std::slice::from_ref(&offer),
            &QosSpec::video(),
            &LinkQos::NONE,
        );
        assert_eq!(at_home[0].agreed, QosSpec::video());
        assert_eq!(at_home[0].penalized, offer.qos);
        let across = match_offers_via(std::slice::from_ref(&offer), &QosSpec::video(), &penalty);
        assert_eq!(across.len(), 1);
        assert_eq!(
            across[0].penalized.latency_bound,
            SimDuration::from_millis(210)
        );
        assert!(
            across[0].agreed.throughput_fps < 25,
            "the agreement reflects the penalized offer"
        );
        // A hopeless path rejects the offer outright.
        let lossy = LinkQos::new(SimDuration::ZERO, SimDuration::ZERO, 0.5);
        assert!(
            match_offers_via(std::slice::from_ref(&offer), &QosSpec::video(), &lossy).is_empty()
        );
    }
}
