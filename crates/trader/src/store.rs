//! The sharded offer store: service types are consistent-hashed across
//! the domain's trader nodes, each shard keeping its own offers and load
//! counters.
//!
//! Consistent hashing (a ring with virtual nodes) keeps re-sharding
//! cheap: adding or removing a trader node moves only the offers whose
//! types hash into the arcs the node gains or loses, never the whole
//! store — the property `resharding_moves_only_affected_types` pins this
//! down.

use std::collections::{BTreeMap, BTreeSet};

use odp_mgmt::placement::UsagePattern;
use odp_sim::net::NodeId;
use odp_streams::qos::QosSpec;

use crate::offer::{OfferId, ServiceOffer, ServiceType, TraderError};

const VNODES_PER_TRADER: u32 = 16;

/// splitmix64 — cheap, well-mixed 64-bit hash for ring placement.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn hash_str(s: &str) -> u64 {
    // FNV-1a, then one mix round to spread short names over the ring.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    mix64(h)
}

/// A consistent-hash ring mapping service types to trader nodes.
#[derive(Debug, Clone, Default)]
pub struct HashRing {
    points: BTreeMap<u64, NodeId>,
}

impl HashRing {
    /// A ring over the given trader nodes.
    pub fn new(traders: impl IntoIterator<Item = NodeId>) -> Self {
        let mut ring = HashRing::default();
        for t in traders {
            ring.add(t);
        }
        ring
    }

    /// Adds a trader node (idempotent).
    pub fn add(&mut self, trader: NodeId) {
        for v in 0..VNODES_PER_TRADER {
            let point = mix64(((trader.0 as u64) << 32) | v as u64);
            self.points.insert(point, trader);
        }
    }

    /// Removes a trader node.
    pub fn remove(&mut self, trader: NodeId) {
        self.points.retain(|_, t| *t != trader);
    }

    /// The trader responsible for a service type, walking clockwise from
    /// the type's hash. `None` on an empty ring.
    pub fn node_for(&self, service_type: &ServiceType) -> Option<NodeId> {
        if self.points.is_empty() {
            return None;
        }
        let h = hash_str(&service_type.0);
        self.points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, t)| *t)
    }

    /// The distinct trader nodes on the ring.
    pub fn traders(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self.points.values().copied().collect();
        set.into_iter().collect()
    }
}

/// Load counters for one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardLoad {
    /// Offers currently held.
    pub offers: usize,
    /// Exports ever accepted.
    pub exports: u64,
    /// Lookups ever served.
    pub lookups: u64,
}

/// One shard: the offers whose service types hash to one trader node.
#[derive(Debug, Clone, Default)]
pub struct OfferStore {
    offers: BTreeMap<OfferId, ServiceOffer>,
    by_type: BTreeMap<ServiceType, BTreeSet<OfferId>>,
    load: ShardLoad,
}

impl OfferStore {
    /// An empty shard.
    pub fn new() -> Self {
        OfferStore::default()
    }

    /// Inserts a newly exported offer (the id must already be assigned
    /// and unique).
    pub fn insert(&mut self, offer: ServiceOffer) {
        self.load.exports += 1;
        self.place(offer);
    }

    /// Places an offer without counting it as a fresh export (shard
    /// migration during resharding, `Transfer` receipt during actor
    /// rebalancing).
    pub fn place(&mut self, offer: ServiceOffer) {
        self.by_type
            .entry(offer.service_type.clone())
            .or_default()
            .insert(offer.id);
        self.offers.insert(offer.id, offer);
        self.load.offers = self.offers.len();
    }

    /// Withdraws an offer, returning it.
    pub fn remove(&mut self, id: OfferId) -> Option<ServiceOffer> {
        let offer = self.offers.remove(&id)?;
        if let Some(set) = self.by_type.get_mut(&offer.service_type) {
            set.remove(&id);
            if set.is_empty() {
                self.by_type.remove(&offer.service_type);
            }
        }
        self.load.offers = self.offers.len();
        Some(offer)
    }

    /// Re-homes an offer to a new node, keeping its id, type, interface
    /// and properties (a migrated cluster keeps its service identity —
    /// importers re-resolve to the new home instead of re-binding by a
    /// fresh id). Returns `false` if the offer is unknown.
    pub fn rehome(&mut self, id: OfferId, node: NodeId) -> bool {
        match self.offers.get_mut(&id) {
            Some(offer) => {
                offer.node = node;
                true
            }
            None => false,
        }
    }

    /// Replaces the QoS of an offer in place.
    pub fn modify_qos(&mut self, id: OfferId, qos: QosSpec) -> bool {
        match self.offers.get_mut(&id) {
            Some(offer) => {
                offer.qos = qos;
                if let crate::offer::OfferedInterface::Stream(iface) = &mut offer.interface {
                    iface.qos = qos;
                }
                true
            }
            None => false,
        }
    }

    /// The offers of one type, counting the access as one served lookup.
    pub fn offers_of_type(&mut self, service_type: &ServiceType) -> Vec<&ServiceOffer> {
        self.load.lookups += 1;
        match self.by_type.get(service_type) {
            Some(ids) => ids.iter().filter_map(|id| self.offers.get(id)).collect(),
            None => Vec::new(),
        }
    }

    /// Looks one offer up without counting it as a lookup.
    pub fn offer(&self, id: OfferId) -> Option<&ServiceOffer> {
        self.offers.get(&id)
    }

    /// Every offer in the shard.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceOffer> {
        self.offers.values()
    }

    /// This shard's load counters.
    pub fn load(&self) -> ShardLoad {
        self.load
    }
}

/// The domain-wide offer store: a consistent-hash ring of shards.
#[derive(Debug, Clone, Default)]
pub struct ShardedStore {
    ring: HashRing,
    shards: BTreeMap<NodeId, OfferStore>,
    home: BTreeMap<OfferId, NodeId>,
    next_offer: u64,
}

impl ShardedStore {
    /// A store sharded over the given trader nodes.
    pub fn new(traders: impl IntoIterator<Item = NodeId>) -> Self {
        let mut store = ShardedStore::default();
        for t in traders {
            store.add_trader(t);
        }
        store
    }

    /// The ring (for importers that address shards directly).
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard a service type lives on.
    pub fn shard_for(&self, service_type: &ServiceType) -> Option<NodeId> {
        self.ring.node_for(service_type)
    }

    /// Exports an offer: assigns it an id and places it on its type's
    /// shard.
    ///
    /// # Errors
    ///
    /// [`TraderError::NoShards`] when no trader nodes are registered.
    pub fn export(&mut self, mut offer: ServiceOffer) -> Result<OfferId, TraderError> {
        let shard = self
            .ring
            .node_for(&offer.service_type)
            .ok_or(TraderError::NoShards)?;
        self.next_offer += 1;
        let id = OfferId(self.next_offer);
        offer.id = id;
        self.shards.entry(shard).or_default().insert(offer);
        self.home.insert(id, shard);
        Ok(id)
    }

    /// Withdraws an offer from whichever shard holds it.
    ///
    /// # Errors
    ///
    /// [`TraderError::UnknownOffer`] if no shard holds `id`.
    pub fn withdraw(&mut self, id: OfferId) -> Result<ServiceOffer, TraderError> {
        let shard = self.home.remove(&id).ok_or(TraderError::UnknownOffer(id))?;
        self.shards
            .get_mut(&shard)
            .and_then(|s| s.remove(id))
            .ok_or(TraderError::UnknownOffer(id))
    }

    /// Replaces an offer's QoS (e.g. the exporter re-advertises after a
    /// capacity change).
    ///
    /// # Errors
    ///
    /// [`TraderError::UnknownOffer`] if no shard holds `id`.
    pub fn modify_qos(&mut self, id: OfferId, qos: QosSpec) -> Result<(), TraderError> {
        let shard = self.home.get(&id).ok_or(TraderError::UnknownOffer(id))?;
        let ok = self
            .shards
            .get_mut(shard)
            .is_some_and(|s| s.modify_qos(id, qos));
        if ok {
            Ok(())
        } else {
            Err(TraderError::UnknownOffer(id))
        }
    }

    /// Looks an offer up by id.
    pub fn offer(&self, id: OfferId) -> Option<&ServiceOffer> {
        let shard = self.home.get(&id)?;
        self.shards.get(shard)?.offer(id)
    }

    /// All offers of a type (cloned out of the owning shard; the access
    /// counts toward that shard's lookup load).
    pub fn offers_of_type(&mut self, service_type: &ServiceType) -> Vec<ServiceOffer> {
        let Some(shard) = self.ring.node_for(service_type) else {
            return Vec::new();
        };
        self.shards
            .entry(shard)
            .or_default()
            .offers_of_type(service_type)
            .into_iter()
            .cloned()
            .collect()
    }

    /// Adds a trader node, migrating the offers whose types now hash to
    /// it. Returns how many offers moved.
    pub fn add_trader(&mut self, trader: NodeId) -> usize {
        self.ring.add(trader);
        self.shards.entry(trader).or_default();
        self.rehome()
    }

    /// Removes a trader node, migrating its offers to the survivors.
    /// Returns how many offers moved. Offers with no surviving shard
    /// (last trader removed) are dropped.
    pub fn remove_trader(&mut self, trader: NodeId) -> usize {
        self.ring.remove(trader);
        let mut moved = 0;
        if let Some(orphaned) = self.shards.remove(&trader) {
            for offer in orphaned.offers.into_values() {
                if let Some(new_shard) = self.ring.node_for(&offer.service_type) {
                    let id = offer.id;
                    self.shards.entry(new_shard).or_default().place(offer);
                    self.home.insert(id, new_shard);
                    moved += 1;
                } else {
                    self.home.remove(&offer.id);
                }
            }
        }
        moved + self.rehome()
    }

    /// Re-places every offer whose current shard no longer matches the
    /// ring; returns how many moved.
    fn rehome(&mut self) -> usize {
        let mut moves: Vec<(OfferId, NodeId, NodeId)> = Vec::new();
        for (&id, &current) in &self.home {
            if let Some(offer) = self.shards.get(&current).and_then(|s| s.offer(id)) {
                if let Some(target) = self.ring.node_for(&offer.service_type) {
                    if target != current {
                        moves.push((id, current, target));
                    }
                }
            }
        }
        let moved = moves.len();
        for (id, from, to) in moves {
            if let Some(offer) = self.shards.get_mut(&from).and_then(|s| s.remove(id)) {
                self.shards.entry(to).or_default().place(offer);
                self.home.insert(id, to);
            }
        }
        moved
    }

    /// True if any offer of `service_type` is held (read-only: does not
    /// count as a lookup).
    pub fn has_type(&self, service_type: &ServiceType) -> bool {
        self.shards
            .values()
            .any(|s| s.by_type.contains_key(service_type))
    }

    /// Per-shard load counters.
    pub fn loads(&self) -> Vec<(NodeId, ShardLoad)> {
        self.shards.iter().map(|(n, s)| (*n, s.load())).collect()
    }

    /// Total offers across all shards.
    pub fn len(&self) -> usize {
        self.home.len()
    }

    /// True when no offers are held.
    pub fn is_empty(&self) -> bool {
        self.home.is_empty()
    }

    /// The shard-balance coefficient: max shard offer count over the
    /// ideal even split (1.0 = perfectly balanced; higher = skew).
    pub fn balance_ratio(&self) -> f64 {
        let n = self.shards.len();
        if n == 0 || self.home.is_empty() {
            return 1.0;
        }
        let max = self
            .shards
            .values()
            .map(|s| s.load().offers)
            .max()
            .unwrap_or(0) as f64;
        let ideal = self.home.len() as f64 / n as f64;
        max / ideal.max(1.0)
    }

    /// This store's lookup traffic as a management usage pattern: each
    /// shard node's served-lookup count becomes that site's usage, which
    /// `odp_mgmt::placement::place` can consume to co-locate replicas or
    /// managers with trading hot spots.
    pub fn usage_pattern(&self) -> UsagePattern {
        let mut usage = UsagePattern::new();
        for (node, shard) in &self.shards {
            if shard.load().lookups > 0 {
                usage.record(*node, shard.load().lookups);
            }
        }
        usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::SessionKind;
    use odp_streams::qos::QosSpec;

    fn offer(name: &str) -> ServiceOffer {
        ServiceOffer::session(
            ServiceType::new(name),
            SessionKind::Workspace,
            QosSpec::audio(),
            NodeId(90),
        )
    }

    fn traders(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn rehome_moves_the_node_and_keeps_identity() {
        let mut store = OfferStore::new();
        let o = offer("raster/tile/0");
        let id = o.id;
        store.insert(o);
        assert!(store.rehome(id, NodeId(3)));
        let found = store.offers_of_type(&ServiceType::new("raster/tile/0"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, id, "same offer id after the move");
        assert_eq!(found[0].node, NodeId(3));
        assert!(!store.rehome(OfferId(999_999), NodeId(1)));
    }

    #[test]
    fn export_then_lookup_round_trips() {
        let mut store = ShardedStore::new(traders(3));
        let id = store.export(offer("video/live")).unwrap();
        let found = store.offers_of_type(&ServiceType::new("video/live"));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].id, id);
        assert!(store.offer(id).is_some());
    }

    #[test]
    fn withdraw_removes_everywhere() {
        let mut store = ShardedStore::new(traders(3));
        let id = store.export(offer("video/live")).unwrap();
        store.withdraw(id).unwrap();
        assert!(store
            .offers_of_type(&ServiceType::new("video/live"))
            .is_empty());
        assert_eq!(store.withdraw(id), Err(TraderError::UnknownOffer(id)));
    }

    #[test]
    fn modify_updates_qos_in_place() {
        let mut store = ShardedStore::new(traders(2));
        let id = store.export(offer("audio/talk")).unwrap();
        store.modify_qos(id, QosSpec::mobile_video()).unwrap();
        assert_eq!(store.offer(id).unwrap().qos, QosSpec::mobile_video());
    }

    #[test]
    fn no_shards_is_an_error() {
        let mut store = ShardedStore::new([]);
        assert_eq!(store.export(offer("x")), Err(TraderError::NoShards));
    }

    #[test]
    fn same_type_lands_on_one_shard() {
        let mut store = ShardedStore::new(traders(4));
        for _ in 0..5 {
            store.export(offer("video/live")).unwrap();
        }
        let loaded: Vec<_> = store
            .loads()
            .into_iter()
            .filter(|(_, l)| l.offers > 0)
            .collect();
        assert_eq!(loaded.len(), 1, "one type must occupy exactly one shard");
        assert_eq!(loaded[0].1.offers, 5);
    }

    #[test]
    fn many_types_spread_over_shards() {
        let mut store = ShardedStore::new(traders(4));
        for i in 0..200 {
            store.export(offer(&format!("service/kind-{i}"))).unwrap();
        }
        let occupied = store.loads().iter().filter(|(_, l)| l.offers > 0).count();
        assert_eq!(occupied, 4, "200 types should reach every one of 4 shards");
        assert!(
            store.balance_ratio() < 2.5,
            "skew too high: {}",
            store.balance_ratio()
        );
    }

    #[test]
    fn adding_a_trader_moves_only_some_offers() {
        let mut store = ShardedStore::new(traders(4));
        for i in 0..200 {
            store.export(offer(&format!("service/kind-{i}"))).unwrap();
        }
        let moved = store.add_trader(NodeId(99));
        assert!(moved > 0, "the new shard must take over some arcs");
        assert!(
            moved < 150,
            "consistent hashing must not reshuffle the world: moved {moved}"
        );
        assert_eq!(store.len(), 200, "no offers may be lost in resharding");
    }

    #[test]
    fn removing_a_trader_rehomes_its_offers() {
        let mut store = ShardedStore::new(traders(3));
        let mut ids = Vec::new();
        for i in 0..60 {
            ids.push(store.export(offer(&format!("s/{i}"))).unwrap());
        }
        store.remove_trader(NodeId(1));
        assert_eq!(store.len(), 60);
        for id in ids {
            assert!(store.offer(id).is_some(), "{id} lost in trader removal");
        }
        assert!(!store.loads().iter().any(|(n, _)| *n == NodeId(1)));
    }

    #[test]
    fn usage_pattern_reflects_lookup_traffic() {
        let mut store = ShardedStore::new(traders(2));
        store.export(offer("hot/type")).unwrap();
        for _ in 0..10 {
            store.offers_of_type(&ServiceType::new("hot/type"));
        }
        let usage = store.usage_pattern();
        assert_eq!(usage.total(), 10);
        let hot_shard = store.shard_for(&ServiceType::new("hot/type")).unwrap();
        assert_eq!(usage.count(hot_shard), 10);
    }
}
