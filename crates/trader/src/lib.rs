#![warn(missing_docs)]

//! # odp-trader — the ODP trading function
//!
//! The paper puts service discovery at the heart of open distributed
//! processing (§4.2.1): services are *exported* to a trader by the
//! objects that implement them and *imported* by clients that name a
//! service type and a required quality of service, never a network
//! address. This crate implements that trading function on the
//! deterministic simulator:
//!
//! - [`offer`] — the typed offer space: [`ServiceOffer`]s front a
//!   stream interface or a session endpoint, carry a [`QosSpec`] and
//!   free-form properties;
//! - [`store`] — the sharded offer store: service types are
//!   consistent-hashed over the domain's trader nodes, with per-shard
//!   load counters and cheap resharding;
//! - [`select`] — QoS-aware matching (reusing
//!   `odp_streams::qos::negotiate` as the satisfaction check) and
//!   pluggable selection: first-fit, least-loaded,
//!   lowest-expected-latency;
//! - [`cache`] — the importer-side TTL cache, keyed by (type, effective
//!   scope) and invalidated eagerly by multicast notes when exporters
//!   withdraw or re-advertise;
//! - [`plan`] — the [`ImportRequest`] builder, transitive [`Scope`]
//!   narrowing, and the rich [`ImportResolution`] (path taken, narrowed
//!   scope, accumulated penalty, penalized/agreed QoS);
//! - [`federation`] — linked trading domains with scoped, rights-gated,
//!   QoS-penalized import paths across administrative boundaries,
//!   resolved by a best-first planner
//!   ([`Federation::resolve`](federation::Federation::resolve));
//! - [`error`] — the unified, non-exhaustive [`TraderError`];
//! - [`actors`] — [`TraderActor`] / [`ImporterActor`] measuring lookup
//!   latency, cache hit rate and shard balance under the simulator.
//!
//! ```
//! use odp_sim::net::NodeId;
//! use odp_streams::qos::QosSpec;
//! use odp_trader::prelude::*;
//!
//! let mut store = ShardedStore::new([NodeId(0), NodeId(1)]);
//! let offer = ServiceOffer::session(
//!     ServiceType::new("session/design-review"),
//!     SessionKind::Workspace,
//!     QosSpec::audio(),
//!     NodeId(7),
//! );
//! store.export(offer).unwrap();
//! let offers = store.offers_of_type(&ServiceType::new("session/design-review"));
//! let matches = match_offers(&offers, &QosSpec::audio());
//! assert_eq!(matches.len(), 1);
//! assert_eq!(matches[0].offer.node, NodeId(7));
//! ```

pub mod actors;
pub mod cache;
pub mod error;
pub mod federation;
pub mod offer;
pub mod plan;
pub mod select;
pub mod store;
pub mod wire;

pub use actors::{
    ImporterActor, ImporterStats, Invalidation, InvalidationReason, LookupJob, TraderActor,
    TraderMsg,
};
pub use cache::{CacheStats, LookupCache};
pub use error::TraderError;
pub use federation::{DomainId, Federation, TraderLink};
pub use offer::{OfferId, OfferedInterface, ServiceOffer, ServiceType, SessionKind};
pub use plan::{ImportRequest, ImportResolution, Scope};
pub use select::{
    match_offers, match_offers_via, select, OfferMatch, SelectionLoad, SelectionPolicy,
};
pub use store::{HashRing, OfferStore, ShardLoad, ShardedStore};

/// Everything an importer or exporter typically needs.
pub mod prelude {
    pub use crate::actors::{ImporterActor, LookupJob, TraderActor, TraderMsg};
    pub use crate::cache::LookupCache;
    pub use crate::error::TraderError;
    pub use crate::federation::{DomainId, Federation, TraderLink};
    pub use crate::offer::{OfferId, OfferedInterface, ServiceOffer, ServiceType, SessionKind};
    pub use crate::plan::{ImportRequest, ImportResolution, Scope};
    pub use crate::select::{match_offers, match_offers_via, select, OfferMatch, SelectionPolicy};
    pub use crate::store::{HashRing, ShardedStore};
    pub use odp_sim::net::LinkQos;
    pub use odp_streams::qos::QosSpec;
}

// Re-exported so doc examples and downstream crates can name the QoS
// type the trader matches on — and the per-link penalty it charges —
// without importing odp-streams/odp-sim themselves.
pub use odp_sim::net::LinkQos;
pub use odp_streams::qos::QosSpec;
