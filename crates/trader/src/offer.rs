//! The typed service-offer space.
//!
//! An exporter registers a [`ServiceOffer`] with the trader: a named
//! service type, the interface behind it (a continuous-media
//! [`StreamInterface`] or a session endpoint), the QoS the exporter can
//! sustain, the hosting node and free-form properties. Importers ask the
//! trader for offers of a type whose QoS satisfies their requirement
//! (paper §4.2.1: "mechanisms must be provided to locate services in the
//! environment ... the ODP trader is precisely this function").

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_streams::binding::StreamInterface;
use odp_streams::qos::QosSpec;
use serde::{Deserialize, Serialize};

/// Names a service type ("video/conference", "session/design-review").
///
/// Hierarchical slash-separated names are conventional but not enforced;
/// federation link scopes match on prefixes of this name.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServiceType(pub String);

impl ServiceType {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>) -> Self {
        ServiceType(name.into())
    }

    /// True if this type falls under `prefix` ("video/" covers
    /// "video/conference"; the empty prefix covers everything).
    pub fn in_scope(&self, prefix: &str) -> bool {
        self.0.starts_with(prefix)
    }
}

impl fmt::Display for ServiceType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Names an offer within one trading domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OfferId(pub u64);

impl fmt::Display for OfferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offer#{}", self.0)
    }
}

/// The flavour of collaborative session an offer fronts (the trader is
/// deliberately ignorant of session internals — `cscw-core` maps its own
/// session machinery onto these).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SessionKind {
    /// A real-time conference.
    Conference,
    /// A shared workspace.
    Workspace,
    /// A co-authored document.
    Document,
    /// Application-defined.
    Custom(u32),
}

/// What an offer actually exports: a stream endpoint or a session entry
/// point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OfferedInterface {
    /// A continuous-media producer interface, bindable through
    /// `odp_streams::binding::BindingRegistry`.
    Stream(StreamInterface),
    /// A session endpoint of the given kind.
    Session(SessionKind),
}

/// One entry in the trader's offer space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceOffer {
    /// Assigned by the store at export time.
    pub id: OfferId,
    /// The advertised type.
    pub service_type: ServiceType,
    /// The exported interface.
    pub interface: OfferedInterface,
    /// The QoS the exporter undertakes to sustain.
    pub qos: QosSpec,
    /// The hosting node.
    pub node: NodeId,
    /// Free-form matching properties ("codec" → "h261", ...).
    pub properties: BTreeMap<String, String>,
}

impl ServiceOffer {
    /// An offer fronting a stream producer; QoS and node are taken from
    /// the interface itself. The id is assigned at export.
    pub fn stream(service_type: ServiceType, iface: StreamInterface) -> Self {
        ServiceOffer {
            id: OfferId(0),
            service_type,
            qos: iface.qos,
            node: iface.node,
            interface: OfferedInterface::Stream(iface),
            properties: BTreeMap::new(),
        }
    }

    /// An offer fronting a session endpoint. The id is assigned at
    /// export.
    pub fn session(
        service_type: ServiceType,
        kind: SessionKind,
        qos: QosSpec,
        node: NodeId,
    ) -> Self {
        ServiceOffer {
            id: OfferId(0),
            service_type,
            interface: OfferedInterface::Session(kind),
            qos,
            node,
            properties: BTreeMap::new(),
        }
    }

    /// Builder-style property attachment.
    pub fn with_property(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.properties.insert(key.into(), value.into());
        self
    }

    /// The stream interface, if this offer fronts one.
    pub fn stream_interface(&self) -> Option<&StreamInterface> {
        match &self.interface {
            OfferedInterface::Stream(iface) => Some(iface),
            OfferedInterface::Session(_) => None,
        }
    }
}

// The store error enum used to live here; it is now one surface of the
// unified error. Re-exported so `odp_trader::offer::TraderError` paths
// keep compiling.
pub use crate::error::TraderError;

#[cfg(test)]
mod tests {
    use super::*;
    use odp_streams::binding::{Direction, InterfaceId};
    use odp_streams::media::MediaKind;

    #[test]
    fn scope_prefixes_cover_subtypes() {
        let t = ServiceType::new("video/conference");
        assert!(t.in_scope("video/"));
        assert!(t.in_scope(""));
        assert!(!t.in_scope("audio/"));
    }

    #[test]
    fn stream_offers_inherit_node_and_qos_from_the_interface() {
        let iface = StreamInterface {
            id: InterfaceId(7),
            node: NodeId(3),
            kind: MediaKind::Video,
            direction: Direction::Producer,
            qos: QosSpec::video(),
        };
        let offer = ServiceOffer::stream(ServiceType::new("video/live"), iface)
            .with_property("codec", "h261");
        assert_eq!(offer.node, NodeId(3));
        assert_eq!(offer.qos, QosSpec::video());
        assert_eq!(offer.stream_interface().unwrap().id, InterfaceId(7));
        assert_eq!(
            offer.properties.get("codec").map(String::as_str),
            Some("h261")
        );
    }

    #[test]
    fn session_offers_have_no_stream_interface() {
        let offer = ServiceOffer::session(
            ServiceType::new("session/review"),
            SessionKind::Conference,
            QosSpec::audio(),
            NodeId(1),
        );
        assert!(offer.stream_interface().is_none());
    }
}
