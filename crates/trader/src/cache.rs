//! The importer-side lookup cache.
//!
//! Importers that repeatedly bind to the same service type should not
//! pay a trader round-trip every time; resolved offers are cached under
//! a TTL. Because cached offers can go stale the moment an exporter
//! withdraws or re-advertises, traders multicast invalidation notes
//! (via `odp-groupcomm`) and importers evict eagerly on receipt — TTL
//! expiry is only the backstop for importers outside the multicast
//! group.

use std::collections::BTreeMap;

use odp_sim::time::{SimDuration, SimTime};

use crate::offer::{ServiceOffer, ServiceType};

#[derive(Debug, Clone)]
struct CacheEntry {
    resolved: Vec<ServiceOffer>,
    cached_at: SimTime,
}

/// Hit/miss/eviction counters, exposed for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to go to a trader (absent or expired).
    pub misses: u64,
    /// Entries evicted by invalidation notes.
    pub invalidations: u64,
    /// Entries evicted by TTL expiry.
    pub expiries: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A TTL + invalidation cache of resolved lookups, keyed by service
/// type.
#[derive(Debug, Clone)]
pub struct LookupCache {
    ttl: SimDuration,
    entries: BTreeMap<ServiceType, CacheEntry>,
    stats: CacheStats,
}

impl LookupCache {
    /// A cache whose entries expire `ttl` after being stored.
    pub fn new(ttl: SimDuration) -> Self {
        LookupCache {
            ttl,
            entries: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Looks a type up, counting a hit or a miss. Expired entries are
    /// evicted and count as misses.
    pub fn get(&mut self, service_type: &ServiceType, now: SimTime) -> Option<Vec<ServiceOffer>> {
        match self.entries.get(service_type) {
            Some(entry) if now.saturating_since(entry.cached_at) <= self.ttl => {
                self.stats.hits += 1;
                Some(entry.resolved.clone())
            }
            Some(_) => {
                self.entries.remove(service_type);
                self.stats.expiries += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a resolved lookup.
    pub fn put(&mut self, service_type: ServiceType, resolved: Vec<ServiceOffer>, now: SimTime) {
        self.entries.insert(
            service_type,
            CacheEntry {
                resolved,
                cached_at: now,
            },
        );
    }

    /// Evicts one type (a withdraw/modify invalidation note arrived).
    /// Returns whether an entry was present.
    pub fn invalidate(&mut self, service_type: &ServiceType) -> bool {
        let present = self.entries.remove(service_type).is_some();
        if present {
            self.stats.invalidations += 1;
        }
        present
    }

    /// Drops everything (view change, trader failover).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Every cached resolution, in type order (coherence checkers
    /// compare these against the owning shard's store).
    pub fn entries(&self) -> impl Iterator<Item = (&ServiceType, &[ServiceOffer])> {
        self.entries.iter().map(|(t, e)| (t, e.resolved.as_slice()))
    }

    /// Entries currently held (expired-but-unqueried entries count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{ServiceOffer, SessionKind};
    use odp_sim::net::NodeId;
    use odp_streams::qos::QosSpec;

    fn st() -> ServiceType {
        ServiceType::new("video/live")
    }

    fn resolved() -> Vec<ServiceOffer> {
        vec![ServiceOffer::session(
            st(),
            SessionKind::Conference,
            QosSpec::video(),
            NodeId(4),
        )]
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let mut cache = LookupCache::new(SimDuration::from_millis(100));
        cache.put(st(), resolved(), at_ms(0));
        assert!(cache.get(&st(), at_ms(50)).is_some());
        assert!(
            cache.get(&st(), at_ms(100)).is_some(),
            "ttl boundary is inclusive"
        );
        assert!(cache.get(&st(), at_ms(101)).is_none(), "expired");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.expiries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn invalidation_evicts_immediately() {
        let mut cache = LookupCache::new(SimDuration::from_secs(3600));
        cache.put(st(), resolved(), at_ms(0));
        assert!(cache.invalidate(&st()));
        assert!(
            !cache.invalidate(&st()),
            "second invalidation finds nothing"
        );
        assert!(cache.get(&st(), at_ms(1)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn unknown_types_miss() {
        let mut cache = LookupCache::new(SimDuration::from_secs(1));
        assert!(cache.get(&st(), SimTime::ZERO).is_none());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }
}
