//! The importer-side lookup cache.
//!
//! Importers that repeatedly bind to the same service type should not
//! pay a trader round-trip every time; resolved offers are cached under
//! a TTL. Because cached offers can go stale the moment an exporter
//! withdraws or re-advertises, traders multicast invalidation notes
//! (via `odp-groupcomm`) and importers evict eagerly on receipt — TTL
//! expiry is only the backstop for importers outside the multicast
//! group.
//!
//! Entries are keyed by **(service type, effective scope)**: a
//! resolution obtained across a federation path is only valid under the
//! scope that path narrowed to, and caching it under the bare type
//! would leak a cross-link hit to a caller whose admissible scope is
//! narrower (or vice versa). Local resolutions use [`Scope::all`] via
//! the [`LookupCache::get`] / [`LookupCache::put`] shorthands;
//! federated callers key with
//! [`ImportResolution::narrowed_scope`](crate::plan::ImportResolution::narrowed_scope)
//! through [`LookupCache::get_scoped`] / [`LookupCache::put_scoped`].
//! Invalidation notes name only the type and evict every scope's entry
//! for it.

use odp_fabric::SortedVecMap;
use odp_sim::time::{SimDuration, SimTime};

use crate::offer::{ServiceOffer, ServiceType};
use crate::plan::Scope;

#[derive(Debug, Clone)]
struct CacheEntry {
    resolved: Vec<ServiceOffer>,
    cached_at: SimTime,
}

/// Hit/miss/eviction counters, exposed for metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that had to go to a trader (absent or expired).
    pub misses: u64,
    /// Entries evicted by invalidation notes.
    pub invalidations: u64,
    /// Entries evicted by TTL expiry.
    pub expiries: u64,
}

impl CacheStats {
    /// Hits over total lookups, in `[0, 1]`; 0 when nothing was looked
    /// up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A TTL + invalidation cache of resolved lookups, keyed by (service
/// type, effective scope).
#[derive(Debug, Clone)]
pub struct LookupCache {
    ttl: SimDuration,
    // Sorted vecs, not BTreeMaps: the working set is a handful of hot
    // types consulted on every lookup, and contiguous entries keep the
    // probe cache-friendly while preserving (type, scope) order.
    entries: SortedVecMap<ServiceType, SortedVecMap<Scope, CacheEntry>>,
    stats: CacheStats,
}

impl LookupCache {
    /// A cache whose entries expire `ttl` after being stored.
    pub fn new(ttl: SimDuration) -> Self {
        LookupCache {
            ttl,
            entries: SortedVecMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configured TTL.
    pub fn ttl(&self) -> SimDuration {
        self.ttl
    }

    /// Looks a type up under the unrestricted scope (local
    /// resolutions). See [`LookupCache::get_scoped`].
    pub fn get(&mut self, service_type: &ServiceType, now: SimTime) -> Option<Vec<ServiceOffer>> {
        self.get_scoped(service_type, &Scope::all(), now)
    }

    /// Looks a (type, effective scope) pair up, counting a hit or a
    /// miss. Expired entries are evicted and count as misses. An entry
    /// cached under a different scope — even a wider one — never
    /// answers.
    pub fn get_scoped(
        &mut self,
        service_type: &ServiceType,
        scope: &Scope,
        now: SimTime,
    ) -> Option<Vec<ServiceOffer>> {
        let scopes = self.entries.get_mut(service_type)?;
        match scopes.get(scope) {
            Some(entry) if now.saturating_since(entry.cached_at) <= self.ttl => {
                self.stats.hits += 1;
                Some(entry.resolved.clone())
            }
            Some(_) => {
                scopes.remove(scope);
                if scopes.is_empty() {
                    self.entries.remove(service_type);
                }
                self.stats.expiries += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores a resolved lookup under the unrestricted scope (local
    /// resolutions). See [`LookupCache::put_scoped`].
    pub fn put(&mut self, service_type: ServiceType, resolved: Vec<ServiceOffer>, now: SimTime) {
        self.put_scoped(service_type, Scope::all(), resolved, now);
    }

    /// Stores a resolved lookup under the scope it was obtained under.
    pub fn put_scoped(
        &mut self,
        service_type: ServiceType,
        scope: Scope,
        resolved: Vec<ServiceOffer>,
        now: SimTime,
    ) {
        self.entries.get_mut_or_default(service_type).insert(
            scope,
            CacheEntry {
                resolved,
                cached_at: now,
            },
        );
    }

    /// Evicts one type (a withdraw/modify invalidation note arrived) —
    /// every scope's entry for it, since the note names only the type.
    /// Returns whether any entry was present.
    pub fn invalidate(&mut self, service_type: &ServiceType) -> bool {
        match self.entries.remove(service_type) {
            Some(scopes) => {
                self.stats.invalidations += scopes.len() as u64;
                true
            }
            None => false,
        }
    }

    /// Drops everything (view change, trader failover).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Every cached resolution, in (type, scope) order (coherence
    /// checkers compare these against the owning shard's store).
    pub fn entries(&self) -> impl Iterator<Item = (&ServiceType, &Scope, &[ServiceOffer])> {
        self.entries.iter().flat_map(|(t, scopes)| {
            scopes
                .iter()
                .map(move |(s, e)| (t, s, e.resolved.as_slice()))
        })
    }

    /// Entries currently held (expired-but-unqueried entries count).
    pub fn len(&self) -> usize {
        self.entries.values().map(SortedVecMap::len).sum()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::offer::{ServiceOffer, SessionKind};
    use odp_sim::net::NodeId;
    use odp_streams::qos::QosSpec;

    fn st() -> ServiceType {
        ServiceType::new("video/live")
    }

    fn resolved() -> Vec<ServiceOffer> {
        vec![ServiceOffer::session(
            st(),
            SessionKind::Conference,
            QosSpec::video(),
            NodeId(4),
        )]
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let mut cache = LookupCache::new(SimDuration::from_millis(100));
        cache.put(st(), resolved(), at_ms(0));
        assert!(cache.get(&st(), at_ms(50)).is_some());
        assert!(
            cache.get(&st(), at_ms(100)).is_some(),
            "ttl boundary is inclusive"
        );
        assert!(cache.get(&st(), at_ms(101)).is_none(), "expired");
        assert!(cache.is_empty(), "expiry evicts");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.expiries), (2, 1, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn invalidation_evicts_immediately() {
        let mut cache = LookupCache::new(SimDuration::from_secs(3600));
        cache.put(st(), resolved(), at_ms(0));
        assert!(cache.invalidate(&st()));
        assert!(
            !cache.invalidate(&st()),
            "second invalidation finds nothing"
        );
        assert!(cache.get(&st(), at_ms(1)).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn unknown_types_miss() {
        let mut cache = LookupCache::new(SimDuration::from_secs(1));
        assert!(cache.get(&st(), SimTime::ZERO).is_none());
        assert_eq!(cache.stats().hit_rate(), 0.0);
    }

    #[test]
    fn scoped_entries_do_not_leak_across_scopes() {
        // The regression this keying fixes: a resolution obtained
        // across a wide link must not answer a caller whose effective
        // scope is narrower, nor the other way around.
        let mut cache = LookupCache::new(SimDuration::from_secs(10));
        cache.put_scoped(st(), Scope::prefix("video/"), resolved(), at_ms(0));
        assert!(
            cache.get(&st(), at_ms(1)).is_none(),
            "unrestricted lookup must not see the scoped entry"
        );
        assert!(cache
            .get_scoped(&st(), &Scope::prefix("video/"), at_ms(1))
            .is_some());
        assert!(
            cache
                .get_scoped(&st(), &Scope::prefix("video/hd/"), at_ms(1))
                .is_none(),
            "a narrower effective scope is a different key"
        );
    }

    #[test]
    fn invalidation_names_the_type_and_evicts_every_scope() {
        let mut cache = LookupCache::new(SimDuration::from_secs(10));
        cache.put(st(), resolved(), at_ms(0));
        cache.put_scoped(st(), Scope::prefix("video/"), resolved(), at_ms(0));
        assert_eq!(cache.len(), 2);
        assert!(cache.invalidate(&st()));
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2, "one per evicted scope");
    }

    #[test]
    fn entries_iterate_in_type_then_scope_order() {
        let mut cache = LookupCache::new(SimDuration::from_secs(10));
        cache.put_scoped(st(), Scope::prefix("video/"), resolved(), at_ms(0));
        cache.put(st(), resolved(), at_ms(0));
        let keys: Vec<(ServiceType, Scope)> = cache
            .entries()
            .map(|(t, s, _)| (t.clone(), s.clone()))
            .collect();
        assert_eq!(
            keys,
            vec![(st(), Scope::all()), (st(), Scope::prefix("video/")),]
        );
    }
}
