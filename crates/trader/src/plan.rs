//! Import planning: the request surface, scope narrowing and path
//! states for the federated best-first planner.
//!
//! The paper's trading function crosses "different administrative and
//! management domains" (§4.2.1), and QoS must stay end-to-end
//! meaningful across those crossings (§4.2.5). Two consequences shape
//! this module:
//!
//! - **Scope narrows transitively.** A federation path admits only the
//!   service types every traversed link admits, i.e. the *intersection*
//!   of the link scopes. For prefix scopes the intersection is the
//!   longer prefix when one extends the other, and [`Scope::Empty`]
//!   when they diverge — a branch whose narrowed scope can no longer
//!   admit the requested type is pruned before any remote store is
//!   consulted.
//! - **QoS degrades per link.** Each traversed link charges a
//!   [`LinkQos`] penalty; the planner accumulates it along the path and
//!   matches offers on their *penalized* QoS
//!   ([`QosSpec::degrade_across`]), so a weaker-but-nearer offer can
//!   beat a stronger-but-farther one.
//!
//! [`ImportRequest`] is the builder-style call surface
//! (`ImportRequest::for_type(t).qos(req).max_hops(n).rights(r).policy(p)`)
//! consumed by [`Federation::resolve`](crate::federation::Federation::resolve);
//! [`ImportResolution`] reports the path taken, the narrowed scope it
//! arrived under, the accumulated penalty and the penalized/agreed QoS.

use std::fmt;

use odp_access::rights::Rights;
use odp_sim::net::LinkQos;
use odp_streams::qos::QosSpec;

use crate::federation::DomainId;
use crate::offer::ServiceType;
use crate::select::{OfferMatch, SelectionPolicy};

/// Hop bound applied when [`ImportRequest::max_hops`] is not called.
pub const DEFAULT_MAX_HOPS: u32 = 3;

/// The set of service types admissible along a federation path: a name
/// prefix, or nothing at all once traversed link scopes have diverged.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Scope {
    /// Every service type under the prefix ("" admits all).
    Prefix(String),
    /// No service type — the intersection of incompatible link scopes.
    Empty,
}

impl Scope {
    /// The unrestricted scope (the empty prefix): where an import
    /// starts, before any link has been traversed.
    pub fn all() -> Self {
        Scope::Prefix(String::new())
    }

    /// A prefix scope.
    pub fn prefix(prefix: impl Into<String>) -> Self {
        Scope::Prefix(prefix.into())
    }

    /// True if `service_type` falls inside this scope.
    pub fn admits(&self, service_type: &ServiceType) -> bool {
        match self {
            Scope::Prefix(p) => service_type.in_scope(p),
            Scope::Empty => false,
        }
    }

    /// The intersection of this scope with one more link's prefix
    /// scope. Nested prefixes intersect to the longer (narrower) one;
    /// divergent prefixes intersect to [`Scope::Empty`].
    pub fn narrow(&self, link_scope: &str) -> Scope {
        match self {
            Scope::Empty => Scope::Empty,
            Scope::Prefix(p) if link_scope.starts_with(p.as_str()) => {
                Scope::Prefix(link_scope.to_string())
            }
            Scope::Prefix(p) if p.starts_with(link_scope) => Scope::Prefix(p.clone()),
            Scope::Prefix(_) => Scope::Empty,
        }
    }

    /// True if nothing is admitted.
    pub fn is_empty(&self) -> bool {
        matches!(self, Scope::Empty)
    }

    /// The prefix, if anything is admitted.
    pub fn as_prefix(&self) -> Option<&str> {
        match self {
            Scope::Prefix(p) => Some(p),
            Scope::Empty => None,
        }
    }
}

impl fmt::Display for Scope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scope::Prefix(p) if p.is_empty() => f.write_str("*"),
            Scope::Prefix(p) => write!(f, "{p}*"),
            Scope::Empty => f.write_str("(nothing)"),
        }
    }
}

/// A federated import, stated as what the importer wants rather than as
/// positional arguments.
///
/// ```
/// use odp_access::rights::Rights;
/// use odp_streams::qos::QosSpec;
/// use odp_trader::plan::ImportRequest;
/// use odp_trader::offer::ServiceType;
/// use odp_trader::select::SelectionPolicy;
///
/// let request = ImportRequest::for_type(ServiceType::new("video/conference"))
///     .qos(QosSpec::video())
///     .rights(Rights::READ)
///     .policy(SelectionPolicy::LeastLoaded)
///     .max_hops(4);
/// assert_eq!(request.hop_bound(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ImportRequest {
    service_type: ServiceType,
    required: QosSpec,
    rights: Rights,
    policy: SelectionPolicy,
    max_hops: u32,
    narrowing: bool,
    penalty_accounting: bool,
}

impl ImportRequest {
    /// A request for offers of `service_type`, with permissive defaults:
    /// any QoS ([`QosSpec::permissive`]), no rights, first-fit
    /// selection, [`DEFAULT_MAX_HOPS`] hops.
    pub fn for_type(service_type: ServiceType) -> Self {
        ImportRequest {
            service_type,
            required: QosSpec::permissive(),
            rights: Rights::NONE,
            policy: SelectionPolicy::FirstFit,
            max_hops: DEFAULT_MAX_HOPS,
            narrowing: true,
            penalty_accounting: true,
        }
    }

    /// The QoS the importer requires (matched against each offer's
    /// *penalized* QoS).
    pub fn qos(mut self, required: QosSpec) -> Self {
        self.required = required;
        self
    }

    /// The rights the importer holds (links demand rights to traverse).
    pub fn rights(mut self, rights: Rights) -> Self {
        self.rights = rights;
        self
    }

    /// How to pick among a domain's satisfying offers.
    pub fn policy(mut self, policy: SelectionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The federation hop bound (0 = local domain only).
    pub fn max_hops(mut self, max_hops: u32) -> Self {
        self.max_hops = max_hops;
        self
    }

    /// Disables transitive scope narrowing: links are traversed on
    /// rights alone and the narrowed scope is only applied when
    /// answering (the eager-forwarding federation the planner
    /// replaces). Kept as the baseline for benchmarks; resolutions are
    /// identical, only more remote stores get consulted.
    pub fn narrowing(mut self, on: bool) -> Self {
        self.narrowing = on;
        self
    }

    /// Disables per-link penalty *accounting* in matching: offers are
    /// matched and reported on their raw advertised QoS as if they were
    /// local. This is a fault-injection knob for `odp-check`'s
    /// `trader-federation` invariant, which recomputes the penalty from
    /// the traversed links and flags the discrepancy; production
    /// callers leave it on.
    pub fn penalty_accounting(mut self, on: bool) -> Self {
        self.penalty_accounting = on;
        self
    }

    /// The requested service type.
    pub fn service_type(&self) -> &ServiceType {
        &self.service_type
    }

    /// The required QoS.
    pub fn required(&self) -> &QosSpec {
        &self.required
    }

    /// The importer's rights.
    pub fn importer_rights(&self) -> Rights {
        self.rights
    }

    /// The selection policy.
    pub fn selection_policy(&self) -> SelectionPolicy {
        self.policy
    }

    /// The hop bound.
    pub fn hop_bound(&self) -> u32 {
        self.max_hops
    }

    /// Whether branches are pruned by transitive scope narrowing.
    pub fn narrows_scope(&self) -> bool {
        self.narrowing
    }

    /// Whether matching charges the accumulated link penalty.
    pub fn accounts_penalty(&self) -> bool {
        self.penalty_accounting
    }
}

/// A successful federated import: the selected offer plus how — and
/// under what accumulated restrictions — it was reached.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportResolution {
    /// The selected offer, its penalized QoS and the agreed contract.
    pub matched: OfferMatch,
    /// The domain the offer came from.
    pub domain: DomainId,
    /// Federation hops traversed (0 = local domain).
    pub hops: u32,
    /// The domains traversed, starting domain first, answering domain
    /// last.
    pub path: Vec<DomainId>,
    /// The scope the path narrowed to (intersection of traversed link
    /// scopes) — cache entries must be keyed under it.
    pub narrowed_scope: Scope,
    /// The accumulated per-link QoS penalty along `path`.
    pub penalty: LinkQos,
    /// Remote domains whose stores were consulted (the cross-domain
    /// message count; the starting domain is free).
    pub domains_queried: u32,
}

/// One frontier entry of the best-first search: a domain reached under
/// a narrowed scope, an accumulated penalty and a concrete path.
#[derive(Debug, Clone)]
pub(crate) struct PathState {
    pub(crate) domain: DomainId,
    pub(crate) hops: u32,
    pub(crate) scope: Scope,
    pub(crate) penalty: LinkQos,
    pub(crate) path: Vec<DomainId>,
    /// Insertion order; the final tie-breaker, so a zero-penalty
    /// federation explores in exactly the legacy breadth-first order.
    pub(crate) seq: u64,
}

impl PathState {
    /// Best-first priority: lowest penalty first (latency, then jitter,
    /// then loss), then fewest hops, then insertion order. Loss is in
    /// `[0, 1]`, where IEEE-754 bit patterns order like the values.
    pub(crate) fn key(&self) -> (u64, u64, u64, u32, u64) {
        (
            self.penalty.latency.as_micros(),
            self.penalty.jitter.as_micros(),
            self.penalty.loss.to_bits(),
            self.hops,
            self.seq,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::time::SimDuration;

    fn st(name: &str) -> ServiceType {
        ServiceType::new(name)
    }

    #[test]
    fn empty_prefix_narrows_to_the_link_scope() {
        assert_eq!(Scope::all().narrow("video/"), Scope::prefix("video/"));
        assert_eq!(Scope::all().narrow(""), Scope::all());
    }

    #[test]
    fn nested_prefixes_narrow_to_the_longer_one() {
        assert_eq!(
            Scope::prefix("video/").narrow("video/hd/"),
            Scope::prefix("video/hd/")
        );
        assert_eq!(
            Scope::prefix("video/hd/").narrow("video/"),
            Scope::prefix("video/hd/"),
            "a wider later link cannot re-widen the path"
        );
    }

    #[test]
    fn divergent_prefixes_narrow_to_empty() {
        let narrowed = Scope::prefix("video/").narrow("audio/");
        assert!(narrowed.is_empty());
        assert!(!narrowed.admits(&st("video/conference")));
        assert!(!narrowed.admits(&st("audio/call")));
        assert!(narrowed.narrow("").is_empty(), "empty stays empty");
    }

    #[test]
    fn admission_follows_the_prefix() {
        assert!(Scope::all().admits(&st("anything/at/all")));
        assert!(Scope::prefix("video/").admits(&st("video/hd/tour")));
        assert!(!Scope::prefix("video/hd/").admits(&st("video/conference")));
        assert_eq!(Scope::prefix("video/").as_prefix(), Some("video/"));
        assert_eq!(Scope::Empty.as_prefix(), None);
    }

    #[test]
    fn scope_displays_read_like_globs() {
        assert_eq!(Scope::all().to_string(), "*");
        assert_eq!(Scope::prefix("video/").to_string(), "video/*");
        assert_eq!(Scope::Empty.to_string(), "(nothing)");
    }

    #[test]
    fn request_defaults_are_permissive() {
        let r = ImportRequest::for_type(st("video/conference"));
        assert_eq!(r.required(), &QosSpec::permissive());
        assert_eq!(r.importer_rights(), Rights::NONE);
        assert_eq!(r.selection_policy(), SelectionPolicy::FirstFit);
        assert_eq!(r.hop_bound(), DEFAULT_MAX_HOPS);
        assert!(r.narrows_scope());
        assert!(r.accounts_penalty());
    }

    #[test]
    fn builder_sets_every_knob() {
        let r = ImportRequest::for_type(st("video/conference"))
            .qos(QosSpec::video())
            .rights(Rights::READ)
            .policy(SelectionPolicy::LeastLoaded)
            .max_hops(7)
            .narrowing(false)
            .penalty_accounting(false);
        assert_eq!(r.required(), &QosSpec::video());
        assert_eq!(r.importer_rights(), Rights::READ);
        assert_eq!(r.selection_policy(), SelectionPolicy::LeastLoaded);
        assert_eq!(r.hop_bound(), 7);
        assert!(!r.narrows_scope());
        assert!(!r.accounts_penalty());
    }

    #[test]
    fn path_keys_prefer_penalty_over_hops_and_preserve_insertion_order() {
        let state = |lat_ms: u64, hops: u32, seq: u64| PathState {
            domain: DomainId(0),
            hops,
            scope: Scope::all(),
            penalty: LinkQos::new(SimDuration::from_millis(lat_ms), SimDuration::ZERO, 0.0),
            path: vec![DomainId(0)],
            seq,
        };
        // A nearer (lower-penalty) three-hop path beats a farther
        // one-hop path.
        assert!(state(10, 3, 5).key() < state(100, 1, 1).key());
        // At equal penalty, fewer hops win; at equal hops, insertion
        // order (= legacy BFS order) wins.
        assert!(state(0, 1, 2).key() < state(0, 2, 1).key());
        assert!(state(0, 1, 1).key() < state(0, 1, 2).key());
    }
}
