//! Wire codecs for the trader's cache-coherence envelope: the
//! [`Invalidation`] notes disseminated over the reliable multicast
//! group round-trip through `odp-net` framing, so the coherence group
//! (traders + importers) can run over a real transport as
//! `GcMsg<Invalidation>`.
//!
//! The full [`crate::actors::TraderMsg`] surface (lookups carrying
//! [`crate::offer::ServiceOffer`] and QoS specs) is deliberately not on
//! the wire yet — see the backend-support matrix in the README.

use odp_net::error::NetError;
use odp_net::wire::{WireCodec, WireReader};

use crate::actors::{Invalidation, InvalidationReason};
use crate::offer::ServiceType;

impl WireCodec for ServiceType {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(ServiceType(String::decode(r)?))
    }
}

impl WireCodec for InvalidationReason {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            InvalidationReason::Withdrawn => 0,
            InvalidationReason::Modified => 1,
            InvalidationReason::Rebalanced => 2,
        };
        tag.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(InvalidationReason::Withdrawn),
            1 => Ok(InvalidationReason::Modified),
            2 => Ok(InvalidationReason::Rebalanced),
            tag => Err(NetError::BadTag {
                what: "InvalidationReason",
                tag: tag as u32,
            }),
        }
    }
}

impl WireCodec for Invalidation {
    fn encode(&self, out: &mut Vec<u8>) {
        self.service_type.encode(out);
        self.reason.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(Invalidation {
            service_type: ServiceType::decode(r)?,
            reason: InvalidationReason::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidations_roundtrip() {
        for reason in [
            InvalidationReason::Withdrawn,
            InvalidationReason::Modified,
            InvalidationReason::Rebalanced,
        ] {
            let note = Invalidation {
                service_type: ServiceType::new("video/conference"),
                reason,
            };
            let mut buf = Vec::new();
            note.encode(&mut buf);
            assert_eq!(WireReader::new(&buf).finish(), Ok(note));
        }
    }
}
