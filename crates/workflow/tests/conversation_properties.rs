//! Property tests for the conversation-for-action state machine.

use odp_workflow::speechact::{Conversation, ConversationState, Party, SpeechAct};
use proptest::prelude::*;

const ALL_ACTS: [SpeechAct; 9] = [
    SpeechAct::Request,
    SpeechAct::Promise,
    SpeechAct::CounterOffer,
    SpeechAct::AcceptCounter,
    SpeechAct::Decline,
    SpeechAct::Withdraw,
    SpeechAct::ReportCompletion,
    SpeechAct::DeclareComplete,
    SpeechAct::DeclineReport,
];

fn arb_move() -> impl Strategy<Value = (u32, usize)> {
    (0u32..3, 0usize..ALL_ACTS.len())
}

proptest! {
    /// Safety: no sequence of (possibly illegal) moves can corrupt the
    /// machine — closed conversations stay closed, the transcript only
    /// ever grows by accepted moves, and rejected moves leave the state
    /// untouched.
    #[test]
    fn random_moves_never_corrupt_the_machine(moves in prop::collection::vec(arb_move(), 0..60)) {
        let customer = Party(0);
        let performer = Party(1);
        let mut convo = Conversation::new(customer, performer);
        let mut accepted = 0u64;
        let mut rejected = 0u64;
        for (who, act_idx) in moves {
            let before = convo.state();
            let act = ALL_ACTS[act_idx];
            match convo.act(Party(who), act) {
                Ok(after) => {
                    accepted += 1;
                    prop_assert_ne!(before, ConversationState::Completed, "completed is final");
                    prop_assert_ne!(before, ConversationState::Cancelled, "cancelled is final");
                    prop_assert_eq!(convo.state(), after);
                }
                Err(rej) => {
                    rejected += 1;
                    prop_assert_eq!(convo.state(), before, "rejection must not change state");
                    prop_assert_eq!(rej.state, before);
                }
            }
        }
        prop_assert_eq!(convo.acts_taken(), accepted);
        prop_assert_eq!(convo.rejections(), rejected);
    }

    /// Liveness: whatever mess the random prefix leaves, an open
    /// conversation can always be driven to a terminal state by the
    /// right parties.
    #[test]
    fn open_conversations_can_always_close(moves in prop::collection::vec(arb_move(), 0..40)) {
        let customer = Party(0);
        let performer = Party(1);
        let mut convo = Conversation::new(customer, performer);
        for (who, act_idx) in moves {
            let _ = convo.act(Party(who), ALL_ACTS[act_idx]);
        }
        // Drive to completion from any live state.
        loop {
            match convo.state() {
                ConversationState::Completed | ConversationState::Cancelled => break,
                ConversationState::Initial => {
                    convo.act(customer, SpeechAct::Request).expect("legal");
                }
                ConversationState::Requested => {
                    convo.act(performer, SpeechAct::Promise).expect("legal");
                }
                ConversationState::Countered => {
                    convo.act(customer, SpeechAct::AcceptCounter).expect("legal");
                }
                ConversationState::Promised => {
                    convo.act(performer, SpeechAct::ReportCompletion).expect("legal");
                }
                ConversationState::Reported => {
                    convo.act(customer, SpeechAct::DeclareComplete).expect("legal");
                }
            }
        }
    }

    /// The happy path costs exactly four explicit acts regardless of the
    /// party identities chosen.
    #[test]
    fn happy_path_cost_is_constant(c in 0u32..50, p in 51u32..100) {
        let customer = Party(c);
        let performer = Party(p);
        let mut convo = Conversation::new(customer, performer);
        convo.act(customer, SpeechAct::Request).expect("legal");
        convo.act(performer, SpeechAct::Promise).expect("legal");
        convo.act(performer, SpeechAct::ReportCompletion).expect("legal");
        convo.act(customer, SpeechAct::DeclareComplete).expect("legal");
        prop_assert_eq!(convo.state(), ConversationState::Completed);
        prop_assert_eq!(convo.acts_taken(), 4);
    }
}
