//! Routed office procedures: the Domino model with conditional routing.
//!
//! Domino (Kreifelts et al., cited in §3.2.1) modelled office procedures
//! as *routes*: each step is performed by a role and its **outcome**
//! selects the next step — including backward routes ("rejected → back to
//! drafting"), the rework loops real procedures are full of. This module
//! extends [`crate::models::ProcedureModel`]'s straight-line procedure
//! with that routing.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::speechact::Party;

/// Names a step in a route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepId(pub u32);

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "step{}", self.0)
    }
}

/// Where an outcome routes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Next {
    /// Continue at this step.
    Step(StepId),
    /// The procedure is complete.
    Done,
}

/// One routed step.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteStep {
    /// Its id.
    pub id: StepId,
    /// The role that must perform it.
    pub role: Party,
    /// Human-readable purpose.
    pub description: String,
    /// Outcome label → next step.
    pub routes: BTreeMap<String, Next>,
}

/// One entry in the audit trail.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrailEntry {
    /// The step performed.
    pub step: StepId,
    /// Who performed it.
    pub by: Party,
    /// The outcome chosen.
    pub outcome: String,
}

/// Errors from routed procedures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The procedure has already finished.
    AlreadyDone,
    /// The actor is not the current step's role.
    WrongRole {
        /// Who tried.
        who: Party,
        /// Who is prescribed.
        required: Party,
    },
    /// The outcome is not on the step's route map.
    UnknownOutcome {
        /// The step.
        step: StepId,
        /// The offending outcome.
        outcome: String,
    },
    /// A route references a step that does not exist (definition error).
    DanglingRoute(StepId),
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::AlreadyDone => write!(f, "procedure already complete"),
            RouteError::WrongRole { who, required } => {
                write!(f, "{who} may not perform this step (requires {required})")
            }
            RouteError::UnknownOutcome { step, outcome } => {
                write!(f, "outcome {outcome:?} is not routed from {step}")
            }
            RouteError::DanglingRoute(s) => write!(f, "route references missing {s}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A running routed procedure.
///
/// # Examples
///
/// ```
/// use odp_workflow::routes::{Next, RouteStep, RoutedProcedure, StepId};
/// use odp_workflow::speechact::Party;
/// use std::collections::BTreeMap;
///
/// let draft = RouteStep {
///     id: StepId(0),
///     role: Party(1),
///     description: "draft the memo".into(),
///     routes: BTreeMap::from([("done".to_owned(), Next::Step(StepId(1)))]),
/// };
/// let approve = RouteStep {
///     id: StepId(1),
///     role: Party(2),
///     description: "approve".into(),
///     routes: BTreeMap::from([
///         ("approved".to_owned(), Next::Done),
///         ("rejected".to_owned(), Next::Step(StepId(0))),
///     ]),
/// };
/// let mut proc = RoutedProcedure::new(vec![draft, approve], StepId(0))?;
/// proc.perform(Party(1), "done")?;
/// proc.perform(Party(2), "rejected")?; // rework loop
/// proc.perform(Party(1), "done")?;
/// proc.perform(Party(2), "approved")?;
/// assert!(proc.is_done());
/// assert_eq!(proc.trail().len(), 4);
/// # Ok::<(), odp_workflow::routes::RouteError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RoutedProcedure {
    steps: BTreeMap<StepId, RouteStep>,
    current: Option<StepId>,
    trail: Vec<TrailEntry>,
    rejections: u64,
}

impl RoutedProcedure {
    /// Builds a procedure, validating that every route points at a real
    /// step.
    ///
    /// # Errors
    ///
    /// [`RouteError::DanglingRoute`] on a broken definition.
    pub fn new(steps: Vec<RouteStep>, start: StepId) -> Result<Self, RouteError> {
        let map: BTreeMap<StepId, RouteStep> = steps.into_iter().map(|s| (s.id, s)).collect();
        for step in map.values() {
            for next in step.routes.values() {
                if let Next::Step(target) = next {
                    if !map.contains_key(target) {
                        return Err(RouteError::DanglingRoute(*target));
                    }
                }
            }
        }
        if !map.contains_key(&start) {
            return Err(RouteError::DanglingRoute(start));
        }
        Ok(RoutedProcedure {
            steps: map,
            current: Some(start),
            trail: Vec::new(),
            rejections: 0,
        })
    }

    /// The step currently awaiting performance (`None` when done).
    pub fn current(&self) -> Option<&RouteStep> {
        self.current.and_then(|id| self.steps.get(&id))
    }

    /// True once a route reached [`Next::Done`].
    pub fn is_done(&self) -> bool {
        self.current.is_none()
    }

    /// The audit trail, in performance order.
    pub fn trail(&self) -> &[TrailEntry] {
        &self.trail
    }

    /// Out-of-protocol attempts rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Performs the current step with an outcome, advancing the route.
    ///
    /// # Errors
    ///
    /// See [`RouteError`]; rejected attempts are counted.
    pub fn perform(&mut self, who: Party, outcome: &str) -> Result<Next, RouteError> {
        let Some(current_id) = self.current else {
            self.rejections += 1;
            return Err(RouteError::AlreadyDone);
        };
        // Build-time validation guarantees every reachable id has a step.
        // odp-check: allow(unwrap)
        let step = self.steps.get(&current_id).expect("validated at build");
        if who != step.role {
            self.rejections += 1;
            return Err(RouteError::WrongRole {
                who,
                required: step.role,
            });
        }
        let Some(&next) = step.routes.get(outcome) else {
            self.rejections += 1;
            return Err(RouteError::UnknownOutcome {
                step: current_id,
                outcome: outcome.to_owned(),
            });
        };
        self.trail.push(TrailEntry {
            step: current_id,
            by: who,
            outcome: outcome.to_owned(),
        });
        self.current = match next {
            Next::Step(s) => Some(s),
            Next::Done => None,
        };
        Ok(next)
    }

    /// How many times a given step was performed (rework counting).
    pub fn times_performed(&self, step: StepId) -> usize {
        self.trail.iter().filter(|t| t.step == step).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(id: u32, role: u32, routes: &[(&str, Next)]) -> RouteStep {
        RouteStep {
            id: StepId(id),
            role: Party(role),
            description: format!("step {id}"),
            routes: routes.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        }
    }

    /// draft(1) -> review(2) -> {approved: file(3), rejected: draft}.
    fn expense_claim() -> RoutedProcedure {
        RoutedProcedure::new(
            vec![
                step(0, 1, &[("done", Next::Step(StepId(1)))]),
                step(
                    1,
                    2,
                    &[
                        ("approved", Next::Step(StepId(2))),
                        ("rejected", Next::Step(StepId(0))),
                    ],
                ),
                step(2, 3, &[("filed", Next::Done)]),
            ],
            StepId(0),
        )
        .expect("valid definition")
    }

    #[test]
    fn straight_through_route() {
        let mut p = expense_claim();
        p.perform(Party(1), "done").unwrap();
        p.perform(Party(2), "approved").unwrap();
        assert_eq!(p.perform(Party(3), "filed").unwrap(), Next::Done);
        assert!(p.is_done());
        assert_eq!(p.trail().len(), 3);
    }

    #[test]
    fn rework_loop_routes_backwards() {
        let mut p = expense_claim();
        p.perform(Party(1), "done").unwrap();
        p.perform(Party(2), "rejected").unwrap();
        assert_eq!(p.current().unwrap().id, StepId(0), "back to drafting");
        p.perform(Party(1), "done").unwrap();
        p.perform(Party(2), "approved").unwrap();
        p.perform(Party(3), "filed").unwrap();
        assert!(p.is_done());
        assert_eq!(p.times_performed(StepId(0)), 2, "drafted twice");
    }

    #[test]
    fn wrong_role_and_unknown_outcome_are_rejected() {
        let mut p = expense_claim();
        assert!(matches!(
            p.perform(Party(9), "done"),
            Err(RouteError::WrongRole { .. })
        ));
        assert!(matches!(
            p.perform(Party(1), "nope"),
            Err(RouteError::UnknownOutcome { .. })
        ));
        assert_eq!(p.rejections(), 2);
        assert!(p.trail().is_empty(), "rejected attempts leave no trail");
    }

    #[test]
    fn finished_procedures_accept_nothing() {
        let mut p = expense_claim();
        p.perform(Party(1), "done").unwrap();
        p.perform(Party(2), "approved").unwrap();
        p.perform(Party(3), "filed").unwrap();
        assert_eq!(
            p.perform(Party(1), "done").unwrap_err(),
            RouteError::AlreadyDone
        );
    }

    #[test]
    fn dangling_routes_are_definition_errors() {
        let bad = RoutedProcedure::new(
            vec![step(0, 1, &[("done", Next::Step(StepId(9)))])],
            StepId(0),
        );
        assert_eq!(bad.unwrap_err(), RouteError::DanglingRoute(StepId(9)));
        let bad_start = RoutedProcedure::new(vec![step(0, 1, &[])], StepId(5));
        assert_eq!(bad_start.unwrap_err(), RouteError::DanglingRoute(StepId(5)));
    }
}
