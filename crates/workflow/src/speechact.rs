//! The conversation-for-action state machine underlying Coordinator and
//! Action Workflow (Winograd/Flores, Medina-Mora et al.) — the paper's
//! §3.2.1 "formal models based on speech act theory".
//!
//! A conversation runs between a *customer* (who requests) and a
//! *performer*. Every move is an explicit, typed speech act; moves not
//! permitted in the current state are rejected. This explicitness is
//! exactly what the paper's §4.1 critique targets ("Co-ordinator makes
//! explicit and textual a dimension of human communication which is
//! otherwise contained in the overall context of interaction"), and what
//! experiment E11 quantifies.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A participant in a conversation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Party(pub u32);

impl fmt::Display for Party {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// The speech acts of the conversation-for-action network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeechAct {
    /// Customer asks for something.
    Request,
    /// Performer commits.
    Promise,
    /// Performer proposes different conditions.
    CounterOffer,
    /// Customer accepts the counter.
    AcceptCounter,
    /// Performer refuses.
    Decline,
    /// Customer withdraws the request.
    Withdraw,
    /// Performer asserts the work is done.
    ReportCompletion,
    /// Customer declares satisfaction (closes successfully).
    DeclareComplete,
    /// Customer rejects the reported work.
    DeclineReport,
}

impl fmt::Display for SpeechAct {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SpeechAct::Request => "request",
            SpeechAct::Promise => "promise",
            SpeechAct::CounterOffer => "counter-offer",
            SpeechAct::AcceptCounter => "accept-counter",
            SpeechAct::Decline => "decline",
            SpeechAct::Withdraw => "withdraw",
            SpeechAct::ReportCompletion => "report-completion",
            SpeechAct::DeclareComplete => "declare-complete",
            SpeechAct::DeclineReport => "decline-report",
        };
        f.write_str(s)
    }
}

/// The conversation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConversationState {
    /// Nothing asked yet.
    Initial,
    /// Requested, awaiting the performer.
    Requested,
    /// Counter-offered, awaiting the customer.
    Countered,
    /// Promised: work in progress.
    Promised,
    /// Completion reported, awaiting the customer's declaration.
    Reported,
    /// Closed with satisfaction.
    Completed,
    /// Closed without (declined/withdrawn).
    Cancelled,
}

/// A rejected move: the act was not legal in the current state or was
/// made by the wrong party.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejected {
    /// The offending act.
    pub act: SpeechAct,
    /// Who tried it.
    pub by: Party,
    /// The state it was attempted in.
    pub state: ConversationState,
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} may not {} in state {:?}",
            self.by, self.act, self.state
        )
    }
}

impl std::error::Error for Rejected {}

/// One conversation for action.
///
/// # Examples
///
/// ```
/// use odp_workflow::speechact::{Conversation, ConversationState, Party, SpeechAct};
///
/// let mut c = Conversation::new(Party(0), Party(1));
/// c.act(Party(0), SpeechAct::Request)?;
/// c.act(Party(1), SpeechAct::Promise)?;
/// c.act(Party(1), SpeechAct::ReportCompletion)?;
/// c.act(Party(0), SpeechAct::DeclareComplete)?;
/// assert_eq!(c.state(), ConversationState::Completed);
/// assert_eq!(c.acts_taken(), 4);
/// # Ok::<(), odp_workflow::speechact::Rejected>(())
/// ```
#[derive(Debug, Clone)]
pub struct Conversation {
    customer: Party,
    performer: Party,
    state: ConversationState,
    acts: Vec<(Party, SpeechAct)>,
    rejections: u64,
}

impl Conversation {
    /// Opens a conversation between a customer and a performer.
    pub fn new(customer: Party, performer: Party) -> Self {
        Conversation {
            customer,
            performer,
            state: ConversationState::Initial,
            acts: Vec::new(),
            rejections: 0,
        }
    }

    /// The current state.
    pub fn state(&self) -> ConversationState {
        self.state
    }

    /// Moves taken so far (the "forced explicitness" count).
    pub fn acts_taken(&self) -> u64 {
        self.acts.len() as u64
    }

    /// Moves rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// The transcript.
    pub fn transcript(&self) -> &[(Party, SpeechAct)] {
        &self.acts
    }

    /// Attempts a speech act.
    ///
    /// # Errors
    ///
    /// [`Rejected`] when the act is illegal in the current state or made
    /// by the wrong party; the rejection is counted.
    pub fn act(&mut self, by: Party, act: SpeechAct) -> Result<ConversationState, Rejected> {
        use ConversationState::*;
        use SpeechAct::*;
        let customer = self.customer;
        let performer = self.performer;
        let next = match (self.state, act) {
            (Initial, Request) if by == customer => Requested,
            (Requested, Promise) if by == performer => Promised,
            (Requested, CounterOffer) if by == performer => Countered,
            (Requested, Decline) if by == performer => Cancelled,
            (Requested, Withdraw) if by == customer => Cancelled,
            (Countered, AcceptCounter) if by == customer => Promised,
            (Countered, Withdraw) if by == customer => Cancelled,
            (Promised, ReportCompletion) if by == performer => Reported,
            (Promised, Withdraw) if by == customer => Cancelled,
            (Promised, Decline) if by == performer => Cancelled,
            (Reported, DeclareComplete) if by == customer => Completed,
            (Reported, DeclineReport) if by == customer => Promised,
            _ => {
                self.rejections += 1;
                return Err(Rejected {
                    act,
                    by,
                    state: self.state,
                });
            }
        };
        self.acts.push((by, act));
        self.state = next;
        Ok(next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ConversationState::*;
    use SpeechAct::*;

    fn convo() -> Conversation {
        Conversation::new(Party(0), Party(1))
    }

    #[test]
    fn happy_path_takes_four_explicit_acts() {
        let mut c = convo();
        c.act(Party(0), Request).unwrap();
        c.act(Party(1), Promise).unwrap();
        c.act(Party(1), ReportCompletion).unwrap();
        c.act(Party(0), DeclareComplete).unwrap();
        assert_eq!(c.state(), Completed);
        assert_eq!(c.acts_taken(), 4);
        assert_eq!(c.rejections(), 0);
    }

    #[test]
    fn counter_offer_path() {
        let mut c = convo();
        c.act(Party(0), Request).unwrap();
        c.act(Party(1), CounterOffer).unwrap();
        assert_eq!(c.state(), Countered);
        c.act(Party(0), AcceptCounter).unwrap();
        assert_eq!(c.state(), Promised);
    }

    #[test]
    fn decline_and_withdraw_cancel() {
        let mut c = convo();
        c.act(Party(0), Request).unwrap();
        c.act(Party(1), Decline).unwrap();
        assert_eq!(c.state(), Cancelled);

        let mut c2 = convo();
        c2.act(Party(0), Request).unwrap();
        c2.act(Party(0), Withdraw).unwrap();
        assert_eq!(c2.state(), Cancelled);
    }

    #[test]
    fn declined_report_reopens_the_work() {
        let mut c = convo();
        c.act(Party(0), Request).unwrap();
        c.act(Party(1), Promise).unwrap();
        c.act(Party(1), ReportCompletion).unwrap();
        c.act(Party(0), DeclineReport).unwrap();
        assert_eq!(c.state(), Promised);
        c.act(Party(1), ReportCompletion).unwrap();
        c.act(Party(0), DeclareComplete).unwrap();
        assert_eq!(c.state(), Completed);
        assert_eq!(c.acts_taken(), 6, "rework costs two more explicit acts");
    }

    #[test]
    fn wrong_party_is_rejected() {
        let mut c = convo();
        // The performer cannot request.
        let err = c.act(Party(1), Request).unwrap_err();
        assert_eq!(err.state, Initial);
        // The customer cannot promise.
        c.act(Party(0), Request).unwrap();
        assert!(c.act(Party(0), Promise).is_err());
        assert_eq!(c.rejections(), 2);
    }

    #[test]
    fn out_of_order_acts_are_rejected() {
        let mut c = convo();
        assert!(
            c.act(Party(1), ReportCompletion).is_err(),
            "no work promised yet"
        );
        c.act(Party(0), Request).unwrap();
        assert!(
            c.act(Party(0), DeclareComplete).is_err(),
            "nothing reported"
        );
        assert_eq!(c.rejections(), 2);
        assert_eq!(c.acts_taken(), 1);
    }

    #[test]
    fn closed_conversations_accept_nothing() {
        let mut c = convo();
        c.act(Party(0), Request).unwrap();
        c.act(Party(1), Decline).unwrap();
        assert!(c.act(Party(0), Request).is_err());
        assert!(c.act(Party(1), ReportCompletion).is_err());
    }
}
