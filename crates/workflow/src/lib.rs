#![warn(missing_docs)]

//! # odp-workflow — coordination models and the prescriptiveness question
//!
//! The paper's §3.2.1 surveys workflow systems — speech-act based
//! (Coordinator, Action Workflow), office procedures (Domino), and
//! informal structured sharing (Object Lens) — and its §4.1 warns that
//! *overly prescriptive* models fail in practice ("the world's first
//! fascist computer system"). This crate makes the warning measurable:
//!
//! - [`speechact`] — the conversation-for-action state machine;
//! - [`models`] — three [`models::CoordinationModel`]s (speech-act,
//!   office-procedure, free-form) that run the same task script and
//!   report forced explicit acts and rejected deviations (experiment
//!   E11);
//! - [`routes`] — Domino-style routed procedures with conditional
//!   outcomes and rework loops.
//!
//! ```
//! use odp_workflow::speechact::{Conversation, Party, SpeechAct};
//!
//! let mut c = Conversation::new(Party(0), Party(1));
//! c.act(Party(0), SpeechAct::Request)?;
//! assert!(c.act(Party(0), SpeechAct::Promise).is_err(), "only the performer promises");
//! # Ok::<(), odp_workflow::speechact::Rejected>(())
//! ```

pub mod models;
pub mod routes;
pub mod speechact;

pub use models::{
    CoordinationModel, FreeFormModel, PrescriptivenessStats, ProcedureModel, ProcedureStep,
    SpeechActModel, WorkAction, WorkItem,
};
pub use routes::{Next, RouteError, RouteStep, RoutedProcedure, StepId, TrailEntry};
pub use speechact::{Conversation, ConversationState, Party, Rejected, SpeechAct};
