//! The three coordination models of experiment E11, behind one trait, so
//! the same cooperative task can run under each and the paper's
//! prescriptiveness critique (§4.1) becomes measurable.
//!
//! - [`SpeechActModel`] — Coordinator-style: every work item is wrapped
//!   in a conversation for action; the protocol's speech acts are forced
//!   on the participants and deviations are rejected.
//! - [`ProcedureModel`] — Domino-style office procedure: items must be
//!   performed in the prescribed order by the prescribed role.
//! - [`FreeFormModel`] — Object-Lens-style informal coordination: shared
//!   state, no prescriptions, social protocol assumed.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::speechact::{Conversation, ConversationState, Party, SpeechAct};

/// Names a unit of work in the shared task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkItem(pub u32);

impl fmt::Display for WorkItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item{}", self.0)
    }
}

/// What a participant tries to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkAction {
    /// Begin working on an item.
    Start(WorkItem),
    /// Finish an item.
    Finish(WorkItem),
}

/// Prescriptiveness accounting for one model run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PrescriptivenessStats {
    /// Actions the participants wanted to take.
    pub attempts: u64,
    /// Protocol acts the model *forced* beyond the work itself
    /// (requests, promises, reports, declarations, sign-offs).
    pub forced_acts: u64,
    /// Attempts the model rejected as out of protocol.
    pub rejections: u64,
}

/// A coordination model that the E11 task script can run against.
pub trait CoordinationModel {
    /// A short model name for reports.
    fn name(&self) -> &'static str;

    /// A participant attempts an action. `Ok(())` means the work
    /// happened (plus whatever protocol the model imposed, counted in
    /// the stats); `Err` describes a rejected deviation.
    fn attempt(&mut self, who: Party, action: WorkAction) -> Result<(), String>;

    /// True once every declared item is finished.
    fn is_complete(&self) -> bool;

    /// The accounting.
    fn stats(&self) -> PrescriptivenessStats;
}

// ---------------------------------------------------------------------
// Free-form
// ---------------------------------------------------------------------

/// Informal coordination: a shared checklist, no prescriptions.
#[derive(Debug, Default)]
pub struct FreeFormModel {
    items: BTreeMap<WorkItem, bool>, // finished?
    stats: PrescriptivenessStats,
}

impl FreeFormModel {
    /// Declares the items to be done (any order, any participant).
    pub fn new(items: impl IntoIterator<Item = WorkItem>) -> Self {
        FreeFormModel {
            items: items.into_iter().map(|i| (i, false)).collect(),
            stats: PrescriptivenessStats::default(),
        }
    }
}

impl CoordinationModel for FreeFormModel {
    fn name(&self) -> &'static str {
        "free-form"
    }

    fn attempt(&mut self, _who: Party, action: WorkAction) -> Result<(), String> {
        self.stats.attempts += 1;
        match action {
            WorkAction::Start(_) => Ok(()), // starting is nobody's business
            WorkAction::Finish(item) => {
                // Even finishing an undeclared item is tolerated.
                self.items.insert(item, true);
                Ok(())
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.items.values().all(|&done| done)
    }

    fn stats(&self) -> PrescriptivenessStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Office procedure
// ---------------------------------------------------------------------

/// One prescribed step of an office procedure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcedureStep {
    /// The item this step produces.
    pub item: WorkItem,
    /// The only participant allowed to perform it.
    pub role: Party,
}

/// Domino-style procedure: steps happen in order, by role.
#[derive(Debug)]
pub struct ProcedureModel {
    steps: Vec<ProcedureStep>,
    /// Index of the next step; items before it are finished.
    cursor: usize,
    started: bool,
    stats: PrescriptivenessStats,
}

impl ProcedureModel {
    /// Declares the procedure.
    pub fn new(steps: Vec<ProcedureStep>) -> Self {
        ProcedureModel {
            steps,
            cursor: 0,
            started: false,
            stats: PrescriptivenessStats::default(),
        }
    }

    /// The step currently expected, if any.
    pub fn expected(&self) -> Option<ProcedureStep> {
        self.steps.get(self.cursor).copied()
    }
}

impl CoordinationModel for ProcedureModel {
    fn name(&self) -> &'static str {
        "office-procedure"
    }

    fn attempt(&mut self, who: Party, action: WorkAction) -> Result<(), String> {
        self.stats.attempts += 1;
        let Some(step) = self.steps.get(self.cursor).copied() else {
            self.stats.rejections += 1;
            return Err("procedure already finished".to_owned());
        };
        let item = match action {
            WorkAction::Start(i) | WorkAction::Finish(i) => i,
        };
        if item != step.item {
            self.stats.rejections += 1;
            return Err(format!("{item} is out of order; expected {}", step.item));
        }
        if who != step.role {
            self.stats.rejections += 1;
            return Err(format!("{who} is not the prescribed role for {item}"));
        }
        match action {
            WorkAction::Start(_) => {
                if self.started {
                    self.stats.rejections += 1;
                    return Err(format!("{item} already started"));
                }
                self.started = true;
                Ok(())
            }
            WorkAction::Finish(_) => {
                if !self.started {
                    // The procedure forces an explicit start first.
                    self.stats.forced_acts += 1;
                }
                self.started = false;
                self.cursor += 1;
                Ok(())
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.cursor >= self.steps.len()
    }

    fn stats(&self) -> PrescriptivenessStats {
        self.stats
    }
}

// ---------------------------------------------------------------------
// Speech act (Coordinator)
// ---------------------------------------------------------------------

/// Coordinator-style: a conversation for action wraps every item. The
/// `coordinator` party plays the customer of every conversation; each
/// item has a designated performer.
#[derive(Debug)]
pub struct SpeechActModel {
    coordinator: Party,
    conversations: BTreeMap<WorkItem, (Party, Conversation)>,
    stats: PrescriptivenessStats,
}

impl SpeechActModel {
    /// Declares the items and who must perform each.
    pub fn new(coordinator: Party, items: impl IntoIterator<Item = (WorkItem, Party)>) -> Self {
        SpeechActModel {
            coordinator,
            conversations: items
                .into_iter()
                .map(|(item, performer)| {
                    (item, (performer, Conversation::new(coordinator, performer)))
                })
                .collect(),
            stats: PrescriptivenessStats::default(),
        }
    }
}

impl CoordinationModel for SpeechActModel {
    fn name(&self) -> &'static str {
        "speech-act"
    }

    fn attempt(&mut self, who: Party, action: WorkAction) -> Result<(), String> {
        self.stats.attempts += 1;
        let item = match action {
            WorkAction::Start(i) | WorkAction::Finish(i) => i,
        };
        let Some((performer, convo)) = self.conversations.get_mut(&item) else {
            self.stats.rejections += 1;
            return Err(format!("{item} is not part of the plan"));
        };
        let performer = *performer;
        if who != performer {
            self.stats.rejections += 1;
            return Err(format!("{who} is not the designated performer of {item}"));
        }
        match action {
            WorkAction::Start(_) => {
                if convo.state() != ConversationState::Initial {
                    self.stats.rejections += 1;
                    return Err(format!("{item} already under way"));
                }
                // The protocol forces an explicit request and promise
                // before anyone lifts a finger.
                let coordinator = self.coordinator;
                convo
                    .act(coordinator, SpeechAct::Request)
                    .map_err(|e| e.to_string())?;
                convo
                    .act(performer, SpeechAct::Promise)
                    .map_err(|e| e.to_string())?;
                self.stats.forced_acts += 2;
                Ok(())
            }
            WorkAction::Finish(_) => {
                if convo.state() != ConversationState::Promised {
                    self.stats.rejections += 1;
                    return Err(format!("{item} has no promised work to finish"));
                }
                let coordinator = self.coordinator;
                convo
                    .act(performer, SpeechAct::ReportCompletion)
                    .map_err(|e| e.to_string())?;
                convo
                    .act(coordinator, SpeechAct::DeclareComplete)
                    .map_err(|e| e.to_string())?;
                self.stats.forced_acts += 2;
                Ok(())
            }
        }
    }

    fn is_complete(&self) -> bool {
        self.conversations
            .values()
            .all(|(_, c)| c.state() == ConversationState::Completed)
    }

    fn stats(&self) -> PrescriptivenessStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(n: u32) -> Vec<WorkItem> {
        (0..n).map(WorkItem).collect()
    }

    #[test]
    fn freeform_accepts_anything_and_forces_nothing() {
        let mut m = FreeFormModel::new(items(3));
        // Finish out of order, start after finish, whatever.
        m.attempt(Party(2), WorkAction::Finish(WorkItem(2)))
            .unwrap();
        m.attempt(Party(0), WorkAction::Start(WorkItem(0))).unwrap();
        m.attempt(Party(1), WorkAction::Finish(WorkItem(0)))
            .unwrap();
        m.attempt(Party(1), WorkAction::Finish(WorkItem(1)))
            .unwrap();
        assert!(m.is_complete());
        let s = m.stats();
        assert_eq!(s.forced_acts, 0);
        assert_eq!(s.rejections, 0);
    }

    #[test]
    fn procedure_rejects_out_of_order_and_wrong_role() {
        let steps = vec![
            ProcedureStep {
                item: WorkItem(0),
                role: Party(0),
            },
            ProcedureStep {
                item: WorkItem(1),
                role: Party(1),
            },
        ];
        let mut m = ProcedureModel::new(steps);
        assert!(
            m.attempt(Party(1), WorkAction::Finish(WorkItem(1)))
                .is_err(),
            "out of order"
        );
        assert!(
            m.attempt(Party(1), WorkAction::Finish(WorkItem(0)))
                .is_err(),
            "wrong role"
        );
        m.attempt(Party(0), WorkAction::Finish(WorkItem(0)))
            .unwrap();
        m.attempt(Party(1), WorkAction::Finish(WorkItem(1)))
            .unwrap();
        assert!(m.is_complete());
        assert_eq!(m.stats().rejections, 2);
    }

    #[test]
    fn speech_act_forces_four_acts_per_item() {
        let mut m = SpeechActModel::new(Party(9), [(WorkItem(0), Party(1))]);
        m.attempt(Party(1), WorkAction::Start(WorkItem(0))).unwrap();
        m.attempt(Party(1), WorkAction::Finish(WorkItem(0)))
            .unwrap();
        assert!(m.is_complete());
        let s = m.stats();
        assert_eq!(s.forced_acts, 4, "request+promise+report+declare");
        assert_eq!(s.rejections, 0);
    }

    #[test]
    fn speech_act_rejects_finish_before_start_and_wrong_performer() {
        let mut m = SpeechActModel::new(Party(9), [(WorkItem(0), Party(1))]);
        assert!(m
            .attempt(Party(1), WorkAction::Finish(WorkItem(0)))
            .is_err());
        assert!(m.attempt(Party(2), WorkAction::Start(WorkItem(0))).is_err());
        assert!(m.attempt(Party(1), WorkAction::Start(WorkItem(9))).is_err());
        assert_eq!(m.stats().rejections, 3);
        assert!(!m.is_complete());
    }

    #[test]
    fn models_agree_on_completion_of_the_same_task() {
        // Two items, two workers, a coordinator.
        let script = [
            (Party(1), WorkAction::Start(WorkItem(0))),
            (Party(1), WorkAction::Finish(WorkItem(0))),
            (Party(2), WorkAction::Start(WorkItem(1))),
            (Party(2), WorkAction::Finish(WorkItem(1))),
        ];
        let mut free = FreeFormModel::new(items(2));
        let mut proc = ProcedureModel::new(vec![
            ProcedureStep {
                item: WorkItem(0),
                role: Party(1),
            },
            ProcedureStep {
                item: WorkItem(1),
                role: Party(2),
            },
        ]);
        let mut speech =
            SpeechActModel::new(Party(0), [(WorkItem(0), Party(1)), (WorkItem(1), Party(2))]);
        let run = |m: &mut dyn CoordinationModel| {
            for &(who, action) in &script {
                let _ = m.attempt(who, action);
            }
            assert!(m.is_complete(), "{} did not complete", m.name());
            m.stats()
        };
        let sf = run(&mut free);
        let sp = run(&mut proc);
        let ss = run(&mut speech);
        // The prescriptiveness ladder the paper implies:
        assert!(sf.forced_acts < ss.forced_acts);
        assert!(sp.forced_acts <= ss.forced_acts);
        assert_eq!(ss.forced_acts, 8);
    }
}
