//! Property tests for disconnected operation and reintegration.

use odp_awareness::bus::EventBus;
use odp_concurrency::store::{ObjectId, ObjectStore};
use odp_mobility::host::MobileHost;
use odp_mobility::reintegration::{reintegrate_via, ChangeLog, ConflictPolicy, ReplayOutcome};
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::time::SimTime;
use proptest::prelude::*;

proptest! {
    /// Log optimisation: after any sequence of writes, the log holds at
    /// most one entry per object, carrying the latest value and the
    /// earliest base version.
    #[test]
    fn log_optimisation_invariants(
        writes in prop::collection::vec((0u64..5, 0u64..3, "[a-z]{1,8}"), 1..40),
    ) {
        let mut log = ChangeLog::new();
        let mut first_base: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut last_value: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
        for (i, (obj, base, value)) in writes.iter().enumerate() {
            log.record(ObjectId(*obj), *base, value.clone(), SimTime::from_secs(i as u64));
            first_base.entry(*obj).or_insert(*base);
            last_value.insert(*obj, value.clone());
        }
        prop_assert_eq!(log.len(), first_base.len());
        prop_assert_eq!(log.recorded(), writes.len() as u64);
        for entry in log.entries() {
            prop_assert_eq!(&entry.new_value, &last_value[&entry.object.0]);
            prop_assert_eq!(entry.base_version, first_base[&entry.object.0]);
        }
    }

    /// Reintegration under ServerWins never loses a concurrent server
    /// edit; under ClientWins the mobile value always lands. In both
    /// policies, conflict count equals the number of logged objects whose
    /// server version moved.
    #[test]
    fn reintegration_respects_the_policy(
        server_edits in prop::collection::vec(0u64..5, 0..10),
        mobile_writes in prop::collection::vec(0u64..5, 1..10),
        client_wins in any::<bool>(),
    ) {
        let mut server = ObjectStore::new();
        for o in 0..5u64 {
            server.create(ObjectId(o), format!("base{o}"));
        }
        let mut log = ChangeLog::new();
        let mut logged = std::collections::BTreeSet::new();
        for &o in &mobile_writes {
            log.record(ObjectId(o), 0, format!("mobile{o}"), SimTime::ZERO);
            logged.insert(o);
        }
        let mut dirtied = std::collections::BTreeSet::new();
        for &o in &server_edits {
            server.write(ObjectId(o), format!("office{o}")).expect("exists");
            dirtied.insert(o);
        }
        let policy = if client_wins { ConflictPolicy::ClientWins } else { ConflictPolicy::ServerWins };
        // An office observer hears each conflict on the cooperation-event bus.
        let mut bus = EventBus::new();
        bus.register(NodeId(9), 0.0);
        let (outcomes, announced) =
            reintegrate_via(&mut bus, NodeId(1), &log, &mut server, policy, SimTime::ZERO)
                .expect("all objects exist");
        let conflicts = outcomes
            .iter()
            .filter(|o| matches!(o, ReplayOutcome::Conflict { .. }))
            .count();
        let expected_conflicts = logged.intersection(&dirtied).count();
        prop_assert_eq!(conflicts, expected_conflicts);
        prop_assert_eq!(announced.len(), expected_conflicts, "one bus notice per conflict");
        for &o in &logged {
            let value = &server.read(ObjectId(o)).expect("exists").value;
            if dirtied.contains(&o) && !client_wins {
                prop_assert_eq!(value, &format!("office{o}"), "server wins on conflict");
            } else {
                prop_assert_eq!(value, &format!("mobile{o}"), "mobile value lands");
            }
        }
    }

    /// A disconnect/work/reconnect cycle with no concurrent office edits
    /// is conflict-free and leaves server == cache for every touched
    /// object, for any interleaving of reads and writes.
    #[test]
    fn clean_cycle_converges(ops in prop::collection::vec((0u64..4, any::<bool>()), 1..30)) {
        let mut server = ObjectStore::new();
        for o in 0..4u64 {
            server.create(ObjectId(o), format!("v0-{o}"));
        }
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        for o in 0..4 {
            host.cache_mut().hoard(ObjectId(o));
        }
        let mut bus = EventBus::new();
        bus.register(NodeId(9), 0.0);
        host.reconnect_via(&mut bus, NodeId(1), &mut server, SimTime::ZERO)
            .expect("hoard");
        host.set_connectivity(Connectivity::Disconnected);
        for (i, &(o, write)) in ops.iter().enumerate() {
            if write {
                host.write(ObjectId(o), format!("w{i}"), &mut server, SimTime::from_secs(i as u64))
                    .expect("hoarded base");
            } else {
                host.read(ObjectId(o), &mut server).expect("hoarded");
            }
        }
        let (report, announced) = host
            .reconnect_via(&mut bus, NodeId(1), &mut server, SimTime::from_secs(100))
            .expect("reintegrate");
        prop_assert_eq!(report.conflicts(), 0);
        prop_assert!(announced.is_empty(), "clean replays stay quiet on the bus");
        for o in 0..4u64 {
            let server_val = server.read(ObjectId(o)).expect("exists").value.clone();
            let cached = host.cache().peek(ObjectId(o)).expect("hoarded").value.clone();
            prop_assert_eq!(server_val, cached, "object {} diverged", o);
        }
        // Reintegrating again is a no-op (the log was cleared).
        prop_assert!(host.log().is_empty());
    }
}
