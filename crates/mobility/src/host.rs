//! The mobile host: operation across the paper's three connectivity
//! levels (§4.2.2 iii — "over a period of time, connection may vary from
//! being disconnected to being partially connected ... to being fully
//! connected. ... It is also likely that services will take advantage of
//! higher levels of connection to perform bulk updates, e.g. of cached
//! data").
//!
//! The [`MobileHost`] engine combines the [`crate::cache`] and the
//! [`crate::reintegration`] log: reads and writes are served from the
//! server when connected, from the cache when not; a connectivity
//! *upgrade* triggers reintegration plus a bulk hoard refresh.

use std::fmt;

use odp_awareness::bus::{BusDelivery, EventBus};
use odp_concurrency::store::{ObjectId, ObjectStore, StoreError};
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::time::SimTime;

use crate::cache::MobileCache;
use crate::reintegration::{reintegrate_via, ChangeLog, ConflictPolicy, ReplayOutcome};

/// How an operation was satisfied (for the E10 availability accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Served {
    /// Straight from the server (full connectivity).
    Server,
    /// From the cache (disconnected or partial, cache hit).
    Cache,
    /// Logged locally for later reintegration (disconnected write).
    Logged,
}

/// Errors from mobile operations.
#[derive(Debug, Clone, PartialEq)]
pub enum MobileError {
    /// The object is neither reachable nor cached: unavailable.
    Unavailable(ObjectId),
    /// The server store failed.
    Store(StoreError),
}

impl fmt::Display for MobileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MobileError::Unavailable(o) => write!(f, "{o} unavailable while disconnected"),
            MobileError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for MobileError {}

impl From<StoreError> for MobileError {
    fn from(e: StoreError) -> Self {
        MobileError::Store(e)
    }
}

/// A reintegration/bulk-update report produced on reconnection.
#[derive(Debug, Clone, Default)]
pub struct ReconnectReport {
    /// Outcomes of replaying the disconnected log.
    pub replay: Vec<ReplayOutcome>,
    /// Number of objects bulk-refreshed into the cache.
    pub refreshed: usize,
    /// Bytes-equivalent shipped (sum of refreshed value lengths) — the
    /// "bulk update" cost.
    pub bulk_bytes: usize,
}

impl ReconnectReport {
    /// Number of conflicts in the replay.
    pub fn conflicts(&self) -> usize {
        self.replay
            .iter()
            .filter(|o| matches!(o, ReplayOutcome::Conflict { .. }))
            .count()
    }
}

/// The mobile host engine. For simulation the server store lives behind
/// `&mut ObjectStore` arguments: the actor adapter owns the messaging,
/// while experiments can also drive the engine directly.
#[derive(Debug)]
pub struct MobileHost {
    connectivity: Connectivity,
    cache: MobileCache,
    log: ChangeLog,
    policy: ConflictPolicy,
    ops_available: u64,
    ops_unavailable: u64,
}

impl MobileHost {
    /// Creates a host starting at full connectivity.
    pub fn new(policy: ConflictPolicy) -> Self {
        MobileHost {
            connectivity: Connectivity::Full,
            cache: MobileCache::new(),
            log: ChangeLog::new(),
            policy,
            ops_available: 0,
            ops_unavailable: 0,
        }
    }

    /// The current connectivity level.
    pub fn connectivity(&self) -> Connectivity {
        self.connectivity
    }

    /// The cache (hoard configuration and statistics).
    pub fn cache_mut(&mut self) -> &mut MobileCache {
        &mut self.cache
    }

    /// Read access to the cache.
    pub fn cache(&self) -> &MobileCache {
        &self.cache
    }

    /// The pending disconnected log.
    pub fn log(&self) -> &ChangeLog {
        &self.log
    }

    /// `(available, unavailable)` operation counts.
    pub fn availability(&self) -> (u64, u64) {
        (self.ops_available, self.ops_unavailable)
    }

    /// Degrades or upgrades connectivity **without** server contact
    /// (downgrades need none). Upgrading to `Full` should go through
    /// [`MobileHost::reconnect`] so reintegration happens.
    pub fn set_connectivity(&mut self, level: Connectivity) {
        self.connectivity = level;
    }

    /// Reads an object. Connected (full): reads the server and refreshes
    /// the cache. Partial: prefers the cache (saving the radio link),
    /// falling back to the server. Disconnected: cache only.
    ///
    /// # Errors
    ///
    /// [`MobileError::Unavailable`] when disconnected without a cached
    /// copy; server errors pass through when connected.
    pub fn read(
        &mut self,
        id: ObjectId,
        server: &mut ObjectStore,
    ) -> Result<(String, Served), MobileError> {
        match self.connectivity {
            Connectivity::Full => {
                let obj = server.read(id)?.clone();
                self.cache.install(id, obj.value.clone(), obj.version);
                self.ops_available += 1;
                Ok((obj.value, Served::Server))
            }
            Connectivity::Partial => {
                if let Some(cached) = self.cache.read(id) {
                    self.ops_available += 1;
                    return Ok((cached.value.clone(), Served::Cache));
                }
                let obj = server.read(id)?.clone();
                self.cache.install(id, obj.value.clone(), obj.version);
                self.ops_available += 1;
                Ok((obj.value, Served::Server))
            }
            Connectivity::Disconnected => match self.cache.read(id) {
                Some(cached) => {
                    self.ops_available += 1;
                    Ok((cached.value.clone(), Served::Cache))
                }
                None => {
                    self.ops_unavailable += 1;
                    Err(MobileError::Unavailable(id))
                }
            },
        }
    }

    /// Writes an object. Connected (full): writes through to the server.
    /// Partial or disconnected: writes the cache and logs for
    /// reintegration.
    ///
    /// # Errors
    ///
    /// [`MobileError::Unavailable`] when disconnected without a cached
    /// base copy.
    pub fn write(
        &mut self,
        id: ObjectId,
        value: impl Into<String>,
        server: &mut ObjectStore,
        now: SimTime,
    ) -> Result<Served, MobileError> {
        let value = value.into();
        match self.connectivity {
            Connectivity::Full => {
                let version = server.write(id, value.clone())?;
                self.cache.install(id, value, version);
                self.ops_available += 1;
                Ok(Served::Server)
            }
            Connectivity::Partial | Connectivity::Disconnected => {
                let Some(base) = self.cache.peek(id).map(|c| c.base_version) else {
                    self.ops_unavailable += 1;
                    return Err(MobileError::Unavailable(id));
                };
                self.cache.write_local(id, value.clone());
                self.log.record(id, base, value, now);
                self.ops_available += 1;
                Ok(Served::Logged)
            }
        }
    }

    /// Restores full connectivity like [`MobileHost::reconnect`], but
    /// announces every reintegration conflict on the cooperation-event
    /// bus (as `mobile`, the node this host runs on) so co-authors whose
    /// edits raced the disconnection learn how the race was settled.
    ///
    /// # Errors
    ///
    /// Propagates reintegration store failures.
    pub fn reconnect_via(
        &mut self,
        bus: &mut EventBus,
        mobile: NodeId,
        server: &mut ObjectStore,
        at: SimTime,
    ) -> Result<(ReconnectReport, Vec<BusDelivery>), MobileError> {
        self.connectivity = Connectivity::Full;
        let (replay, deliveries) = reintegrate_via(bus, mobile, &self.log, server, self.policy, at)
            .map_err(|e| match e {
                crate::reintegration::ReintegrationError::Store(s) => MobileError::Store(s),
            })?;
        Ok((self.finish_reconnect(server, replay), deliveries))
    }

    fn finish_reconnect(
        &mut self,
        server: &mut ObjectStore,
        replay: Vec<ReplayOutcome>,
    ) -> ReconnectReport {
        self.log.clear();
        // Bulk update: refresh hoarded objects and all current entries.
        let mut refreshed = 0;
        let mut bulk_bytes = 0;
        let mut targets: Vec<ObjectId> = self.cache.hoard_list().collect();
        targets.extend(self.cache.dirty().iter().map(|&(id, _)| id));
        let cached: Vec<ObjectId> = server
            .ids()
            .filter(|id| self.cache.peek(*id).is_some() || targets.contains(id))
            .collect();
        for id in cached {
            if let Ok(obj) = server.read(id) {
                let obj = obj.clone();
                bulk_bytes += obj.value.len();
                self.cache.install(id, obj.value, obj.version);
                refreshed += 1;
            }
        }
        ReconnectReport {
            replay,
            refreshed,
            bulk_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ObjectStore {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "plan");
        s.create(ObjectId(2), "map");
        s
    }

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn connected_reads_write_through_and_populate_cache() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        let (v, served) = host.read(ObjectId(1), &mut srv).unwrap();
        assert_eq!((v.as_str(), served), ("plan", Served::Server));
        assert_eq!(host.cache().len(), 1);
        assert_eq!(
            host.write(ObjectId(1), "plan2", &mut srv, NOW).unwrap(),
            Served::Server
        );
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "plan2");
    }

    #[test]
    fn disconnected_reads_come_from_cache_or_fail() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap(); // cache it
        host.set_connectivity(Connectivity::Disconnected);
        let (v, served) = host.read(ObjectId(1), &mut srv).unwrap();
        assert_eq!((v.as_str(), served), ("plan", Served::Cache));
        assert_eq!(
            host.read(ObjectId(2), &mut srv).unwrap_err(),
            MobileError::Unavailable(ObjectId(2))
        );
        assert_eq!(host.availability(), (2, 1));
    }

    #[test]
    fn disconnected_writes_log_and_reintegrate_cleanly() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Disconnected);
        assert_eq!(
            host.write(ObjectId(1), "field edit", &mut srv, NOW)
                .unwrap(),
            Served::Logged
        );
        assert_eq!(
            srv.read(ObjectId(1)).unwrap().value,
            "plan",
            "server untouched while offline"
        );
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.conflicts(), 0);
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "field edit");
        assert!(host.log().is_empty());
    }

    #[test]
    fn concurrent_server_edit_conflicts_on_reintegration() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Disconnected);
        host.write(ObjectId(1), "mobile edit", &mut srv, NOW)
            .unwrap();
        // Someone edits at the office meanwhile.
        srv.write(ObjectId(1), "office edit").unwrap();
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.conflicts(), 1);
        assert_eq!(
            srv.read(ObjectId(1)).unwrap().value,
            "office edit",
            "server wins"
        );
        // The bulk refresh leaves the cache clean at the server's value.
        assert_eq!(host.cache().peek(ObjectId(1)).unwrap().value, "office edit");
    }

    #[test]
    fn partial_connectivity_prefers_the_cache_and_logs_writes() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Partial);
        let (_, served) = host.read(ObjectId(1), &mut srv).unwrap();
        assert_eq!(served, Served::Cache, "radio link saved");
        let (_, served2) = host.read(ObjectId(2), &mut srv).unwrap();
        assert_eq!(served2, Served::Server, "miss falls through");
        assert_eq!(
            host.write(ObjectId(1), "x", &mut srv, NOW).unwrap(),
            Served::Logged
        );
    }

    #[test]
    fn partial_connectivity_write_racing_a_server_edit_conflicts_on_reconnect() {
        // The weak-radio scenario: under Partial connectivity writes go
        // to the log (not through to the server), so a colleague's
        // office edit during the weak window races the mobile edit just
        // as a full disconnection would.
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap(); // cache the base
        host.set_connectivity(Connectivity::Partial);
        assert_eq!(
            host.write(ObjectId(1), "radio edit", &mut srv, NOW)
                .unwrap(),
            Served::Logged
        );
        srv.write(ObjectId(1), "office edit").unwrap();
        host.set_connectivity(Connectivity::Full);
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.conflicts(), 1, "the race must surface as a conflict");
        assert_eq!(
            srv.read(ObjectId(1)).unwrap().value,
            "office edit",
            "server wins"
        );
        assert_eq!(
            host.cache().peek(ObjectId(1)).unwrap().value,
            "office edit",
            "bulk refresh restores the winning value"
        );
        assert!(host.log().is_empty(), "the log drains on reintegration");
    }

    #[test]
    fn partial_connectivity_client_wins_replays_over_the_server_edit() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ClientWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Partial);
        host.write(ObjectId(1), "radio edit", &mut srv, NOW)
            .unwrap();
        srv.write(ObjectId(1), "office edit").unwrap();
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.conflicts(), 1, "still counted as a conflict");
        assert_eq!(
            srv.read(ObjectId(1)).unwrap().value,
            "radio edit",
            "client wins: the mobile edit overwrites"
        );
    }

    #[test]
    fn partial_connectivity_unraced_writes_reintegrate_cleanly() {
        // Partial writes on distinct objects: the logged edit replays
        // without conflict while the server-read miss path (object 2)
        // stays untouched by reintegration.
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Partial);
        host.write(ObjectId(1), "radio edit", &mut srv, NOW)
            .unwrap();
        srv.write(ObjectId(2), "office map edit").unwrap(); // different object
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.conflicts(), 0, "no overlap, no conflict");
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "radio edit");
        assert_eq!(srv.read(ObjectId(2)).unwrap().value, "office map edit");
    }

    #[test]
    fn disconnected_write_without_cached_base_is_unavailable() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.set_connectivity(Connectivity::Disconnected);
        assert_eq!(
            host.write(ObjectId(1), "x", &mut srv, NOW).unwrap_err(),
            MobileError::Unavailable(ObjectId(1))
        );
    }

    #[test]
    fn reconnect_via_broadcasts_the_settled_conflict() {
        let mut bus = EventBus::new();
        bus.register(NodeId(3), 0.0); // the mobile
        bus.register(NodeId(0), 0.0); // the desk-bound co-author
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ClientWins);
        host.read(ObjectId(1), &mut srv).unwrap();
        host.set_connectivity(Connectivity::Disconnected);
        host.write(ObjectId(1), "field edit", &mut srv, NOW)
            .unwrap();
        srv.write(ObjectId(1), "desk edit").unwrap();
        let (report, seen) = host
            .reconnect_via(&mut bus, NodeId(3), &mut srv, SimTime::from_secs(5))
            .unwrap();
        assert_eq!(report.conflicts(), 1);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].observer, NodeId(0));
        assert_eq!(seen[0].event.kind.label(), "mobility.conflict");
        assert!(host.log().is_empty(), "via path also drains the log");
    }

    #[test]
    fn reconnect_bulk_refreshes_hoarded_objects() {
        let mut srv = server();
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        host.cache_mut().hoard(ObjectId(1));
        host.cache_mut().hoard(ObjectId(2));
        host.set_connectivity(Connectivity::Disconnected);
        let report = host
            .reconnect_via(&mut EventBus::new(), NodeId(0), &mut srv, NOW)
            .unwrap()
            .0;
        assert_eq!(report.refreshed, 2);
        assert!(report.bulk_bytes >= "plan".len() + "map".len());
        // Now a later disconnection can still read both.
        host.set_connectivity(Connectivity::Disconnected);
        assert!(host.read(ObjectId(1), &mut srv).is_ok());
        assert!(host.read(ObjectId(2), &mut srv).is_ok());
    }
}
