//! Addressing for mobile hosts: a home-agent scheme after the mobile-IP
//! work the paper cites (Bhagwat & Perkins, "A Mobile Networking System
//! based on Internet Protocol").
//!
//! Each mobile has a **home agent** (a fixed node). Correspondents send
//! to the mobile's home address; the home agent forwards ("tunnels") to
//! the mobile's current **care-of** node, updated on every handoff.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// A mobile host's permanent identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MobileId(pub u32);

impl fmt::Display for MobileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Errors from the home agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddressingError {
    /// The mobile was never registered.
    UnknownMobile(MobileId),
    /// The mobile is registered but currently has no care-of address.
    NoCareOf(MobileId),
}

impl fmt::Display for AddressingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AddressingError::UnknownMobile(m) => write!(f, "unknown mobile {m}"),
            AddressingError::NoCareOf(m) => write!(f, "{m} has no care-of address"),
        }
    }
}

impl std::error::Error for AddressingError {}

/// The home agent's binding table.
///
/// # Examples
///
/// ```
/// use odp_mobility::addressing::{HomeAgent, MobileId};
/// use odp_sim::net::NodeId;
///
/// let mut agent = HomeAgent::new(NodeId(0));
/// agent.register(MobileId(1));
/// agent.handoff(MobileId(1), NodeId(7))?;
/// assert_eq!(agent.route(MobileId(1))?, NodeId(7));
/// # Ok::<(), odp_mobility::addressing::AddressingError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HomeAgent {
    home: NodeId,
    bindings: BTreeMap<MobileId, Option<NodeId>>,
    handoffs: u64,
    forwards: u64,
}

impl HomeAgent {
    /// Creates a home agent at the fixed node `home`.
    pub fn new(home: NodeId) -> Self {
        HomeAgent {
            home,
            bindings: BTreeMap::new(),
            handoffs: 0,
            forwards: 0,
        }
    }

    /// The agent's own node.
    pub fn home(&self) -> NodeId {
        self.home
    }

    /// Registers a mobile (initially with no care-of address).
    pub fn register(&mut self, mobile: MobileId) {
        self.bindings.entry(mobile).or_insert(None);
    }

    /// Updates a mobile's care-of address (it moved into a new cell).
    ///
    /// # Errors
    ///
    /// [`AddressingError::UnknownMobile`] if never registered.
    pub fn handoff(&mut self, mobile: MobileId, care_of: NodeId) -> Result<(), AddressingError> {
        let slot = self
            .bindings
            .get_mut(&mobile)
            .ok_or(AddressingError::UnknownMobile(mobile))?;
        *slot = Some(care_of);
        self.handoffs += 1;
        Ok(())
    }

    /// Marks a mobile unreachable (left all coverage).
    ///
    /// # Errors
    ///
    /// [`AddressingError::UnknownMobile`] if never registered.
    pub fn detach(&mut self, mobile: MobileId) -> Result<(), AddressingError> {
        let slot = self
            .bindings
            .get_mut(&mobile)
            .ok_or(AddressingError::UnknownMobile(mobile))?;
        *slot = None;
        Ok(())
    }

    /// Resolves the current care-of node for a mobile (counts a
    /// forwarded packet).
    ///
    /// # Errors
    ///
    /// Unknown or detached mobiles fail.
    pub fn route(&mut self, mobile: MobileId) -> Result<NodeId, AddressingError> {
        let slot = self
            .bindings
            .get(&mobile)
            .ok_or(AddressingError::UnknownMobile(mobile))?;
        match slot {
            Some(node) => {
                self.forwards += 1;
                Ok(*node)
            }
            None => Err(AddressingError::NoCareOf(mobile)),
        }
    }

    /// Total handoffs processed.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Total packets forwarded.
    pub fn forwards(&self) -> u64 {
        self.forwards
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_handoff_route() {
        let mut agent = HomeAgent::new(NodeId(0));
        agent.register(MobileId(1));
        assert_eq!(
            agent.route(MobileId(1)).unwrap_err(),
            AddressingError::NoCareOf(MobileId(1))
        );
        agent.handoff(MobileId(1), NodeId(5)).unwrap();
        assert_eq!(agent.route(MobileId(1)).unwrap(), NodeId(5));
        agent.handoff(MobileId(1), NodeId(6)).unwrap();
        assert_eq!(agent.route(MobileId(1)).unwrap(), NodeId(6));
        assert_eq!(agent.handoffs(), 2);
        assert_eq!(agent.forwards(), 2);
    }

    #[test]
    fn unknown_mobiles_error() {
        let mut agent = HomeAgent::new(NodeId(0));
        assert_eq!(
            agent.handoff(MobileId(9), NodeId(1)).unwrap_err(),
            AddressingError::UnknownMobile(MobileId(9))
        );
        assert_eq!(
            agent.route(MobileId(9)).unwrap_err(),
            AddressingError::UnknownMobile(MobileId(9))
        );
    }

    #[test]
    fn detach_makes_a_mobile_unreachable() {
        let mut agent = HomeAgent::new(NodeId(0));
        agent.register(MobileId(1));
        agent.handoff(MobileId(1), NodeId(5)).unwrap();
        agent.detach(MobileId(1)).unwrap();
        assert_eq!(
            agent.route(MobileId(1)).unwrap_err(),
            AddressingError::NoCareOf(MobileId(1))
        );
    }

    #[test]
    fn reregistration_keeps_existing_binding() {
        let mut agent = HomeAgent::new(NodeId(0));
        agent.register(MobileId(1));
        agent.handoff(MobileId(1), NodeId(5)).unwrap();
        agent.register(MobileId(1)); // idempotent
        assert_eq!(agent.route(MobileId(1)).unwrap(), NodeId(5));
    }
}
