//! Disconnected-operation logging and reintegration (after Coda's
//! client-modify-log — the paper cites Kistler & Satyanarayanan's
//! "Disconnected Operation in the Coda File System" as the exemplar).
//!
//! While disconnected, every mutation appends to a [`ChangeLog`]; the log
//! is *optimised* (successive writes to one object collapse). On
//! reconnection the log replays against the server: an entry whose base
//! version no longer matches the server's version is a **conflict**,
//! settled by a [`ConflictPolicy`].

use std::fmt;

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, EventBus};
use odp_concurrency::store::{ObjectId, ObjectStore, StoreError};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// One logged disconnected mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// The object written.
    pub object: ObjectId,
    /// The server version the mobile's copy was based on.
    pub base_version: u64,
    /// The value written (whole-object writes, as in Coda's file model).
    pub new_value: String,
    /// When the (latest collapsed) write happened.
    pub at: SimTime,
}

/// The client modify log.
///
/// # Examples
///
/// ```
/// use odp_concurrency::store::ObjectId;
/// use odp_mobility::reintegration::ChangeLog;
/// use odp_sim::time::SimTime;
///
/// let mut log = ChangeLog::new();
/// log.record(ObjectId(1), 3, "draft A", SimTime::ZERO);
/// log.record(ObjectId(1), 3, "draft B", SimTime::from_secs(60));
/// assert_eq!(log.len(), 1, "writes to one object collapse");
/// assert_eq!(log.entries()[0].new_value, "draft B");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChangeLog {
    entries: Vec<LogEntry>,
    recorded: u64,
}

impl ChangeLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        ChangeLog::default()
    }

    /// Records a write; a prior entry for the same object is collapsed
    /// into this one (log optimisation), keeping the *original* base
    /// version.
    pub fn record(
        &mut self,
        object: ObjectId,
        base_version: u64,
        new_value: impl Into<String>,
        at: SimTime,
    ) {
        self.recorded += 1;
        let value = new_value.into();
        if let Some(existing) = self.entries.iter_mut().find(|e| e.object == object) {
            existing.new_value = value;
            existing.at = at;
        } else {
            self.entries.push(LogEntry {
                object,
                base_version,
                new_value: value,
                at,
            });
        }
    }

    /// The optimised entries, in first-write order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of optimised entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is logged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Raw writes recorded before optimisation.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Empties the log (after successful reintegration).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// How write/write conflicts are settled at reintegration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConflictPolicy {
    /// The server's version stands; the mobile's write is discarded into
    /// a conflict report (Coda's approach: preserve, don't clobber).
    ServerWins,
    /// The mobile's write overwrites the server.
    ClientWins,
}

/// The outcome of replaying one log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Applied cleanly (base version matched).
    Applied {
        /// The object.
        object: ObjectId,
        /// The server's new version.
        new_version: u64,
    },
    /// Conflict detected and settled by policy.
    Conflict {
        /// The object.
        object: ObjectId,
        /// The mobile's (discarded or applied) value.
        mobile_value: String,
        /// The server's value at replay time.
        server_value: String,
        /// Whether the mobile's value was applied ([`ConflictPolicy::ClientWins`]).
        applied: bool,
    },
}

/// Errors during reintegration.
#[derive(Debug, Clone, PartialEq)]
pub enum ReintegrationError {
    /// The server no longer knows the object.
    Store(StoreError),
}

impl fmt::Display for ReintegrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReintegrationError::Store(e) => write!(f, "reintegration store error: {e}"),
        }
    }
}

impl std::error::Error for ReintegrationError {}

impl From<StoreError> for ReintegrationError {
    fn from(e: StoreError) -> Self {
        ReintegrationError::Store(e)
    }
}

/// Replays an optimised log against the authoritative `server` store,
/// announcing every write/write conflict on the cooperation-event bus as
/// a [`CoopKind::ReintegrationConflict`] broadcast from `mobile` on
/// `obj/{id}` — so the co-authors whose edits raced the disconnected
/// mobile learn the race was settled (and how). Clean applies are not
/// announced; they are ordinary writes.
///
/// Returns the per-entry outcomes (in log order) plus the bus
/// deliveries. The log is not cleared — callers clear it after
/// inspecting the outcomes.
///
/// # Errors
///
/// Fails only if an object vanished from the server entirely.
pub fn reintegrate_via(
    bus: &mut EventBus,
    mobile: NodeId,
    log: &ChangeLog,
    server: &mut ObjectStore,
    policy: ConflictPolicy,
    at: SimTime,
) -> Result<(Vec<ReplayOutcome>, Vec<BusDelivery>), ReintegrationError> {
    let outcomes = reintegrate_inner(log, server, policy)?;
    let mut deliveries = Vec::new();
    for outcome in &outcomes {
        if let ReplayOutcome::Conflict {
            object, applied, ..
        } = outcome
        {
            deliveries.extend(bus.publish(CoopEvent::broadcast(
                mobile,
                format!("obj/{}", object.0),
                at,
                CoopKind::ReintegrationConflict { applied: *applied },
            )));
        }
    }
    Ok((outcomes, deliveries))
}

pub(crate) fn reintegrate_inner(
    log: &ChangeLog,
    server: &mut ObjectStore,
    policy: ConflictPolicy,
) -> Result<Vec<ReplayOutcome>, ReintegrationError> {
    let mut outcomes = Vec::with_capacity(log.len());
    for entry in log.entries() {
        let current = server.read(entry.object)?.clone();
        if current.version == entry.base_version {
            let new_version = server.write(entry.object, entry.new_value.clone())?;
            outcomes.push(ReplayOutcome::Applied {
                object: entry.object,
                new_version,
            });
        } else {
            let applied = policy == ConflictPolicy::ClientWins;
            if applied {
                server.write(entry.object, entry.new_value.clone())?;
            }
            outcomes.push(ReplayOutcome::Conflict {
                object: entry.object,
                mobile_value: entry.new_value.clone(),
                server_value: current.value,
                applied,
            });
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> ObjectStore {
        let mut s = ObjectStore::new();
        s.create(ObjectId(1), "base1");
        s.create(ObjectId(2), "base2");
        s
    }

    #[test]
    fn clean_replay_applies_everything() {
        let mut srv = server();
        let mut log = ChangeLog::new();
        log.record(ObjectId(1), 0, "mobile1", SimTime::ZERO);
        log.record(ObjectId(2), 0, "mobile2", SimTime::ZERO);
        let out = reintegrate_via(
            &mut EventBus::new(),
            NodeId(0),
            &log,
            &mut srv,
            ConflictPolicy::ServerWins,
            SimTime::ZERO,
        )
        .unwrap()
        .0;
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], ReplayOutcome::Applied { .. }));
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "mobile1");
    }

    #[test]
    fn stale_base_is_a_conflict_server_wins() {
        let mut srv = server();
        srv.write(ObjectId(1), "someone else's edit").unwrap(); // version 1
        let mut log = ChangeLog::new();
        log.record(ObjectId(1), 0, "mobile edit", SimTime::ZERO);
        let out = reintegrate_via(
            &mut EventBus::new(),
            NodeId(0),
            &log,
            &mut srv,
            ConflictPolicy::ServerWins,
            SimTime::ZERO,
        )
        .unwrap()
        .0;
        match &out[0] {
            ReplayOutcome::Conflict {
                applied,
                server_value,
                ..
            } => {
                assert!(!applied);
                assert_eq!(server_value, "someone else's edit");
            }
            other => panic!("expected conflict, got {other:?}"),
        }
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "someone else's edit");
    }

    #[test]
    fn client_wins_policy_overwrites() {
        let mut srv = server();
        srv.write(ObjectId(1), "server edit").unwrap();
        let mut log = ChangeLog::new();
        log.record(ObjectId(1), 0, "mobile edit", SimTime::ZERO);
        let out = reintegrate_via(
            &mut EventBus::new(),
            NodeId(0),
            &log,
            &mut srv,
            ConflictPolicy::ClientWins,
            SimTime::ZERO,
        )
        .unwrap()
        .0;
        assert!(matches!(
            &out[0],
            ReplayOutcome::Conflict { applied: true, .. }
        ));
        assert_eq!(srv.read(ObjectId(1)).unwrap().value, "mobile edit");
    }

    #[test]
    fn log_optimisation_collapses_but_counts_raw_writes() {
        let mut log = ChangeLog::new();
        for i in 0..10 {
            log.record(ObjectId(1), 0, format!("v{i}"), SimTime::from_secs(i));
        }
        assert_eq!(log.len(), 1);
        assert_eq!(log.recorded(), 10);
        assert_eq!(log.entries()[0].new_value, "v9");
        assert_eq!(log.entries()[0].base_version, 0, "original base kept");
    }

    #[test]
    fn vanished_object_is_an_error() {
        let mut srv = ObjectStore::new();
        let mut log = ChangeLog::new();
        log.record(ObjectId(9), 0, "x", SimTime::ZERO);
        assert!(matches!(
            reintegrate_via(
                &mut EventBus::new(),
                NodeId(0),
                &log,
                &mut srv,
                ConflictPolicy::ServerWins,
                SimTime::ZERO,
            ),
            Err(ReintegrationError::Store(_))
        ));
    }

    #[test]
    fn clear_empties_the_log() {
        let mut log = ChangeLog::new();
        log.record(ObjectId(1), 0, "x", SimTime::ZERO);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn via_announces_conflicts_but_not_clean_applies() {
        let mut bus = EventBus::new();
        bus.register(NodeId(7), 0.0); // the mobile itself
        bus.register(NodeId(1), 0.0); // the co-author whose edit raced
        let mut srv = server();
        srv.write(ObjectId(1), "desk edit").unwrap(); // races the mobile
        let mut log = ChangeLog::new();
        log.record(ObjectId(1), 0, "field edit", SimTime::ZERO);
        log.record(ObjectId(2), 0, "clean edit", SimTime::ZERO);
        let (out, seen) = reintegrate_via(
            &mut bus,
            NodeId(7),
            &log,
            &mut srv,
            ConflictPolicy::ServerWins,
            SimTime::from_secs(9),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // Only the conflict is announced; the broadcast excludes the actor.
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].observer, NodeId(1));
        assert_eq!(seen[0].event.actor, NodeId(7));
        assert_eq!(seen[0].event.artefact, "obj/1");
        assert!(matches!(
            seen[0].event.kind,
            CoopKind::ReintegrationConflict { applied: false }
        ));
    }
}
