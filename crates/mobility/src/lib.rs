#![warn(missing_docs)]

//! # odp-mobility — mobile computing support
//!
//! Implements §3.3.3/§4.2.2 ("The impact of mobility") of the paper:
//!
//! - [`cache`] — client-side caching with hoarding ("cache significant
//!   portions of the data on the mobile computer");
//! - [`reintegration`] — Coda-style disconnected-operation logging with
//!   log optimisation, replay, and conflict policies;
//! - [`host`] — the mobile host across the three connectivity levels
//!   (disconnected / partially / fully connected), with bulk updates on
//!   reconnection;
//! - [`addressing`] — home-agent addressing for mobile hosts (mobile-IP
//!   style).
//!
//! The network-side behaviour of the three levels (radio latency, loss,
//! total disconnection) lives in the simulator:
//! [`odp_sim::net::Connectivity`].
//!
//! ```
//! use odp_concurrency::store::{ObjectId, ObjectStore};
//! use odp_mobility::host::MobileHost;
//! use odp_mobility::reintegration::ConflictPolicy;
//! use odp_sim::net::Connectivity;
//!
//! let mut server = ObjectStore::new();
//! server.create(ObjectId(1), "survey form");
//! let mut host = MobileHost::new(ConflictPolicy::ServerWins);
//! host.read(ObjectId(1), &mut server)?; // caches while connected
//! host.set_connectivity(Connectivity::Disconnected);
//! let (value, _) = host.read(ObjectId(1), &mut server)?; // served offline
//! assert_eq!(value, "survey form");
//! # Ok::<(), odp_mobility::host::MobileError>(())
//! ```

pub mod addressing;
pub mod cache;
pub mod host;
pub mod reintegration;

pub use addressing::{AddressingError, HomeAgent, MobileId};
pub use cache::{CachedObject, MobileCache};
pub use host::{MobileError, MobileHost, ReconnectReport, Served};
pub use reintegration::{
    reintegrate_via, ChangeLog, ConflictPolicy, LogEntry, ReintegrationError, ReplayOutcome,
};
