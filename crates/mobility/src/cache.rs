//! The mobile host's object cache.
//!
//! §4.2.2 i: *"with the limited bandwidth of radio communications ... new
//! techniques will be required, for example, to cache significant
//! portions of the data on the mobile computer"*. The cache supports
//! *hoarding* (naming objects to prefetch while well-connected, after
//! Coda) and tracks hit/miss statistics.

use std::collections::{BTreeMap, BTreeSet};

use odp_concurrency::store::ObjectId;
use serde::{Deserialize, Serialize};

/// A cached object copy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedObject {
    /// The cached value.
    pub value: String,
    /// The server version this copy was fetched at.
    pub base_version: u64,
    /// True if modified locally since the fetch.
    pub dirty: bool,
}

/// The mobile cache.
///
/// # Examples
///
/// ```
/// use odp_concurrency::store::ObjectId;
/// use odp_mobility::cache::MobileCache;
///
/// let mut c = MobileCache::new();
/// c.install(ObjectId(1), "field notes", 3);
/// assert_eq!(c.read(ObjectId(1)).map(|o| o.value.as_str()), Some("field notes"));
/// assert_eq!(c.hits(), 1);
/// assert!(c.read(ObjectId(2)).is_none());
/// assert_eq!(c.misses(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MobileCache {
    entries: BTreeMap<ObjectId, CachedObject>,
    hoard_list: BTreeSet<ObjectId>,
    hits: u64,
    misses: u64,
}

impl MobileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        MobileCache::default()
    }

    /// Adds an object to the hoard list (to fetch while connected).
    pub fn hoard(&mut self, id: ObjectId) {
        self.hoard_list.insert(id);
    }

    /// The hoard list.
    pub fn hoard_list(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.hoard_list.iter().copied()
    }

    /// Hoard-listed objects not yet cached (what a bulk fetch should get).
    pub fn hoard_wanted(&self) -> Vec<ObjectId> {
        self.hoard_list
            .iter()
            .copied()
            .filter(|id| !self.entries.contains_key(id))
            .collect()
    }

    /// Installs (or refreshes) a clean copy fetched from the server.
    pub fn install(&mut self, id: ObjectId, value: impl Into<String>, version: u64) {
        self.entries.insert(
            id,
            CachedObject {
                value: value.into(),
                base_version: version,
                dirty: false,
            },
        );
    }

    /// Reads from the cache, counting hit/miss.
    pub fn read(&mut self, id: ObjectId) -> Option<&CachedObject> {
        match self.entries.get(&id) {
            Some(obj) => {
                self.hits += 1;
                Some(obj)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Writes locally, marking the entry dirty. Returns false if the
    /// object is not cached (disconnected writes need a cached base).
    pub fn write_local(&mut self, id: ObjectId, value: impl Into<String>) -> bool {
        match self.entries.get_mut(&id) {
            Some(obj) => {
                obj.value = value.into();
                obj.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Marks an entry clean at a new base version (after reintegration).
    pub fn mark_clean(&mut self, id: ObjectId, version: u64) {
        if let Some(obj) = self.entries.get_mut(&id) {
            obj.dirty = false;
            obj.base_version = version;
        }
    }

    /// All dirty entries.
    pub fn dirty(&self) -> Vec<(ObjectId, &CachedObject)> {
        self.entries
            .iter()
            .filter(|(_, o)| o.dirty)
            .map(|(&id, o)| (id, o))
            .collect()
    }

    /// Peeks without touching the statistics.
    pub fn peek(&self, id: ObjectId) -> Option<&CachedObject> {
        self.entries.get(&id)
    }

    /// Evicts an entry.
    pub fn evict(&mut self, id: ObjectId) -> bool {
        self.entries.remove(&id).is_some()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit rate in `[0, 1]` (1.0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_read_write_cycle() {
        let mut c = MobileCache::new();
        c.install(ObjectId(1), "v1", 1);
        assert!(!c.read(ObjectId(1)).unwrap().dirty);
        assert!(c.write_local(ObjectId(1), "v2"));
        let obj = c.peek(ObjectId(1)).unwrap();
        assert!(obj.dirty);
        assert_eq!(obj.value, "v2");
        assert_eq!(obj.base_version, 1);
    }

    #[test]
    fn disconnected_write_without_base_fails() {
        let mut c = MobileCache::new();
        assert!(!c.write_local(ObjectId(9), "x"));
    }

    #[test]
    fn hoard_list_tracks_missing_objects() {
        let mut c = MobileCache::new();
        c.hoard(ObjectId(1));
        c.hoard(ObjectId(2));
        c.install(ObjectId(1), "a", 1);
        assert_eq!(c.hoard_wanted(), vec![ObjectId(2)]);
    }

    #[test]
    fn statistics_track_hits_and_misses() {
        let mut c = MobileCache::new();
        c.install(ObjectId(1), "a", 1);
        c.read(ObjectId(1));
        c.read(ObjectId(1));
        c.read(ObjectId(2));
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 1);
        assert!((c.hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn mark_clean_resets_dirty_state() {
        let mut c = MobileCache::new();
        c.install(ObjectId(1), "a", 1);
        c.write_local(ObjectId(1), "b");
        c.mark_clean(ObjectId(1), 5);
        let obj = c.peek(ObjectId(1)).unwrap();
        assert!(!obj.dirty);
        assert_eq!(obj.base_version, 5);
        assert!(c.dirty().is_empty());
    }

    #[test]
    fn evict_removes_entries() {
        let mut c = MobileCache::new();
        c.install(ObjectId(1), "a", 1);
        assert!(c.evict(ObjectId(1)));
        assert!(!c.evict(ObjectId(1)));
        assert!(c.is_empty());
    }

    #[test]
    fn untouched_cache_reports_full_hit_rate() {
        let c = MobileCache::new();
        assert_eq!(c.hit_rate(), 1.0);
    }
}
