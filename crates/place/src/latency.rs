//! Observed link-latency estimation.
//!
//! The controller never asks the network for its topology — open
//! systems cannot. Instead every completed `tile.access` trace yields
//! a link sample from its *reply leg* (serve-span close → root close):
//! unlike the request leg, the reply leg contains no freeze stalls or
//! redirect chases, so it measures the wire and nothing else. The
//! sample is folded into an integer EWMA for both directions of the
//! pair. [`LatencyMap::estimator`]
//! then stands in for the latency oracle `odp_mgmt::placement::place`
//! expects, making placement scores *observed*, not modelled.

use std::collections::BTreeMap;

use odp_sim::net::NodeId;
use odp_sim::time::SimDuration;

/// Integer EWMA (alpha = 1/4) of observed one-way latencies, per
/// directed node pair.
#[derive(Debug, Clone, Default)]
pub struct LatencyMap {
    mean_us: BTreeMap<(NodeId, NodeId), u64>,
    samples: u64,
    default_us: u64,
}

impl LatencyMap {
    /// Creates an empty map whose unobserved pairs estimate
    /// `default_us` microseconds. This is the *exploration prior*: a
    /// high (pessimistic) default pins clusters to observed territory,
    /// a low (optimistic) one makes the controller willing to try a
    /// destination nobody has measured yet — the hysteresis gate still
    /// has to clear, and the first accesses after the move replace the
    /// prior with reality.
    pub fn new(default_us: u64) -> Self {
        LatencyMap {
            mean_us: BTreeMap::new(),
            samples: 0,
            default_us,
        }
    }

    /// Folds one observed one-way latency for `from → to`.
    pub fn observe(&mut self, from: NodeId, to: NodeId, d: SimDuration) {
        if from == to {
            return;
        }
        self.samples += 1;
        let us = d.as_micros().max(1);
        self.mean_us
            .entry((from, to))
            .and_modify(|m| *m = (*m * 3 + us) / 4)
            .or_insert(us);
    }

    /// Total samples folded so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// The estimate for a directed pair: the pair's EWMA, else the
    /// reverse pair's (links are usually near-symmetric), else the
    /// default prior. Same-node latency is zero.
    pub fn estimate_us(&self, from: NodeId, to: NodeId) -> u64 {
        if from == to {
            return 0;
        }
        self.mean_us
            .get(&(from, to))
            .or_else(|| self.mean_us.get(&(to, from)))
            .copied()
            .unwrap_or(self.default_us)
    }

    /// The latency oracle shape `place` expects.
    pub fn estimator(&self) -> impl Fn(NodeId, NodeId) -> SimDuration + '_ {
        move |a, b| SimDuration::from_micros(self.estimate_us(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_pairs_fall_back_to_the_prior() {
        let map = LatencyMap::new(30_000);
        assert_eq!(map.estimate_us(NodeId(0), NodeId(1)), 30_000);
        assert_eq!(map.estimate_us(NodeId(2), NodeId(2)), 0);
    }

    #[test]
    fn ewma_tracks_and_reverse_pair_substitutes() {
        let mut map = LatencyMap::new(30_000);
        map.observe(NodeId(0), NodeId(1), SimDuration::from_micros(1_000));
        assert_eq!(map.estimate_us(NodeId(0), NodeId(1)), 1_000);
        // Reverse direction borrows the forward estimate.
        assert_eq!(map.estimate_us(NodeId(1), NodeId(0)), 1_000);
        // A shift in observed latency pulls the mean a quarter of the way.
        map.observe(NodeId(0), NodeId(1), SimDuration::from_micros(5_000));
        assert_eq!(map.estimate_us(NodeId(0), NodeId(1)), 2_000);
        assert_eq!(map.samples(), 2);
    }

    #[test]
    fn self_observations_are_ignored() {
        let mut map = LatencyMap::new(10);
        map.observe(NodeId(3), NodeId(3), SimDuration::from_micros(9));
        assert_eq!(map.samples(), 0);
    }
}
