//! The placement controller: closes the telemetry → policy → migration
//! loop.
//!
//! [`PlacementActor`] is an ordinary [`TransportActor`] so the control
//! loop itself runs under the simulator or over TCP unchanged. It:
//!
//! 1. **ingests** [`PlaceWire::Stats`] reports into its own
//!    [`Collector`], folding every completed `tile.access` trace once:
//!    the root span's round trip becomes a *latency-weighted* usage
//!    sample (`MigrationManager::record_access` with observed
//!    microseconds, not a raw count) and the serve child yields two
//!    one-way [`LatencyMap`] samples;
//! 2. **plans** with [`MigrationManager::plan`] against the observed
//!    latency estimator, recording every decision's exact inputs in a
//!    [`DecisionRecord`] so the `placement-soundness` check can replay
//!    the scoring independently;
//! 3. **executes** the freeze → chunk → install → release protocol,
//!    one migration in flight at a time, with a per-epoch timeout. Any
//!    failure (transfer, install, timeout, peer death) aborts the epoch
//!    and the cluster stays at its old home;
//! 4. on commit, **re-registers** the cluster's service offer at the
//!    new node ([`OfferStore::rehome`]), publishes a
//!    [`CoopKind::ClusterMigrated`] notice through its awareness bus,
//!    and broadcasts the authoritative [`PlaceWire::HomeUpdate`].
//!
//! Session churn arrives as [`PlaceWire::ViewChange`]; usage recorded
//! from departed members is forgotten so a closed laptop stops
//! anchoring placement.

use std::collections::{BTreeMap, BTreeSet};

use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_mgmt::migration::{MigrationManager, MigrationPlan};
use odp_mgmt::model::{CapsuleId, ClusterId, EngRegistry, ManagedObjectId};
use odp_mgmt::placement::PlacementPolicy;
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_sim::actor::TimerId;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::qos::QosSpec;
use odp_telemetry::collector::Collector;
use odp_trader::offer::{OfferId, ServiceOffer, ServiceType, SessionKind};
use odp_trader::store::OfferStore;

use crate::latency::LatencyMap;
use crate::wire::PlaceWire;

const TAG_EVAL: u64 = 1 << 56;
const TAG_EPOCH: u64 = 2 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// Root spans the controller folds (suffix is the cluster id).
pub const ACCESS_KIND_PREFIX: &str = "tile.access.c";

/// Tuning for the control loop.
#[derive(Debug, Clone)]
pub struct PlaceConfig {
    /// Placement scoring policy.
    pub policy: PlacementPolicy,
    /// Required relative improvement before migrating (e.g. `0.2`).
    pub hysteresis: f64,
    /// Modelled transfer bandwidth for `MigrationManager`'s cost model.
    pub bytes_per_sec: u64,
    /// Re-evaluation cadence.
    pub eval_every: SimDuration,
    /// Number of evaluation rounds to run (bounds the loop so a
    /// simulation quiesces; `0` disarms the timer entirely).
    pub eval_rounds: u32,
    /// Minimum folded accesses since the last evaluation before a
    /// cluster is even considered (hotness shortlist).
    pub min_accesses: u64,
    /// Pessimistic prior for unobserved links, in microseconds.
    pub default_latency_us: u64,
    /// Abort an epoch that has not committed within this window.
    pub epoch_timeout: SimDuration,
    /// When `false` the controller ingests and plans nothing — the
    /// "controller off" baseline arm of the benchmark still pays for
    /// telemetry but never migrates.
    pub active: bool,
}

impl Default for PlaceConfig {
    fn default() -> Self {
        PlaceConfig {
            policy: PlacementPolicy::GroupMean,
            hysteresis: 0.2,
            bytes_per_sec: 12_500_000,
            eval_every: SimDuration::from_millis(200),
            eval_rounds: 25,
            min_accesses: 4,
            default_latency_us: 30_000,
            epoch_timeout: SimDuration::from_secs(10),
            active: true,
        }
    }
}

/// The exact inputs and output of one migration decision, recorded so
/// an independent checker can replay `odp_mgmt::placement::place` and
/// reproduce the verdict bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// When the decision was taken.
    pub at: SimTime,
    /// The cluster moved.
    pub cluster: ClusterId,
    /// The epoch the decision started.
    pub epoch: u64,
    /// Source node.
    pub from: NodeId,
    /// Chosen destination.
    pub to: NodeId,
    /// Policy in force.
    pub policy: PlacementPolicy,
    /// Hysteresis in force.
    pub hysteresis: f64,
    /// The cluster's declared home at decision time.
    pub home: NodeId,
    /// Candidate nodes, ascending (the registry's capsule-bearing nodes).
    pub candidates: Vec<NodeId>,
    /// The usage pattern scored: `(site, weight)` ascending by site.
    pub weights: Vec<(NodeId, u64)>,
    /// Latency estimates consulted: `((from, to), micros)` for every
    /// observed-site × candidate pair.
    pub latency_us: Vec<((NodeId, NodeId), u64)>,
    /// Prior for pairs absent from `latency_us`.
    pub default_us: u64,
    /// Scored cost of staying put, microseconds.
    pub cost_before_us: f64,
    /// Scored cost at `to`, microseconds.
    pub cost_after_us: f64,
}

/// How an epoch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochOutcome {
    /// State installed at the destination, source released.
    Committed,
    /// Transfer or install failed (or timed out); source kept the state.
    Aborted,
}

/// One migration epoch's lifecycle, for the soundness invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// The migrating cluster.
    pub cluster: ClusterId,
    /// The epoch number (unique, increasing).
    pub epoch: u64,
    /// Source host.
    pub from: NodeId,
    /// Destination host.
    pub to: NodeId,
    /// When the freeze was issued.
    pub started: SimTime,
    /// When and how it ended (`None` while in flight).
    pub ended: Option<(SimTime, EpochOutcome)>,
}

#[derive(Debug)]
enum FlightState {
    Streaming,
    Committing,
}

#[derive(Debug)]
struct InFlight {
    plan: MigrationPlan,
    epoch: u64,
    state: FlightState,
    timer: TimerId,
}

/// The closed-loop placement controller.
#[derive(Debug)]
pub struct PlacementActor {
    me: NodeId,
    config: PlaceConfig,
    registry: EngRegistry,
    capsules: BTreeMap<NodeId, CapsuleId>,
    mgr: MigrationManager,
    latency: LatencyMap,
    collector: Collector,
    consumed: BTreeSet<u64>,
    hot: BTreeMap<ClusterId, u64>,
    homes: BTreeMap<ClusterId, NodeId>,
    offers: OfferStore,
    offer_ids: BTreeMap<ClusterId, OfferId>,
    bus: EventBus,
    view_id: u64,
    members: BTreeSet<NodeId>,
    in_flight: Option<InFlight>,
    next_epoch: u64,
    rounds_done: u32,
    decisions: Vec<DecisionRecord>,
    epochs: Vec<EpochRecord>,
}

impl PlacementActor {
    /// A controller at `me`. Populate it with
    /// [`add_storage`](Self::add_storage) and
    /// [`add_cluster`](Self::add_cluster) before the simulation starts.
    pub fn new(me: NodeId, config: PlaceConfig) -> Self {
        let mgr = MigrationManager::new(config.policy, config.hysteresis, config.bytes_per_sec);
        let latency = LatencyMap::new(config.default_latency_us);
        PlacementActor {
            me,
            config,
            registry: EngRegistry::new(),
            capsules: BTreeMap::new(),
            mgr,
            latency,
            collector: Collector::new(),
            consumed: BTreeSet::new(),
            hot: BTreeMap::new(),
            homes: BTreeMap::new(),
            offers: OfferStore::new(),
            offer_ids: BTreeMap::new(),
            bus: EventBus::new(),
            view_id: 0,
            members: BTreeSet::new(),
            in_flight: None,
            next_epoch: 0,
            rounds_done: 0,
            decisions: Vec::new(),
            epochs: Vec::new(),
        }
    }

    /// Declares a storage node (migration candidate).
    pub fn add_storage(&mut self, node: NodeId) {
        let capsule = self.registry.create_capsule(node);
        self.capsules.insert(node, capsule);
    }

    /// Declares a cluster of `bytes` homed at `home` (a declared storage
    /// node) and exports its workspace offer. Returns the cluster id.
    pub fn add_cluster(&mut self, home: NodeId, bytes: usize) -> Option<ClusterId> {
        let capsule = *self.capsules.get(&home)?;
        let cluster = self.registry.create_cluster(capsule).ok()?;
        self.registry
            .create_object(ManagedObjectId(cluster.0 as u64 + 1), cluster, bytes)
            .ok()?;
        self.mgr.set_home(cluster, home);
        self.homes.insert(cluster, home);
        let mut offer = ServiceOffer::session(
            ServiceType::new(format!("workspace/raster/tile/{}", cluster.0)),
            SessionKind::Workspace,
            QosSpec::permissive(),
            home,
        );
        offer.id = OfferId(cluster.0 as u64 + 1);
        self.offer_ids.insert(cluster, offer.id);
        self.offers.insert(offer);
        Some(cluster)
    }

    /// Registers an awareness observer for placement notices.
    pub fn add_observer(&mut self, observer: NodeId, threshold: f64) {
        self.bus.register(observer, threshold);
    }

    /// Seeds the session view (who counts as a live editor).
    pub fn set_view(&mut self, view_id: u64, members: impl IntoIterator<Item = NodeId>) {
        self.view_id = view_id;
        self.members = members.into_iter().collect();
    }

    /// Turns the control loop on or off (the benchmark baseline).
    pub fn set_active(&mut self, active: bool) {
        self.config.active = active;
    }

    /// Every migration decision taken, with its replayable inputs.
    pub fn decisions(&self) -> &[DecisionRecord] {
        &self.decisions
    }

    /// Every migration epoch started, with its outcome.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.epochs
    }

    /// Committed migrations (the manager's event log).
    pub fn migrations(&self) -> &[odp_mgmt::migration::MigrationEvent] {
        self.mgr.events()
    }

    /// The authoritative home of a cluster.
    pub fn home_of(&self, cluster: ClusterId) -> Option<NodeId> {
        self.homes.get(&cluster).copied()
    }

    /// The cluster's current service offer.
    pub fn offer_of(&self, cluster: ClusterId) -> Option<&ServiceOffer> {
        self.offers.offer(*self.offer_ids.get(&cluster)?)
    }

    /// The observed link-latency estimates.
    pub fn latency(&self) -> &LatencyMap {
        &self.latency
    }

    /// The controller's trace collector (critical paths, histograms).
    pub fn collector(&self) -> &Collector {
        &self.collector
    }

    /// The controller's awareness bus (notice statistics).
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// The engineering registry mirror (cluster → node mapping).
    pub fn registry(&self) -> &EngRegistry {
        &self.registry
    }

    fn fold_traces(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        struct Fold {
            trace_id: u64,
            cluster: ClusterId,
            site: NodeId,
            home: NodeId,
            rtt: SimDuration,
            reply: SimDuration,
        }
        let mut folds: Vec<Fold> = Vec::new();
        for (trace_id, dag) in self.collector.traces() {
            if self.consumed.contains(&trace_id) {
                continue;
            }
            let Some(root) = dag.spans().find(|s| s.ctx.parent.is_none()) else {
                continue;
            };
            let Some(root_closed) = root.closed else {
                continue;
            };
            let Some(rest) = root.kind.strip_prefix(ACCESS_KIND_PREFIX) else {
                continue;
            };
            let Ok(cluster) = rest.parse::<u32>() else {
                continue;
            };
            let Some(serve) = dag
                .spans()
                .find(|s| s.kind == "tile.serve" && s.closed.is_some())
            else {
                continue; // serve report not in yet; fold later
            };
            let Some(serve_closed) = serve.closed else {
                continue;
            };
            let rtt = root_closed.saturating_since(root.opened);
            // Only the reply leg (serve close -> editor close) is pure
            // network time. The request leg also contains freeze
            // stalls, refusal backoffs and redirect chases — genuine
            // user-felt latency (so it stays in the rtt weight) but a
            // poisonous link estimate: attributing a migration stall
            // to the *new* home would make the controller bounce the
            // cluster straight back.
            folds.push(Fold {
                trace_id,
                cluster: ClusterId(cluster),
                site: root.node,
                home: serve.node,
                rtt,
                reply: root_closed.saturating_since(serve_closed),
            });
        }
        for f in folds {
            self.consumed.insert(f.trace_id);
            self.latency.observe(f.site, f.home, f.reply);
            self.latency.observe(f.home, f.site, f.reply);
            // Weight the usage sample by the observed round trip.
            self.mgr
                .record_access(f.cluster, f.site, f.rtt.as_micros().max(1));
            *self.hot.entry(f.cluster).or_insert(0) += 1;
            ctx.metrics().incr("place.ctl.folds");
        }
    }

    /// Snapshot the latency pairs `place` will consult, so the decision
    /// is replayable from the record alone.
    fn latency_snapshot(
        &self,
        sites: &[NodeId],
        candidates: &[NodeId],
    ) -> Vec<((NodeId, NodeId), u64)> {
        let mut pairs = Vec::new();
        for &s in sites {
            for &c in candidates {
                pairs.push(((s, c), self.latency.estimate_us(s, c)));
            }
        }
        pairs
    }

    fn evaluate(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        if self.in_flight.is_some() {
            return;
        }
        // Hotness shortlist: most-folded first, id breaks ties.
        let mut shortlist: Vec<(ClusterId, u64)> = self
            .hot
            .iter()
            .filter(|&(_, &n)| n >= self.config.min_accesses)
            .map(|(&c, &n)| (c, n))
            .collect();
        shortlist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (cluster, _) in shortlist {
            let estimator = self.latency.estimator();
            let planned = self.mgr.plan(cluster, &self.registry, &estimator);
            drop(estimator);
            let Ok(Some(plan)) = planned else { continue };
            self.start_migration(ctx, plan);
            break;
        }
        // Old heat fades so one busy phase cannot anchor the shortlist.
        for n in self.hot.values_mut() {
            *n /= 2;
        }
        self.hot.retain(|_, &mut n| n > 0);
        self.mgr.age_usage();
    }

    fn start_migration(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, plan: MigrationPlan) {
        self.next_epoch += 1;
        let epoch = self.next_epoch;
        let now = ctx.now();
        let candidates = self.registry.candidate_nodes();
        let weights: Vec<(NodeId, u64)> = self
            .mgr
            .usage(plan.cluster)
            .map(|u| u.iter().collect())
            .unwrap_or_default();
        let sites: Vec<NodeId> = weights.iter().map(|&(s, _)| s).collect();
        let home = self.homes.get(&plan.cluster).copied().unwrap_or(plan.from);
        self.decisions.push(DecisionRecord {
            at: now,
            cluster: plan.cluster,
            epoch,
            from: plan.from,
            to: plan.to,
            policy: self.config.policy,
            hysteresis: self.config.hysteresis,
            home,
            candidates: candidates.clone(),
            weights,
            latency_us: self.latency_snapshot(&sites, &candidates),
            default_us: self.config.default_latency_us,
            cost_before_us: plan.cost_before_us,
            cost_after_us: plan.cost_after_us,
        });
        self.epochs.push(EpochRecord {
            cluster: plan.cluster,
            epoch,
            from: plan.from,
            to: plan.to,
            started: now,
            ended: None,
        });
        let timer = ctx.set_timer(self.config.epoch_timeout, TAG_EPOCH | epoch);
        ctx.metrics().incr("place.ctl.freezes");
        ctx.send(
            plan.from,
            PlaceWire::Freeze {
                cluster: plan.cluster,
                epoch,
                to: plan.to,
            },
        );
        self.in_flight = Some(InFlight {
            plan,
            epoch,
            state: FlightState::Streaming,
            timer,
        });
    }

    fn end_epoch(&mut self, epoch: u64, now: SimTime, outcome: EpochOutcome) {
        if let Some(rec) = self
            .epochs
            .iter_mut()
            .find(|r| r.epoch == epoch && r.ended.is_none())
        {
            rec.ended = Some((now, outcome));
        }
    }

    fn abort_epoch(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, reason: &str) {
        let Some(flight) = self.in_flight.take() else {
            return;
        };
        ctx.cancel_timer(flight.timer);
        let (cluster, epoch) = (flight.plan.cluster, flight.epoch);
        ctx.send(flight.plan.from, PlaceWire::Abort { cluster, epoch });
        ctx.send(flight.plan.to, PlaceWire::Abort { cluster, epoch });
        self.end_epoch(epoch, ctx.now(), EpochOutcome::Aborted);
        ctx.metrics().incr("place.ctl.aborts");
        ctx.trace("place.abort", format!("epoch {epoch}: {reason}"));
    }

    fn commit_epoch(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        let Some(flight) = self.in_flight.take() else {
            return;
        };
        ctx.cancel_timer(flight.timer);
        let plan = flight.plan;
        let epoch = flight.epoch;
        let now = ctx.now();
        if self.mgr.commit(&plan, &mut self.registry, now).is_err() {
            // The registry refused (cannot happen unless storage nodes
            // were retired mid-flight): treat as an abort.
            ctx.send(
                plan.from,
                PlaceWire::Abort {
                    cluster: plan.cluster,
                    epoch,
                },
            );
            ctx.send(
                plan.to,
                PlaceWire::Abort {
                    cluster: plan.cluster,
                    epoch,
                },
            );
            self.end_epoch(epoch, now, EpochOutcome::Aborted);
            return;
        }
        // The manager's tie-break anchor must follow the authoritative
        // home, or a later decision for the same cluster would score
        // against a home the DecisionRecord no longer reports.
        self.mgr.set_home(plan.cluster, plan.to);
        self.homes.insert(plan.cluster, plan.to);
        if let Some(&offer) = self.offer_ids.get(&plan.cluster) {
            self.offers.rehome(offer, plan.to);
        }
        ctx.send(
            plan.from,
            PlaceWire::Release {
                cluster: plan.cluster,
                epoch,
                to: plan.to,
            },
        );
        // Authoritative home broadcast: every editor and every storage
        // node learns without chasing redirects.
        let mut audience: BTreeSet<NodeId> = self.members.clone();
        audience.extend(self.registry.candidate_nodes());
        for node in audience {
            if node != self.me {
                ctx.send(
                    node,
                    PlaceWire::HomeUpdate {
                        cluster: plan.cluster,
                        node: plan.to,
                    },
                );
            }
        }
        // Awareness: surface the move as a cooperation notice.
        let event = CoopEvent::broadcast(
            self.me,
            format!("raster/tile/{}", plan.cluster.0),
            now,
            CoopKind::ClusterMigrated {
                from: plan.from,
                to: plan.to,
            },
        );
        for delivery in self.bus.publish(event) {
            ctx.send(delivery.observer, PlaceWire::Notice(delivery.event));
        }
        self.end_epoch(epoch, now, EpochOutcome::Committed);
        ctx.metrics().incr("place.ctl.migrations");
        ctx.trace(
            "place.migrated",
            format!(
                "cluster {} {} -> {} (epoch {epoch})",
                plan.cluster.0, plan.from.0, plan.to.0
            ),
        );
    }
}

impl TransportActor<PlaceWire> for PlacementActor {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        if self.config.eval_rounds > 0 {
            ctx.set_timer(self.config.eval_every, TAG_EVAL);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _from: NodeId, msg: PlaceWire) {
        match msg {
            PlaceWire::Stats { spans, accesses } => {
                if !self.config.active {
                    return;
                }
                for obs in &spans {
                    // Reports from nodes outside the session view are
                    // stale (a departed editor's last flush): drop them.
                    if !self.members.contains(&obs.node) && !self.capsules.contains_key(&obs.node) {
                        continue;
                    }
                    self.collector
                        .ingest_open(obs.opened, obs.node, obs.ctx, &obs.kind);
                    self.collector
                        .ingest_close(obs.closed, obs.ctx.trace_id, obs.ctx.span_id);
                }
                for (cluster, n) in accesses {
                    *self.hot.entry(ClusterId(cluster)).or_insert(0) += n;
                }
                self.fold_traces(ctx);
            }
            PlaceWire::ViewChange { view_id, members } => {
                if view_id <= self.view_id {
                    return; // stale view
                }
                self.view_id = view_id;
                let new: BTreeSet<NodeId> = members.into_iter().collect();
                for departed in self.members.difference(&new) {
                    self.mgr.forget_site(*departed);
                }
                self.members = new;
                ctx.metrics().incr("place.ctl.view_changes");
            }
            PlaceWire::TransferDone {
                cluster,
                epoch,
                hash,
            } => {
                let matches = self.in_flight.as_ref().is_some_and(|f| {
                    f.epoch == epoch
                        && f.plan.cluster == cluster
                        && matches!(f.state, FlightState::Streaming)
                });
                if !matches {
                    return;
                }
                if let Some(f) = self.in_flight.as_mut() {
                    f.state = FlightState::Committing;
                    let to = f.plan.to;
                    ctx.send(
                        to,
                        PlaceWire::Commit {
                            cluster,
                            epoch,
                            hash,
                        },
                    );
                }
            }
            PlaceWire::TransferFailed { epoch, reason, .. }
                if self.in_flight.as_ref().is_some_and(|f| f.epoch == epoch) =>
            {
                // Abort path: a failed migration is a rare fault, not
                // per-delivery traffic.
                // odp-check: allow(hot-path-alloc)
                self.abort_epoch(ctx, &format!("transfer failed: {reason}"));
            }
            PlaceWire::Installed { cluster, epoch } => {
                let matches = self.in_flight.as_ref().is_some_and(|f| {
                    f.epoch == epoch
                        && f.plan.cluster == cluster
                        && matches!(f.state, FlightState::Committing)
                });
                if matches {
                    self.commit_epoch(ctx);
                }
            }
            PlaceWire::InstallFailed { epoch, reason, .. }
                if self.in_flight.as_ref().is_some_and(|f| f.epoch == epoch) =>
            {
                // Abort path, as above.
                // odp-check: allow(hot-path-alloc)
                self.abort_epoch(ctx, &format!("install failed: {reason}"));
            }
            // Workload-plane traffic is not addressed to the controller.
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _timer: TimerId, tag: u64) {
        match tag & TAG_MASK {
            TAG_EVAL => {
                self.rounds_done += 1;
                if self.config.active {
                    self.evaluate(ctx);
                }
                if self.rounds_done < self.config.eval_rounds {
                    ctx.set_timer(self.config.eval_every, TAG_EVAL);
                }
            }
            TAG_EPOCH => {
                let epoch = tag & !TAG_MASK;
                if self.in_flight.as_ref().is_some_and(|f| f.epoch == epoch) {
                    self.abort_epoch(ctx, "epoch timeout");
                }
            }
            _ => {}
        }
    }

    fn on_peer_down(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, peer: NodeId) {
        let involved = self
            .in_flight
            .as_ref()
            .is_some_and(|f| f.plan.to == peer || f.plan.from == peer);
        if involved {
            self.abort_epoch(ctx, "peer down mid-migration");
        }
    }
}
