//! The placement subsystem's wire envelope.
//!
//! One message type carries both planes so the whole protocol is
//! hostable on any backend with a single codec:
//!
//! - the **workload plane** — tile reads/writes with piggybacked
//!   [`SpanContext`]s, stale-home redirects, and the periodic
//!   [`PlaceWire::Stats`] reports (shipped span observations plus
//!   per-cluster access counts) the controller feeds on;
//! - the **migration plane** — the freeze → chunk → install → release
//!   handshake between the controller and the two tile hosts.
//!
//! All decoders are total: truncated or hostile bytes yield a typed
//! [`NetError`], never a panic (property-tested in
//! `tests/wire_properties.rs`).

use odp_mgmt::model::ClusterId;
use odp_net::error::NetError;
use odp_net::wire::{WireCodec, WireReader};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_telemetry::span::{Carrier, SpanContext};

use odp_awareness::bus::CoopEvent;

impl WireCodec for SpanObs {
    fn encode(&self, out: &mut Vec<u8>) {
        self.ctx.encode(out);
        self.kind.encode(out);
        self.node.encode(out);
        self.opened.encode(out);
        self.closed.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(SpanObs {
            ctx: SpanContext::decode(r)?,
            kind: String::decode(r)?,
            node: NodeId::decode(r)?,
            opened: SimTime::decode(r)?,
            closed: SimTime::decode(r)?,
        })
    }
}

/// One closed span observed at a site, shipped to the controller so it
/// can rebuild the causal DAG in its own
/// [`odp_telemetry::collector::Collector`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanObs {
    /// The span's identity and parent link.
    pub ctx: SpanContext,
    /// Span kind (`tile.access.c<id>` roots, `tile.serve` children).
    pub kind: String,
    /// The node the span ran on.
    pub node: NodeId,
    /// When it opened.
    pub opened: SimTime,
    /// When it closed.
    pub closed: SimTime,
}

/// A `ClusterId` newtype codec (odp-mgmt does not depend on odp-net, so
/// the impl cannot live there; encode through the raw u32 instead).
fn encode_cluster(c: ClusterId, out: &mut Vec<u8>) {
    c.0.encode(out);
}

fn decode_cluster(r: &mut WireReader<'_>) -> Result<ClusterId, NetError> {
    Ok(ClusterId(u32::decode(r)?))
}

/// The placement protocol envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum PlaceWire {
    // ---- workload plane -------------------------------------------------
    /// Editor → home: read the cluster.
    Read {
        /// Target cluster.
        cluster: ClusterId,
        /// The editor's root `tile.access.c<id>` span.
        span: Option<SpanContext>,
    },
    /// Home → editor: read served.
    ReadOk {
        /// The cluster read.
        cluster: ClusterId,
    },
    /// Editor → home: write `byte` into the cluster.
    Write {
        /// Target cluster.
        cluster: ClusterId,
        /// Payload byte (the scenario paints single bytes; real tiles
        /// would carry patches).
        byte: u8,
        /// The editor's root span.
        span: Option<SpanContext>,
    },
    /// Home → editor: write applied.
    WriteOk {
        /// The cluster written.
        cluster: ClusterId,
    },
    /// Home → editor: the cluster is write-frozen mid-migration; retry
    /// after a short backoff.
    WriteRefused {
        /// The frozen cluster.
        cluster: ClusterId,
    },
    /// Old home → editor: the cluster moved; re-send to `to`.
    Moved {
        /// The moved cluster.
        cluster: ClusterId,
        /// Its new home.
        to: NodeId,
    },
    /// Site → controller: buffered span observations plus per-cluster
    /// access counts since the last report.
    Stats {
        /// Closed spans observed at the reporting site.
        spans: Vec<SpanObs>,
        /// Per-cluster accesses completed since the last report.
        accesses: Vec<(u32, u64)>,
    },
    /// Controller → everyone: authoritative home for a cluster.
    HomeUpdate {
        /// The cluster.
        cluster: ClusterId,
        /// Its (new) home.
        node: NodeId,
    },
    /// Session manager → controller: the session view changed (editors
    /// joined/departed); usage from departed members is forgotten.
    ViewChange {
        /// Monotonically increasing view number.
        view_id: u64,
        /// The new membership.
        members: Vec<NodeId>,
    },
    /// Controller → observer: a cooperation event surfaced by the
    /// controller's awareness bus (placement notices).
    Notice(CoopEvent),

    // ---- migration plane ------------------------------------------------
    /// Controller → source host: freeze writes on `cluster` and stream
    /// its state to `to` under `epoch`.
    Freeze {
        /// The cluster to move.
        cluster: ClusterId,
        /// The migration epoch (unique per attempt).
        epoch: u64,
        /// The destination host.
        to: NodeId,
    },
    /// Source → destination: one bounded chunk of cluster state.
    Chunk {
        /// The cluster in transfer.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// Chunk index (0-based, stop-and-wait).
        index: u32,
        /// Total chunks in this transfer.
        total: u32,
        /// The chunk's bytes.
        data: Vec<u8>,
    },
    /// Destination → source: chunk received (possibly a re-ack of a
    /// retransmitted duplicate).
    ChunkAck {
        /// The cluster in transfer.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// The acknowledged chunk.
        index: u32,
    },
    /// Source → controller: all chunks acknowledged; `hash` is the
    /// freeze-time snapshot hash the install must reproduce.
    TransferDone {
        /// The cluster transferred.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// FNV-1a of the snapshot.
        hash: u64,
    },
    /// Source → controller: the transfer failed (retry budget exhausted
    /// or destination declared down); the source keeps the state.
    TransferFailed {
        /// The cluster whose transfer failed.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Controller → destination: install the staged state if complete
    /// and its hash matches.
    Commit {
        /// The cluster to install.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// Expected snapshot hash.
        hash: u64,
    },
    /// Destination → controller: staged state installed exactly once.
    Installed {
        /// The installed cluster.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
    },
    /// Destination → controller: install refused (incomplete staging or
    /// hash mismatch).
    InstallFailed {
        /// The cluster that failed to install.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// Controller → source: the destination installed; drop the state,
    /// unfreeze, and redirect future requests to `to`.
    Release {
        /// The migrated cluster.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
        /// The new home.
        to: NodeId,
    },
    /// Controller → source and destination: the migration is abandoned;
    /// the source unfreezes and keeps the state, the destination drops
    /// its staging.
    Abort {
        /// The cluster whose migration aborted.
        cluster: ClusterId,
        /// The migration epoch.
        epoch: u64,
    },
}

impl Carrier for PlaceWire {
    fn span(&self) -> Option<SpanContext> {
        match self {
            PlaceWire::Read { span, .. } | PlaceWire::Write { span, .. } => *span,
            _ => None,
        }
    }

    fn set_span(&mut self, ctx: Option<SpanContext>) {
        match self {
            PlaceWire::Read { span, .. } | PlaceWire::Write { span, .. } => *span = ctx,
            _ => {}
        }
    }
}

impl WireCodec for PlaceWire {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            PlaceWire::Read { cluster, span } => {
                0u8.encode(out);
                encode_cluster(*cluster, out);
                span.encode(out);
            }
            PlaceWire::ReadOk { cluster } => {
                1u8.encode(out);
                encode_cluster(*cluster, out);
            }
            PlaceWire::Write {
                cluster,
                byte,
                span,
            } => {
                2u8.encode(out);
                encode_cluster(*cluster, out);
                byte.encode(out);
                span.encode(out);
            }
            PlaceWire::WriteOk { cluster } => {
                3u8.encode(out);
                encode_cluster(*cluster, out);
            }
            PlaceWire::WriteRefused { cluster } => {
                4u8.encode(out);
                encode_cluster(*cluster, out);
            }
            PlaceWire::Moved { cluster, to } => {
                5u8.encode(out);
                encode_cluster(*cluster, out);
                to.encode(out);
            }
            PlaceWire::Stats { spans, accesses } => {
                6u8.encode(out);
                spans.encode(out);
                accesses.encode(out);
            }
            PlaceWire::HomeUpdate { cluster, node } => {
                7u8.encode(out);
                encode_cluster(*cluster, out);
                node.encode(out);
            }
            PlaceWire::ViewChange { view_id, members } => {
                8u8.encode(out);
                view_id.encode(out);
                members.encode(out);
            }
            PlaceWire::Notice(event) => {
                9u8.encode(out);
                event.encode(out);
            }
            PlaceWire::Freeze { cluster, epoch, to } => {
                10u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                to.encode(out);
            }
            PlaceWire::Chunk {
                cluster,
                epoch,
                index,
                total,
                data,
            } => {
                11u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                index.encode(out);
                total.encode(out);
                data.encode(out);
            }
            PlaceWire::ChunkAck {
                cluster,
                epoch,
                index,
            } => {
                12u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                index.encode(out);
            }
            PlaceWire::TransferDone {
                cluster,
                epoch,
                hash,
            } => {
                13u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                hash.encode(out);
            }
            PlaceWire::TransferFailed {
                cluster,
                epoch,
                reason,
            } => {
                14u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                reason.encode(out);
            }
            PlaceWire::Commit {
                cluster,
                epoch,
                hash,
            } => {
                15u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                hash.encode(out);
            }
            PlaceWire::Installed { cluster, epoch } => {
                16u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
            }
            PlaceWire::InstallFailed {
                cluster,
                epoch,
                reason,
            } => {
                17u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                reason.encode(out);
            }
            PlaceWire::Release { cluster, epoch, to } => {
                18u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
                to.encode(out);
            }
            PlaceWire::Abort { cluster, epoch } => {
                19u8.encode(out);
                encode_cluster(*cluster, out);
                epoch.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(PlaceWire::Read {
                cluster: decode_cluster(r)?,
                span: Option::<SpanContext>::decode(r)?,
            }),
            1 => Ok(PlaceWire::ReadOk {
                cluster: decode_cluster(r)?,
            }),
            2 => Ok(PlaceWire::Write {
                cluster: decode_cluster(r)?,
                byte: u8::decode(r)?,
                span: Option::<SpanContext>::decode(r)?,
            }),
            3 => Ok(PlaceWire::WriteOk {
                cluster: decode_cluster(r)?,
            }),
            4 => Ok(PlaceWire::WriteRefused {
                cluster: decode_cluster(r)?,
            }),
            5 => Ok(PlaceWire::Moved {
                cluster: decode_cluster(r)?,
                to: NodeId::decode(r)?,
            }),
            6 => Ok(PlaceWire::Stats {
                spans: Vec::<SpanObs>::decode(r)?,
                accesses: Vec::<(u32, u64)>::decode(r)?,
            }),
            7 => Ok(PlaceWire::HomeUpdate {
                cluster: decode_cluster(r)?,
                node: NodeId::decode(r)?,
            }),
            8 => Ok(PlaceWire::ViewChange {
                view_id: u64::decode(r)?,
                members: Vec::<NodeId>::decode(r)?,
            }),
            9 => Ok(PlaceWire::Notice(CoopEvent::decode(r)?)),
            10 => Ok(PlaceWire::Freeze {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                to: NodeId::decode(r)?,
            }),
            11 => Ok(PlaceWire::Chunk {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                index: u32::decode(r)?,
                total: u32::decode(r)?,
                data: Vec::<u8>::decode(r)?,
            }),
            12 => Ok(PlaceWire::ChunkAck {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                index: u32::decode(r)?,
            }),
            13 => Ok(PlaceWire::TransferDone {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                hash: u64::decode(r)?,
            }),
            14 => Ok(PlaceWire::TransferFailed {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                reason: String::decode(r)?,
            }),
            15 => Ok(PlaceWire::Commit {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                hash: u64::decode(r)?,
            }),
            16 => Ok(PlaceWire::Installed {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
            }),
            17 => Ok(PlaceWire::InstallFailed {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                reason: String::decode(r)?,
            }),
            18 => Ok(PlaceWire::Release {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
                to: NodeId::decode(r)?,
            }),
            19 => Ok(PlaceWire::Abort {
                cluster: decode_cluster(r)?,
                epoch: u64::decode(r)?,
            }),
            tag => Err(NetError::BadTag {
                what: "PlaceWire",
                tag: tag as u32,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carrier_rides_read_and_write_only() {
        let ctx = SpanContext::root_with(7, 9);
        let mut read = PlaceWire::Read {
            cluster: ClusterId(1),
            span: None,
        };
        assert_eq!(read.span(), None);
        read.set_span(Some(ctx));
        assert_eq!(read.span(), Some(ctx));

        let mut ok = PlaceWire::ReadOk {
            cluster: ClusterId(1),
        };
        ok.set_span(Some(ctx));
        assert_eq!(ok.span(), None, "replies carry no span");
    }

    #[test]
    fn unknown_tag_is_a_typed_error() {
        let mut buf = Vec::new();
        77u8.encode(&mut buf);
        let got: Result<PlaceWire, NetError> = WireReader::new(&buf).finish();
        assert_eq!(
            got,
            Err(NetError::BadTag {
                what: "PlaceWire",
                tag: 77
            })
        );
    }
}
