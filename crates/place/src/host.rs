//! The tile host: stores cluster state, serves reads/writes, enforces
//! the migration write-freeze, and streams state in bounded chunks.
//!
//! A host plays two roles in a migration:
//!
//! - **source** — on [`PlaceWire::Freeze`] it snapshots the cluster,
//!   refuses writes (reads keep flowing from the old copy), and
//!   stop-and-wait streams the snapshot to the destination in chunks
//!   planned by [`ChunkPlan`], retrying each chunk a bounded number of
//!   times before reporting [`PlaceWire::TransferFailed`]. The state is
//!   dropped only on [`PlaceWire::Release`] — an aborted transfer
//!   leaves the cluster fully readable (and writable again) at the old
//!   home;
//! - **destination** — chunks are staged per `(cluster, epoch)`,
//!   acknowledged (duplicates re-acknowledged, installed exactly once),
//!   and installed only when [`PlaceWire::Commit`] confirms the
//!   snapshot hash.
//!
//! The freeze window and every write are logged so the
//! `placement-soundness` invariant can independently check that no
//! acknowledged write ever falls inside an active epoch. The
//! [`set_quiesce(false)`](TileHostActor::set_quiesce) knob disables the
//! freeze *enforcement* (but not the logging) — the seeded known-bad
//! fixture proving the detector detects lost updates.

use std::collections::{BTreeMap, BTreeSet};

use odp_mgmt::model::ClusterId;
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_sim::actor::TimerId;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::transfer::ChunkPlan;

use crate::content_hash;
use crate::wire::{PlaceWire, SpanObs};

/// Timer-tag kinds (high byte) for the host's multiplexed timers.
const TAG_RETRY: u64 = 1 << 56;
const TAG_REPORT: u64 = 2 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// One active outbound transfer (source role).
#[derive(Debug)]
struct Outbound {
    epoch: u64,
    to: NodeId,
    snapshot: Vec<u8>,
    hash: u64,
    plan: ChunkPlan,
    next: u32,
    retries: u32,
    timer: Option<TimerId>,
    failed: bool,
}

/// Staged inbound chunks (destination role).
#[derive(Debug, Default)]
struct Staging {
    chunks: BTreeMap<u32, Vec<u8>>,
    total: Option<u32>,
}

/// One freeze window at the source, for the soundness invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreezeRecord {
    /// The frozen cluster.
    pub cluster: ClusterId,
    /// The migration epoch.
    pub epoch: u64,
    /// When the freeze started.
    pub from: SimTime,
    /// When it ended (`None` while active).
    pub until: Option<SimTime>,
    /// Whether the epoch ended in a release (`true`), an abort
    /// (`false`), or is still open (`None`).
    pub committed: Option<bool>,
}

/// One exactly-once install at the destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstallRecord {
    /// The installed cluster.
    pub cluster: ClusterId,
    /// The migration epoch.
    pub epoch: u64,
    /// When it installed.
    pub at: SimTime,
    /// Hash of the installed content.
    pub hash: u64,
}

/// Stores tiles and runs both ends of the chunked migration protocol.
#[derive(Debug)]
pub struct TileHostActor {
    me: NodeId,
    controller: NodeId,
    tiles: BTreeMap<ClusterId, Vec<u8>>,
    redirects: BTreeMap<ClusterId, NodeId>,
    write_seqs: BTreeMap<ClusterId, u64>,
    outbound: BTreeMap<ClusterId, Outbound>,
    staging: BTreeMap<(u32, u64), Staging>,
    aborted: BTreeSet<(u32, u64)>,
    // Telemetry buffered for the next stats report.
    span_buf: Vec<SpanObs>,
    report_timer: Option<TimerId>,
    report_every: SimDuration,
    // Transfer knobs.
    chunk_bytes: usize,
    retry_after: SimDuration,
    max_retries: u32,
    quiesce: bool,
    // Logs read by tests and the soundness invariant.
    freeze_log: Vec<FreezeRecord>,
    installs: Vec<InstallRecord>,
    writes_in_freeze: Vec<(SimTime, ClusterId, u64)>,
    writes_refused: u64,
}

impl TileHostActor {
    /// A host at `me` reporting telemetry to `controller`.
    pub fn new(me: NodeId, controller: NodeId) -> Self {
        TileHostActor {
            me,
            controller,
            tiles: BTreeMap::new(),
            redirects: BTreeMap::new(),
            write_seqs: BTreeMap::new(),
            outbound: BTreeMap::new(),
            staging: BTreeMap::new(),
            aborted: BTreeSet::new(),
            span_buf: Vec::new(),
            report_timer: None,
            report_every: SimDuration::from_millis(100),
            chunk_bytes: 8 * 1024,
            retry_after: SimDuration::from_millis(100),
            max_retries: 3,
            quiesce: true,
            freeze_log: Vec::new(),
            installs: Vec::new(),
            writes_in_freeze: Vec::new(),
            writes_refused: 0,
        }
    }

    /// Seeds a tile this host is home for.
    pub fn add_tile(&mut self, cluster: ClusterId, content: Vec<u8>) {
        self.tiles.insert(cluster, content);
    }

    /// Sets the chunk-size bound for outbound transfers.
    pub fn set_chunk_bytes(&mut self, bytes: usize) {
        self.chunk_bytes = bytes.max(1);
    }

    /// Sets the per-chunk retransmit delay and retry budget.
    pub fn set_retry(&mut self, after: SimDuration, max_retries: u32) {
        self.retry_after = after;
        self.max_retries = max_retries;
    }

    /// Sets the stats-report cadence.
    pub fn set_report_every(&mut self, every: SimDuration) {
        self.report_every = every;
    }

    /// Arms or disarms write-freeze *enforcement*. Disarming keeps the
    /// freeze bookkeeping (the epoch is still logged) but applies
    /// writes that should have been refused — the seeded known-bad
    /// fixture for the `placement-soundness` explorer check.
    pub fn set_quiesce(&mut self, quiesce: bool) {
        self.quiesce = quiesce;
    }

    /// The tile content currently resident here, if any.
    pub fn tile(&self, cluster: ClusterId) -> Option<&[u8]> {
        self.tiles.get(&cluster).map(Vec::as_slice)
    }

    /// Clusters resident on this host, ascending.
    pub fn resident(&self) -> Vec<ClusterId> {
        self.tiles.keys().copied().collect()
    }

    /// Where a released cluster went, if this host redirected it.
    pub fn redirect(&self, cluster: ClusterId) -> Option<NodeId> {
        self.redirects.get(&cluster).copied()
    }

    /// True while `cluster` is in an active outbound freeze.
    pub fn is_frozen(&self, cluster: ClusterId) -> bool {
        self.outbound.contains_key(&cluster)
    }

    /// Freeze windows this host has run as a source.
    pub fn freeze_log(&self) -> &[FreezeRecord] {
        &self.freeze_log
    }

    /// Exactly-once installs this host has run as a destination.
    pub fn installs(&self) -> &[InstallRecord] {
        &self.installs
    }

    /// Writes applied while their cluster was inside an active freeze
    /// window (only ever non-empty when quiescing is disarmed).
    pub fn writes_in_freeze(&self) -> &[(SimTime, ClusterId, u64)] {
        &self.writes_in_freeze
    }

    /// Writes refused because of an active freeze.
    pub fn writes_refused(&self) -> u64 {
        self.writes_refused
    }

    fn buffer_span(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, obs: SpanObs) {
        self.span_buf.push(obs);
        if self.report_timer.is_none() {
            self.report_timer = Some(ctx.set_timer(self.report_every, TAG_REPORT));
        }
    }

    fn flush_report(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        self.report_timer = None;
        if self.span_buf.is_empty() {
            return;
        }
        let spans = std::mem::take(&mut self.span_buf);
        ctx.send(
            self.controller,
            PlaceWire::Stats {
                spans,
                accesses: Vec::new(),
            },
        );
    }

    /// Serves one access, minting the serve child span and buffering
    /// its observation for the controller.
    fn serve_span(
        &mut self,
        ctx: &mut dyn NetCtx<PlaceWire>,
        parent: Option<odp_telemetry::span::SpanContext>,
    ) {
        let Some(parent) = parent else { return };
        let child = parent.child(ctx.rng());
        let now = ctx.now();
        ctx.span_open(child.carrier(), "tile.serve");
        ctx.span_close(child.carrier());
        let me = self.me;
        self.buffer_span(
            ctx,
            SpanObs {
                ctx: child,
                kind: "tile.serve".to_owned(),
                node: me,
                opened: now,
                closed: now,
            },
        );
    }

    fn send_chunk(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, cluster: ClusterId) {
        let Some(out) = self.outbound.get_mut(&cluster) else {
            return;
        };
        let range = out.plan.range_of(out.next);
        let data = out.snapshot[range].to_vec();
        let bytes = data.len() + 32;
        let msg = PlaceWire::Chunk {
            cluster,
            epoch: out.epoch,
            index: out.next,
            total: out.plan.count(),
            data,
        };
        let to = out.to;
        ctx.send_sized(to, msg, bytes);
        let timer = ctx.set_timer(self.retry_after, TAG_RETRY | cluster.0 as u64);
        if let Some(out) = self.outbound.get_mut(&cluster) {
            out.timer = Some(timer);
        }
    }

    fn fail_transfer(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, cluster: ClusterId, reason: &str) {
        let Some(out) = self.outbound.get_mut(&cluster) else {
            return;
        };
        if out.failed {
            return; // already reported; awaiting the controller's Abort
        }
        out.failed = true;
        if let Some(t) = out.timer.take() {
            ctx.cancel_timer(t);
        }
        let epoch = out.epoch;
        ctx.metrics().incr("place.host.transfer_failed");
        ctx.send(
            self.controller,
            PlaceWire::TransferFailed {
                cluster,
                epoch,
                reason: reason.to_owned(),
            },
        );
    }

    fn end_freeze(&mut self, cluster: ClusterId, epoch: u64, now: SimTime, committed: bool) {
        if let Some(rec) = self
            .freeze_log
            .iter_mut()
            .rev()
            .find(|r| r.cluster == cluster && r.epoch == epoch && r.until.is_none())
        {
            rec.until = Some(now);
            rec.committed = Some(committed);
        }
    }

    fn on_wire(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, from: NodeId, msg: PlaceWire) {
        match msg {
            PlaceWire::Read { cluster, span } => {
                if self.tiles.contains_key(&cluster) {
                    self.serve_span(ctx, span);
                    ctx.metrics().incr("place.host.reads");
                    ctx.send(from, PlaceWire::ReadOk { cluster });
                } else if let Some(&to) = self.redirects.get(&cluster) {
                    ctx.send(from, PlaceWire::Moved { cluster, to });
                } else {
                    ctx.metrics().incr("place.host.unroutable");
                }
            }
            PlaceWire::Write {
                cluster,
                byte,
                span,
            } => {
                let frozen = self.outbound.contains_key(&cluster);
                if !self.tiles.contains_key(&cluster) {
                    if let Some(&to) = self.redirects.get(&cluster) {
                        ctx.send(from, PlaceWire::Moved { cluster, to });
                    } else {
                        ctx.metrics().incr("place.host.unroutable");
                    }
                    return;
                }
                if frozen && self.quiesce {
                    self.writes_refused += 1;
                    ctx.metrics().incr("place.host.writes_refused");
                    ctx.send(from, PlaceWire::WriteRefused { cluster });
                    return;
                }
                if frozen {
                    // Quiescing disarmed: the lost-update the soundness
                    // invariant exists to catch.
                    let epoch = self.outbound.get(&cluster).map_or(0, |o| o.epoch);
                    self.writes_in_freeze.push((ctx.now(), cluster, epoch));
                }
                let seq = self.write_seqs.entry(cluster).or_insert(0);
                *seq += 1;
                let at = (*seq) as usize;
                if let Some(content) = self.tiles.get_mut(&cluster) {
                    if !content.is_empty() {
                        let i = at % content.len();
                        content[i] = content[i].wrapping_add(byte);
                    }
                }
                self.serve_span(ctx, span);
                ctx.metrics().incr("place.host.writes");
                ctx.send(from, PlaceWire::WriteOk { cluster });
            }
            PlaceWire::Freeze { cluster, epoch, to } => {
                let Some(content) = self.tiles.get(&cluster) else {
                    ctx.send(
                        self.controller,
                        PlaceWire::TransferFailed {
                            cluster,
                            epoch,
                            reason: "not resident".to_owned(),
                        },
                    );
                    return;
                };
                if self.outbound.contains_key(&cluster) {
                    return; // already migrating; controller never does this
                }
                let snapshot = content.clone();
                let hash = content_hash(&snapshot);
                let plan = ChunkPlan::bounded(snapshot.len(), self.chunk_bytes);
                self.freeze_log.push(FreezeRecord {
                    cluster,
                    epoch,
                    from: ctx.now(),
                    until: None,
                    committed: None,
                });
                self.outbound.insert(
                    cluster,
                    Outbound {
                        epoch,
                        to,
                        snapshot,
                        hash,
                        plan,
                        next: 0,
                        retries: 0,
                        timer: None,
                        failed: false,
                    },
                );
                ctx.metrics().incr("place.host.freezes");
                if plan.count() == 0 {
                    ctx.send(
                        self.controller,
                        PlaceWire::TransferDone {
                            cluster,
                            epoch,
                            hash,
                        },
                    );
                } else {
                    self.send_chunk(ctx, cluster);
                }
            }
            PlaceWire::ChunkAck {
                cluster,
                epoch,
                index,
            } => {
                let Some(out) = self.outbound.get_mut(&cluster) else {
                    return;
                };
                if out.epoch != epoch || out.failed || index != out.next {
                    return; // stale or duplicate ack
                }
                if let Some(t) = out.timer.take() {
                    ctx.cancel_timer(t);
                }
                out.next += 1;
                out.retries = 0;
                if out.next >= out.plan.count() {
                    let (epoch, hash) = (out.epoch, out.hash);
                    ctx.send(
                        self.controller,
                        PlaceWire::TransferDone {
                            cluster,
                            epoch,
                            hash,
                        },
                    );
                } else {
                    self.send_chunk(ctx, cluster);
                }
            }
            PlaceWire::Release { cluster, epoch, to } => {
                if let Some(out) = self.outbound.get(&cluster) {
                    if out.epoch != epoch {
                        return;
                    }
                }
                if let Some(out) = self.outbound.remove(&cluster) {
                    if let Some(t) = out.timer {
                        ctx.cancel_timer(t);
                    }
                }
                self.tiles.remove(&cluster);
                self.redirects.insert(cluster, to);
                self.end_freeze(cluster, epoch, ctx.now(), true);
                ctx.metrics().incr("place.host.releases");
            }
            PlaceWire::Abort { cluster, epoch } => {
                // Source role: unfreeze, keep the state.
                if let Some(out) = self.outbound.get(&cluster) {
                    if out.epoch == epoch {
                        if let Some(out) = self.outbound.remove(&cluster) {
                            if let Some(t) = out.timer {
                                ctx.cancel_timer(t);
                            }
                        }
                        self.end_freeze(cluster, epoch, ctx.now(), false);
                        ctx.metrics().incr("place.host.aborts");
                    }
                }
                // Destination role: drop the staging.
                self.staging.remove(&(cluster.0, epoch));
                self.aborted.insert((cluster.0, epoch));
            }
            PlaceWire::Chunk {
                cluster,
                epoch,
                index,
                total,
                data,
            } => {
                if self.aborted.contains(&(cluster.0, epoch)) {
                    return;
                }
                let staging = self.staging.entry((cluster.0, epoch)).or_default();
                staging.total = Some(total);
                staging.chunks.entry(index).or_insert(data);
                // Always ack — the previous ack may have been lost.
                ctx.send(
                    from,
                    PlaceWire::ChunkAck {
                        cluster,
                        epoch,
                        index,
                    },
                );
            }
            PlaceWire::Commit {
                cluster,
                epoch,
                hash,
            } => {
                let Some(staging) = self.staging.get(&(cluster.0, epoch)) else {
                    ctx.send(
                        self.controller,
                        PlaceWire::InstallFailed {
                            cluster,
                            epoch,
                            reason: "no staging".to_owned(),
                        },
                    );
                    return;
                };
                let complete = staging
                    .total
                    .is_some_and(|t| staging.chunks.len() as u32 == t);
                if !complete {
                    ctx.send(
                        self.controller,
                        PlaceWire::InstallFailed {
                            cluster,
                            epoch,
                            reason: "incomplete staging".to_owned(),
                        },
                    );
                    return;
                }
                let assembled: Vec<u8> = staging
                    .chunks
                    .values()
                    .flat_map(|c| c.iter().copied())
                    .collect();
                if content_hash(&assembled) != hash {
                    ctx.send(
                        self.controller,
                        PlaceWire::InstallFailed {
                            cluster,
                            epoch,
                            reason: "hash mismatch".to_owned(),
                        },
                    );
                    return;
                }
                self.staging.remove(&(cluster.0, epoch));
                self.redirects.remove(&cluster);
                self.tiles.insert(cluster, assembled);
                self.installs.push(InstallRecord {
                    cluster,
                    epoch,
                    at: ctx.now(),
                    hash,
                });
                ctx.metrics().incr("place.host.installs");
                ctx.send(self.controller, PlaceWire::Installed { cluster, epoch });
            }
            // Keep redirects current so late readers chase at most
            // one hop.
            PlaceWire::HomeUpdate { cluster, node }
                if node != self.me && !self.tiles.contains_key(&cluster) =>
            {
                self.redirects.insert(cluster, node);
            }
            // Replies, stats and controller-plane messages are not for
            // hosts; ignore them rather than crash a storage node.
            _ => {}
        }
    }
}

impl TransportActor<PlaceWire> for TileHostActor {
    fn on_message(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, from: NodeId, msg: PlaceWire) {
        self.on_wire(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _timer: TimerId, tag: u64) {
        match tag & TAG_MASK {
            TAG_REPORT => self.flush_report(ctx),
            TAG_RETRY => {
                let cluster = ClusterId((tag & 0xffff_ffff) as u32);
                let Some(out) = self.outbound.get_mut(&cluster) else {
                    return;
                };
                if out.failed {
                    return;
                }
                out.timer = None;
                if out.retries >= self.max_retries {
                    self.fail_transfer(ctx, cluster, "chunk retry budget exhausted");
                } else {
                    out.retries += 1;
                    ctx.metrics().incr("place.host.chunk_retries");
                    self.send_chunk(ctx, cluster);
                }
            }
            _ => {}
        }
    }

    fn on_peer_down(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, peer: NodeId) {
        // Only a live transport raises this: the destination died
        // mid-transfer. Fail fast instead of burning the retry budget.
        let failing: Vec<ClusterId> = self
            .outbound
            .iter()
            .filter(|(_, o)| o.to == peer && !o.failed)
            .map(|(&c, _)| c)
            .collect();
        for cluster in failing {
            self.fail_transfer(ctx, cluster, "destination down");
        }
    }
}
