#![warn(missing_docs)]

//! # odp-place — closed-loop telemetry-driven placement
//!
//! The paper's requirement 6 asks for *group-aware* object placement:
//! management that watches how a group actually uses shared objects and
//! re-locates them accordingly. `odp-mgmt` supplies the offline policy
//! pieces ([`odp_mgmt::placement::place`], `MigrationManager`) and
//! `odp-telemetry` the observation pieces (causal span DAGs, critical
//! paths, latency histograms); this crate closes the loop **live**:
//!
//! - [`host::TileHostActor`] stores cluster state (raster tiles),
//!   serves reads/writes, enforces the migration write-freeze, and
//!   streams state in bounded chunks planned by
//!   [`odp_streams::transfer::ChunkPlan`];
//! - [`controller::PlacementActor`] ingests [`wire::PlaceWire`]
//!   telemetry reports — per-trace critical paths feed a latency-
//!   weighted usage pattern (observed microseconds, not raw counts) —
//!   plans migrations with `MigrationManager::plan`, drives the
//!   freeze → chunk → install → release protocol, re-registers the
//!   moved offer in an [`odp_trader::store::OfferStore`] and announces
//!   [`odp_awareness::bus::CoopKind::ClusterMigrated`] notices;
//! - [`scenario`] builds the COLiER-style `collab_raster` workload
//!   (N editors, tiled canvas, panning access waves, session churn)
//!   that proves the loop end-to-end.
//!
//! Every actor is a [`odp_net::actor::TransportActor`], so the same
//! protocol runs bit-identically under [`odp_net::sim_host::SimHost`]
//! and degrades gracefully on the TCP backend: if the destination dies
//! mid-transfer the migration aborts cleanly and the cluster stays
//! readable at its old home.

pub mod controller;
pub mod host;
pub mod latency;
pub mod scenario;
pub mod wire;

pub use controller::{DecisionRecord, EpochOutcome, EpochRecord, PlaceConfig, PlacementActor};
pub use host::TileHostActor;
pub use latency::LatencyMap;
pub use scenario::{collab_raster, EditorActor, RasterConfig, RasterScenario};
pub use wire::{PlaceWire, SpanObs};

/// Deterministic 64-bit FNV-1a over cluster content. Both ends of a
/// transfer hash independently; a committed install must match the
/// freeze-time snapshot hash exactly (the "state transferred
/// exactly-once" obligation checked by the `placement-soundness`
/// invariant).
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_content_sensitive() {
        let a = content_hash(b"tile");
        assert_eq!(a, content_hash(b"tile"), "deterministic");
        assert_ne!(a, content_hash(b"tilf"), "content sensitive");
        assert_ne!(content_hash(b""), 0);
    }
}
