//! The COLiER-style `collab_raster` workload: a shared raster canvas
//! edited by two islands of editors in turn.
//!
//! Two storage nodes sit on opposite sides of a WAN link. Every tile
//! starts at storage A. Phase 1: island-A editors pan across the
//! canvas (LAN round trips). At the phase boundary the session view
//! changes — the A editors go home, island-B editors join — and phase
//! 2 repeats the same panning from the far side of the WAN. A
//! telemetry-driven controller should notice the access locus moved,
//! migrate the hot tiles to storage B, and cut phase-2 critical paths
//! from WAN to LAN round trips; the benchmark's baseline arm runs the
//! identical schedule with the controller's policy loop disabled.
//!
//! Everything here is built from [`SimHost`]-wrapped
//! [`TransportActor`]s, so the same actors run over the TCP backend
//! unchanged (the failure-injection suite does exactly that).

use std::collections::BTreeMap;

use odp_mgmt::model::ClusterId;
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_net::sim_host::SimHost;
use odp_sim::actor::TimerId;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::sim::{Sim, SimBuilder};
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::SpanContext;

use odp_awareness::bus::CoopEvent;

use crate::controller::{PlaceConfig, PlacementActor, ACCESS_KIND_PREFIX};
use crate::host::TileHostActor;
use crate::wire::{PlaceWire, SpanObs};

const TAG_OP: u64 = 1 << 56;
const TAG_REPORT: u64 = 2 << 56;
const TAG_RETRY: u64 = 3 << 56;
const TAG_MASK: u64 = 0xff << 56;

/// One scripted access in an editor's panning schedule.
#[derive(Debug, Clone, Copy)]
pub struct ScriptedOp {
    /// Offset from simulation start.
    pub at: SimDuration,
    /// The tile accessed.
    pub cluster: ClusterId,
    /// Write (paint) rather than read (pan).
    pub write: bool,
}

#[derive(Debug)]
struct Pending {
    span: SpanContext,
    write: bool,
    byte: u8,
    opened: SimTime,
}

/// A scripted raster editor: runs its panning schedule, follows
/// redirects and home updates, backs off on write freezes, and ships
/// span observations plus access counts to the controller.
#[derive(Debug)]
pub struct EditorActor {
    me: NodeId,
    controller: NodeId,
    homes: BTreeMap<ClusterId, NodeId>,
    ops: Vec<ScriptedOp>,
    pending: BTreeMap<ClusterId, Pending>,
    span_buf: Vec<SpanObs>,
    access_counts: BTreeMap<ClusterId, u64>,
    report_timer: Option<TimerId>,
    report_every: SimDuration,
    retry_after: SimDuration,
    completed: u64,
    skipped: u64,
    refusals: u64,
    notices: Vec<CoopEvent>,
}

impl EditorActor {
    /// An editor at `me` reporting to `controller`, with every tile's
    /// initial home seeded in `homes`.
    pub fn new(me: NodeId, controller: NodeId, homes: BTreeMap<ClusterId, NodeId>) -> Self {
        EditorActor {
            me,
            controller,
            homes,
            ops: Vec::new(),
            pending: BTreeMap::new(),
            span_buf: Vec::new(),
            access_counts: BTreeMap::new(),
            report_timer: None,
            report_every: SimDuration::from_millis(50),
            retry_after: SimDuration::from_millis(20),
            completed: 0,
            skipped: 0,
            refusals: 0,
            notices: Vec::new(),
        }
    }

    /// Appends one scripted access.
    pub fn script(&mut self, op: ScriptedOp) {
        self.ops.push(op);
    }

    /// Sets the stats-report cadence.
    pub fn set_report_every(&mut self, every: SimDuration) {
        self.report_every = every;
    }

    /// Accesses that completed (got their `ReadOk`/`WriteOk`).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Scripted ops skipped because the previous op on the same tile
    /// was still in flight.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Writes refused by a freeze (each later retried).
    pub fn refusals(&self) -> u64 {
        self.refusals
    }

    /// Placement notices received from the awareness bus.
    pub fn notices(&self) -> &[CoopEvent] {
        &self.notices
    }

    /// The editor's current belief about a tile's home.
    pub fn home_of(&self, cluster: ClusterId) -> Option<NodeId> {
        self.homes.get(&cluster).copied()
    }

    fn buffer_obs(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, obs: SpanObs) {
        self.span_buf.push(obs);
        if self.report_timer.is_none() {
            self.report_timer = Some(ctx.set_timer(self.report_every, TAG_REPORT));
        }
    }

    fn flush_report(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        self.report_timer = None;
        if self.span_buf.is_empty() && self.access_counts.is_empty() {
            return;
        }
        let spans = std::mem::take(&mut self.span_buf);
        let accesses = std::mem::take(&mut self.access_counts)
            .into_iter()
            .map(|(c, n)| (c.0, n))
            .collect();
        ctx.send(self.controller, PlaceWire::Stats { spans, accesses });
    }

    fn send_pending(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, cluster: ClusterId) {
        let Some(home) = self.homes.get(&cluster).copied() else {
            return;
        };
        let Some(p) = self.pending.get(&cluster) else {
            return;
        };
        let msg = if p.write {
            PlaceWire::Write {
                cluster,
                byte: p.byte,
                span: Some(p.span),
            }
        } else {
            PlaceWire::Read {
                cluster,
                span: Some(p.span),
            }
        };
        ctx.send(home, msg);
    }

    fn begin_op(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, index: usize) {
        let Some(op) = self.ops.get(index).copied() else {
            return;
        };
        if self.pending.contains_key(&op.cluster) {
            // One outstanding access per tile; panning past an
            // unanswered tile is simply dropped frames.
            self.skipped += 1;
            ctx.metrics().incr("place.editor.skipped");
            return;
        }
        let span = SpanContext::root(ctx.rng());
        let kind = format!("{ACCESS_KIND_PREFIX}{}", op.cluster.0);
        ctx.span_open(span.carrier(), &kind);
        self.pending.insert(
            op.cluster,
            Pending {
                span,
                write: op.write,
                byte: (index as u8).wrapping_add(1),
                opened: ctx.now(),
            },
        );
        self.send_pending(ctx, op.cluster);
    }

    fn complete_op(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, cluster: ClusterId) {
        let Some(p) = self.pending.remove(&cluster) else {
            return;
        };
        let now = ctx.now();
        ctx.span_close(p.span.carrier());
        let me = self.me;
        self.buffer_obs(
            ctx,
            SpanObs {
                ctx: p.span,
                kind: format!("{ACCESS_KIND_PREFIX}{}", cluster.0),
                node: me,
                opened: p.opened,
                closed: now,
            },
        );
        *self.access_counts.entry(cluster).or_insert(0) += 1;
        self.completed += 1;
        ctx.metrics().incr("place.editor.completed");
    }
}

impl TransportActor<PlaceWire> for EditorActor {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        let now = ctx.now();
        for (i, op) in self.ops.iter().enumerate() {
            let at = SimTime::ZERO + op.at;
            ctx.set_timer(at.saturating_since(now), TAG_OP | i as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _from: NodeId, msg: PlaceWire) {
        match msg {
            PlaceWire::ReadOk { cluster } | PlaceWire::WriteOk { cluster } => {
                self.complete_op(ctx, cluster);
            }
            PlaceWire::WriteRefused { cluster } => {
                // The tile is frozen mid-migration: retry the same
                // span after a short backoff, so the freeze stall
                // lands in the observed access latency.
                self.refusals += 1;
                ctx.metrics().incr("place.editor.refused");
                if self.pending.contains_key(&cluster) {
                    ctx.set_timer(self.retry_after, TAG_RETRY | cluster.0 as u64);
                }
            }
            PlaceWire::Moved { cluster, to } => {
                self.homes.insert(cluster, to);
                // Chase the redirect with the same span: the extra hop
                // is genuine observed latency.
                self.send_pending(ctx, cluster);
            }
            PlaceWire::HomeUpdate { cluster, node } => {
                self.homes.insert(cluster, node);
            }
            PlaceWire::Notice(event) => {
                self.notices.push(event);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _timer: TimerId, tag: u64) {
        match tag & TAG_MASK {
            TAG_OP => self.begin_op(ctx, (tag & !TAG_MASK) as usize),
            TAG_REPORT => self.flush_report(ctx),
            TAG_RETRY => {
                let cluster = ClusterId((tag & 0xffff_ffff) as u32);
                self.send_pending(ctx, cluster);
            }
            _ => {}
        }
    }
}

/// Knobs for the `collab_raster` scenario.
#[derive(Debug, Clone)]
pub struct RasterConfig {
    /// Deterministic seed.
    pub seed: u64,
    /// Editors on each island.
    pub editors_per_island: usize,
    /// Raster tiles (one cluster each).
    pub tiles: u32,
    /// Bytes per tile.
    pub tile_bytes: usize,
    /// Migration chunk bound.
    pub chunk_bytes: usize,
    /// Scripted accesses per editor per phase.
    pub phase_ops: usize,
    /// Gap between one editor's consecutive accesses.
    pub op_gap: SimDuration,
    /// One-way WAN latency between the islands.
    pub wan: SimDuration,
    /// Run the controller's policy loop (the benchmark's "on" arm).
    pub controller_on: bool,
    /// Enforce the write freeze (disarmed only by the known-bad
    /// soundness fixture).
    pub quiesce: bool,
}

impl Default for RasterConfig {
    fn default() -> Self {
        RasterConfig {
            seed: 42,
            editors_per_island: 3,
            tiles: 8,
            tile_bytes: 32 * 1024,
            chunk_bytes: 16 * 1024,
            phase_ops: 48,
            op_gap: SimDuration::from_millis(20),
            wan: SimDuration::from_millis(20),
            controller_on: true,
            quiesce: true,
        }
    }
}

/// Node layout and phase boundaries of a built scenario.
#[derive(Debug, Clone)]
pub struct RasterScenario {
    /// Storage on island A (every tile's initial home).
    pub storage_a: NodeId,
    /// Storage on island B.
    pub storage_b: NodeId,
    /// The placement controller (island A side).
    pub controller: NodeId,
    /// Island-A editors.
    pub editors_a: Vec<NodeId>,
    /// Island-B editors.
    pub editors_b: Vec<NodeId>,
    /// The tile clusters, ascending.
    pub tiles: Vec<ClusterId>,
    /// When phase 2 (island B) starts.
    pub phase2_start: SimTime,
    /// When the last scripted access fires.
    pub last_op: SimTime,
}

/// Builds the two-island raster-editing simulation. The returned sim is
/// ready to `run(Until::Idle)`; all quiescence is timer-bounded.
pub fn collab_raster(cfg: &RasterConfig) -> (Sim<PlaceWire>, RasterScenario) {
    let k = cfg.editors_per_island;
    let storage_a = NodeId(0);
    let storage_b = NodeId(1);
    let controller = NodeId(2);
    let editors_a: Vec<NodeId> = (0..k).map(|i| NodeId(3 + i as u32)).collect();
    let editors_b: Vec<NodeId> = (0..k).map(|i| NodeId(3 + (k + i) as u32)).collect();

    // Deterministic links: zero jitter, zero loss, LAN bandwidth.
    let lan = LinkSpec {
        latency: SimDuration::from_micros(500),
        jitter: SimDuration::ZERO,
        bytes_per_sec: Some(12_500_000),
        loss: 0.0,
    };
    let wan = LinkSpec {
        latency: cfg.wan,
        jitter: SimDuration::ZERO,
        bytes_per_sec: Some(12_500_000),
        loss: 0.0,
    };
    let mut island_of: BTreeMap<NodeId, u8> = BTreeMap::new();
    island_of.insert(storage_a, 0);
    island_of.insert(controller, 0);
    island_of.insert(storage_b, 1);
    for &e in &editors_a {
        island_of.insert(e, 0);
    }
    for &e in &editors_b {
        island_of.insert(e, 1);
    }
    let mut net = Network::new(lan);
    let nodes: Vec<NodeId> = island_of.keys().copied().collect();
    for (i, &a) in nodes.iter().enumerate() {
        for &b in nodes.iter().skip(i + 1) {
            if island_of[&a] != island_of[&b] {
                net.set_link(a, b, wan);
            }
        }
    }

    let mut sim = SimBuilder::new(cfg.seed)
        .network(net)
        .trace_capacity(1 << 20)
        .build::<PlaceWire>();

    // Controller: registry mirror, usage manager, offer store, bus.
    let phase1_span = cfg.op_gap.mul_f64(cfg.phase_ops as f64);
    let phase2_start = SimTime::ZERO + SimDuration::from_millis(50) + phase1_span;
    let last_op = phase2_start + phase1_span;
    let mut pc = PlaceConfig {
        eval_every: SimDuration::from_millis(100),
        // Enough rounds to cover both phases plus drain time.
        eval_rounds: ((last_op.saturating_since(SimTime::ZERO).as_micros() / 100_000) + 20) as u32,
        min_accesses: 4,
        // Optimistic exploration prior: an unmeasured destination is
        // assumed LAN-close, so observed WAN pain can beat it.
        default_latency_us: 2_000,
        ..PlaceConfig::default()
    };
    pc.active = cfg.controller_on;
    let mut ctl = PlacementActor::new(controller, pc);
    ctl.add_storage(storage_a);
    ctl.add_storage(storage_b);
    let mut tiles = Vec::new();
    let mut homes = BTreeMap::new();
    for _ in 0..cfg.tiles {
        if let Some(cluster) = ctl.add_cluster(storage_a, cfg.tile_bytes) {
            homes.insert(cluster, storage_a);
            tiles.push(cluster);
        }
    }
    ctl.set_view(1, editors_a.iter().copied());
    for &e in editors_a.iter().chain(&editors_b) {
        ctl.add_observer(e, 0.0);
    }
    sim.add_actor(controller, SimHost::new(ctl));

    // Storage hosts.
    for &node in &[storage_a, storage_b] {
        let mut host = TileHostActor::new(node, controller);
        host.set_chunk_bytes(cfg.chunk_bytes);
        host.set_quiesce(cfg.quiesce);
        if node == storage_a {
            for (i, &tile) in tiles.iter().enumerate() {
                // Distinct deterministic content per tile.
                let fill = (i as u8).wrapping_mul(37).wrapping_add(11);
                host.add_tile(tile, vec![fill; cfg.tile_bytes]);
            }
        }
        sim.add_actor(node, SimHost::new(host));
    }

    // Editors: island A pans in phase 1, island B in phase 2.
    let phase_starts = [SimTime::ZERO + SimDuration::from_millis(10), phase2_start];
    for (island, editors) in [(0usize, &editors_a), (1usize, &editors_b)] {
        for (ei, &editor) in editors.iter().enumerate() {
            let mut actor = EditorActor::new(editor, controller, homes.clone());
            let start = phase_starts[island];
            // Stagger editors so their waves interleave.
            let stagger = SimDuration::from_millis(ei as u64 * 3);
            for i in 0..cfg.phase_ops {
                let cluster = tiles[(i + ei) % tiles.len()];
                actor.script(ScriptedOp {
                    at: start.saturating_since(SimTime::ZERO)
                        + stagger
                        + cfg.op_gap.mul_f64(i as f64),
                    cluster,
                    write: i % 4 == 3,
                });
            }
            sim.add_actor(editor, SimHost::new(actor));
        }
    }

    // The session view changes at the phase boundary: A departs, B joins.
    sim.inject(
        phase2_start - SimDuration::from_millis(10),
        controller,
        controller,
        PlaceWire::ViewChange {
            view_id: 2,
            members: editors_b.clone(),
        },
    );

    let scenario = RasterScenario {
        storage_a,
        storage_b,
        controller,
        editors_a,
        editors_b,
        tiles,
        phase2_start,
        last_op,
    };
    (sim, scenario)
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::sim::{ActorHandle, Until};

    #[test]
    fn controller_migrates_the_hot_tiles_to_island_b() {
        let cfg = RasterConfig::default();
        let (mut sim, sc) = collab_raster(&cfg);
        sim.run(Until::Idle);
        assert_eq!(sim.trace().dropped(), 0, "trace ring overflowed");

        let ctl = sim
            .get::<SimHost<PlacementActor>>(ActorHandle::of(sc.controller))
            .expect("controller")
            .inner();
        assert!(
            !ctl.migrations().is_empty(),
            "no migrations happened: decisions={:?}",
            ctl.decisions().len()
        );
        // Every committed migration went A -> B.
        for ev in ctl.migrations() {
            assert_eq!(ev.from, sc.storage_a);
            assert_eq!(ev.to, sc.storage_b);
        }
        // Offers re-registered at the new home.
        for ev in ctl.migrations() {
            let offer = ctl.offer_of(ev.cluster).expect("offer");
            assert_eq!(offer.node, sc.storage_b);
        }
        // The destination actually holds the migrated tiles; the source
        // redirects.
        let host_b = sim
            .get::<SimHost<TileHostActor>>(ActorHandle::of(sc.storage_b))
            .expect("host b")
            .inner();
        let host_a = sim
            .get::<SimHost<TileHostActor>>(ActorHandle::of(sc.storage_a))
            .expect("host a")
            .inner();
        for ev in ctl.migrations() {
            assert!(host_b.tile(ev.cluster).is_some(), "tile not installed");
            assert_eq!(host_a.redirect(ev.cluster), Some(sc.storage_b));
            assert!(host_a.tile(ev.cluster).is_none(), "source kept the tile");
        }
        // Placement notices reached the island-B editors.
        let notified = sc.editors_b.iter().any(|&e| {
            sim.get::<SimHost<EditorActor>>(ActorHandle::of(e))
                .is_some_and(|h| !h.inner().notices().is_empty())
        });
        assert!(notified, "no editor saw a ClusterMigrated notice");
        // Nothing was lost to the freeze: hosts never applied a frozen
        // write (quiesce on), and every refused write was retried to
        // completion.
        assert!(host_a.writes_in_freeze().is_empty());
        for &e in sc.editors_a.iter().chain(&sc.editors_b) {
            let ed = sim
                .get::<SimHost<EditorActor>>(ActorHandle::of(e))
                .expect("editor")
                .inner();
            assert_eq!(
                ed.completed() + ed.skipped(),
                cfg.phase_ops as u64,
                "editor {e} lost ops"
            );
        }
    }

    #[test]
    fn baseline_arm_never_migrates() {
        let cfg = RasterConfig {
            controller_on: false,
            ..RasterConfig::default()
        };
        let (mut sim, sc) = collab_raster(&cfg);
        sim.run(Until::Idle);
        let ctl = sim
            .get::<SimHost<PlacementActor>>(ActorHandle::of(sc.controller))
            .expect("controller")
            .inner();
        assert!(ctl.migrations().is_empty());
        assert!(ctl.decisions().is_empty());
    }
}
