//! Property tests: every [`PlaceWire`] envelope — both planes, all
//! twenty variants — survives the `odp-net` framing bit-exactly, and
//! truncated or hostile bytes always yield a typed error, never a
//! panic.

use odp_awareness::bus::{CoopEvent, CoopKind};
use odp_mgmt::model::ClusterId;
use odp_net::wire::{decode_frame, encode_frame, WireCodec, WireReader, MAX_FRAME};
use odp_place::wire::{PlaceWire, SpanObs};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_telemetry::span::SpanContext;
use proptest::prelude::*;

fn arb_span() -> impl Strategy<Value = Option<SpanContext>> {
    (any::<u8>(), any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
        |(flags, trace_id, span_id, parent)| {
            (flags & 1 != 0).then_some(SpanContext {
                trace_id,
                span_id,
                parent: (flags & 2 != 0).then_some(parent),
            })
        },
    )
}

fn arb_obs() -> impl Strategy<Value = SpanObs> {
    (
        arb_span(),
        "[a-z.0-9]{0,20}",
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(span, kind, node, opened, closed)| SpanObs {
            ctx: span.unwrap_or(SpanContext {
                trace_id: 1,
                span_id: 2,
                parent: None,
            }),
            kind,
            node: NodeId(node),
            opened: SimTime::from_micros(opened),
            closed: SimTime::from_micros(closed),
        })
}

fn arb_wire() -> impl Strategy<Value = PlaceWire> {
    (
        (0u8..20, any::<u32>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<u64>()),
        arb_span(),
        "[a-z /:-]{0,24}",
        prop::collection::vec(any::<u8>(), 0..64),
        (
            prop::collection::vec(arb_obs(), 0..4),
            prop::collection::vec((any::<u32>(), any::<u64>()), 0..6),
        ),
    )
        .prop_map(
            |((tag, node, epoch), (index, total, hash), span, text, data, (spans, accesses))| {
                let cluster = ClusterId(node ^ 5);
                let to = NodeId(node);
                match tag {
                    0 => PlaceWire::Read { cluster, span },
                    1 => PlaceWire::ReadOk { cluster },
                    2 => PlaceWire::Write {
                        cluster,
                        byte: (epoch & 0xff) as u8,
                        span,
                    },
                    3 => PlaceWire::WriteOk { cluster },
                    4 => PlaceWire::WriteRefused { cluster },
                    5 => PlaceWire::Moved { cluster, to },
                    6 => PlaceWire::Stats { spans, accesses },
                    7 => PlaceWire::HomeUpdate { cluster, node: to },
                    8 => PlaceWire::ViewChange {
                        view_id: epoch,
                        members: accesses.iter().map(|&(n, _)| NodeId(n)).collect(),
                    },
                    9 => PlaceWire::Notice(CoopEvent::broadcast(
                        to,
                        text,
                        SimTime::from_micros(epoch),
                        CoopKind::ClusterMigrated {
                            from: NodeId(node),
                            to: NodeId(node ^ 1),
                        },
                    )),
                    10 => PlaceWire::Freeze { cluster, epoch, to },
                    11 => PlaceWire::Chunk {
                        cluster,
                        epoch,
                        index,
                        total,
                        data,
                    },
                    12 => PlaceWire::ChunkAck {
                        cluster,
                        epoch,
                        index,
                    },
                    13 => PlaceWire::TransferDone {
                        cluster,
                        epoch,
                        hash,
                    },
                    14 => PlaceWire::TransferFailed {
                        cluster,
                        epoch,
                        reason: text,
                    },
                    15 => PlaceWire::Commit {
                        cluster,
                        epoch,
                        hash,
                    },
                    16 => PlaceWire::Installed { cluster, epoch },
                    17 => PlaceWire::InstallFailed {
                        cluster,
                        epoch,
                        reason: text,
                    },
                    18 => PlaceWire::Release { cluster, epoch, to },
                    _ => PlaceWire::Abort { cluster, epoch },
                }
            },
        )
}

proptest! {
    /// Every envelope of both planes round-trips bit-exactly through
    /// the live transport's framing.
    #[test]
    fn every_envelope_roundtrips(wire in arb_wire()) {
        let bytes = encode_frame(&wire, MAX_FRAME).expect("encodes");
        let (back, used): (PlaceWire, usize) =
            decode_frame(&bytes, MAX_FRAME).expect("decodes");
        prop_assert_eq!(back, wire);
        prop_assert_eq!(used, bytes.len());
    }

    /// Truncating a valid envelope anywhere is a typed error.
    #[test]
    fn truncation_never_panics(wire in arb_wire()) {
        let mut body = Vec::new();
        wire.encode(&mut body);
        for cut in 0..body.len() {
            prop_assert!(
                WireReader::new(&body[..cut]).finish::<PlaceWire>().is_err(),
                "prefix of {} bytes decoded", cut
            );
        }
    }

    /// Arbitrary bytes never panic the decoder.
    #[test]
    fn hostile_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = WireReader::new(&bytes).finish::<PlaceWire>();
        let _ = WireReader::new(&bytes).finish::<SpanObs>();
        let _ = decode_frame::<PlaceWire>(&bytes, MAX_FRAME);
    }
}
