//! Backend-parametrised failure suite: the destination host dies
//! mid-transfer and the migration must abort cleanly, leaving the
//! cluster fully readable (and writable) at its old home.
//!
//! - **sim** — the full closed loop runs the `collab_raster` scenario;
//!   a scheduled network change disconnects storage B while the
//!   controller is still migrating the phase-2 tiles. Every epoch that
//!   started after the cut must end `Aborted`, and every aborted tile
//!   must still be resident and unfrozen at storage A.
//! - **tcp** — the migration plane runs over real sockets; the
//!   destination process is stopped right after the transfer starts.
//!   The source's failure detector reports the peer down, the transfer
//!   fails, the scripted controller aborts, and a follow-up read at
//!   the old home is served.

use std::collections::BTreeMap;

use odp_mgmt::model::ClusterId;
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_net::sim_host::SimHost;
use odp_net::tcp::{TcpConfig, TcpNode};
use odp_place::controller::{EpochOutcome, PlacementActor};
use odp_place::host::TileHostActor;
use odp_place::scenario::{collab_raster, RasterConfig};
use odp_place::wire::PlaceWire;
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::prelude::*;

// ------------------------------------------------------------------- sim

#[test]
fn destination_dies_mid_transfer_on_the_sim_backend() {
    let cfg = RasterConfig::default();
    let (mut sim, sc) = collab_raster(&cfg);
    // Storage B drops off the network while phase-2 migrations are
    // still in progress (the first usually commits around 300 ms after
    // the phase starts; seven more are queued behind it).
    let cut = sc.phase2_start + SimDuration::from_millis(500);
    sim.schedule_net_change(cut, move |net| {
        net.set_connectivity(NodeId(1), Connectivity::Disconnected);
    });
    sim.run(Until::Idle);
    assert_eq!(sim.trace().dropped(), 0, "trace ring overflowed");

    let ctl = sim
        .get::<SimHost<PlacementActor>>(ActorHandle::of(sc.controller))
        .expect("controller")
        .inner();
    let host_a = sim
        .get::<SimHost<TileHostActor>>(ActorHandle::of(sc.storage_a))
        .expect("host a")
        .inner();

    // The loop kept trying after the cut, so at least one epoch aborted;
    // and with 500 ms of healthy phase 2 at least one committed first.
    let aborted: Vec<_> = ctl
        .epochs()
        .iter()
        .filter(|e| matches!(e.ended, Some((_, EpochOutcome::Aborted))))
        .collect();
    let committed: Vec<_> = ctl
        .epochs()
        .iter()
        .filter(|e| matches!(e.ended, Some((_, EpochOutcome::Committed))))
        .collect();
    assert!(!aborted.is_empty(), "no epoch aborted: {:?}", ctl.epochs());
    assert!(
        !committed.is_empty(),
        "no epoch committed before the cut: {:?}",
        ctl.epochs()
    );
    // No epoch is left dangling once the sim is idle.
    for e in ctl.epochs() {
        assert!(e.ended.is_some(), "dangling epoch: {e:?}");
    }
    // Every epoch that *started* after the cut aborted.
    for e in ctl.epochs() {
        if e.started >= cut {
            assert!(
                matches!(e.ended, Some((_, EpochOutcome::Aborted))),
                "epoch started after the cut did not abort: {e:?}"
            );
        }
    }
    // Aborted tiles fell back: still resident at A, unfrozen, with the
    // authoritative home unchanged (unless a later epoch committed it,
    // which cannot happen after the cut).
    for e in &aborted {
        assert!(
            host_a.tile(e.cluster).is_some(),
            "aborted tile {:?} lost from the old home",
            e.cluster
        );
        assert!(!host_a.is_frozen(e.cluster));
        assert_eq!(ctl.home_of(e.cluster), Some(sc.storage_a));
        assert_eq!(
            ctl.offer_of(e.cluster).map(|o| o.node),
            Some(sc.storage_a),
            "aborted tile's offer was rehomed"
        );
    }
    // Committed tiles really did move before the cut.
    for e in &committed {
        assert!(host_a.tile(e.cluster).is_none());
        assert_eq!(ctl.home_of(e.cluster), Some(sc.storage_b));
    }
}

// ------------------------------------------------------------------- tcp

/// A scripted controller for the TCP half: freeze one cluster towards
/// the destination, abort on failure, then prove the old home still
/// serves reads.
#[derive(Debug)]
struct ScriptedController {
    source: NodeId,
    destination: NodeId,
    cluster: ClusterId,
    started: bool,
    transfer_failed: bool,
    read_ok: bool,
}

impl ScriptedController {
    fn new(source: NodeId, destination: NodeId, cluster: ClusterId) -> Self {
        ScriptedController {
            source,
            destination,
            cluster,
            started: false,
            transfer_failed: false,
            read_ok: false,
        }
    }
}

impl TransportActor<PlaceWire> for ScriptedController {
    fn on_start(&mut self, ctx: &mut dyn NetCtx<PlaceWire>) {
        // Give the mesh a moment to connect, then freeze. (The session
        // layer treats peers as alive from first contact, so there is
        // no peer-up edge to wait for on a fresh mesh.)
        ctx.set_timer(SimDuration::from_millis(150), 1);
    }

    fn on_timer(
        &mut self,
        ctx: &mut dyn NetCtx<PlaceWire>,
        _timer: odp_sim::actor::TimerId,
        _tag: u64,
    ) {
        if !self.started {
            self.started = true;
            ctx.send(
                self.source,
                PlaceWire::Freeze {
                    cluster: self.cluster,
                    epoch: 1,
                    to: self.destination,
                },
            );
        }
    }

    fn on_message(&mut self, ctx: &mut dyn NetCtx<PlaceWire>, _from: NodeId, msg: PlaceWire) {
        match msg {
            PlaceWire::TransferFailed { cluster, epoch, .. } => {
                self.transfer_failed = true;
                ctx.send(self.source, PlaceWire::Abort { cluster, epoch });
                // The fallback guarantee: the old home still serves.
                ctx.send(
                    self.source,
                    PlaceWire::Read {
                        cluster,
                        span: None,
                    },
                );
            }
            PlaceWire::ReadOk { .. } => {
                self.read_ok = true;
            }
            _ => {}
        }
    }
}

fn settle(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

#[test]
fn destination_dies_mid_transfer_on_the_tcp_backend() {
    const SOURCE: NodeId = NodeId(0);
    const DEST: NodeId = NodeId(1);
    const CTL: NodeId = NodeId(2);
    const TILE: ClusterId = ClusterId(1);

    let cfg = TcpConfig::default();
    let mut nodes: BTreeMap<NodeId, TcpNode> = [SOURCE, DEST, CTL]
        .iter()
        .map(|&id| (id, TcpNode::bind(id, cfg.clone()).expect("bind")))
        .collect();
    let addrs: BTreeMap<NodeId, std::net::SocketAddr> = nodes
        .iter()
        .map(|(&id, n)| (id, n.local_addr().expect("addr")))
        .collect();
    for node in nodes.values_mut() {
        node.set_peers(addrs.clone());
    }

    // A big tile in small chunks: the stop-and-wait transfer takes long
    // enough that stopping the destination lands mid-stream.
    let mut source = TileHostActor::new(SOURCE, CTL);
    source.add_tile(TILE, vec![0xAB; 2 * 1024 * 1024]);
    source.set_chunk_bytes(2 * 1024);
    let dest = TileHostActor::new(DEST, CTL);

    let dest_node = nodes.remove(&DEST).expect("dest node");
    let source_handle = nodes
        .remove(&SOURCE)
        .expect("source node")
        .spawn::<PlaceWire, _>(source);
    let dest_handle = dest_node.spawn::<PlaceWire, _>(dest);
    let ctl_handle = nodes
        .remove(&CTL)
        .expect("ctl node")
        .spawn::<PlaceWire, _>(ScriptedController::new(SOURCE, DEST, TILE));

    // Let the freeze land and the first chunks flow, then crash the
    // destination mid-transfer.
    settle(300);
    let (dest_actor, _) = dest_handle.stop().expect("stop dest");
    assert!(
        dest_actor.installs().is_empty(),
        "destination installed before dying?"
    );

    // Source's failure detector declares the peer down, the transfer
    // fails, the controller aborts and re-reads from the old home.
    settle(800);

    let (ctl_actor, _) = ctl_handle.stop().expect("stop ctl");
    let (source_actor, _) = source_handle.stop().expect("stop source");

    assert!(ctl_actor.started, "controller never issued the freeze");
    assert!(
        ctl_actor.transfer_failed,
        "source never reported the dead destination"
    );
    assert!(ctl_actor.read_ok, "old home did not serve after the abort");
    assert!(!source_actor.is_frozen(TILE));
    assert_eq!(
        source_actor.tile(TILE).map(<[u8]>::len),
        Some(2 * 1024 * 1024),
        "source lost the tile"
    );
    let last = source_actor.freeze_log().last().expect("freeze logged");
    assert_eq!(last.committed, Some(false), "freeze did not end aborted");
}
