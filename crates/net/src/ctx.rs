//! The backend-neutral capability handle actors program against.
//!
//! [`NetCtx`] is the dyn-compatible intersection of what a protocol
//! actor may ask of its host: the clock, its identity, its seeded RNG,
//! framed sends, timers, metrics and trace. `odp_sim::actor::Ctx`
//! implements it directly (every method is a 1:1 forward, so a ported
//! actor's sim behaviour — including its RNG draw order and trace
//! stream — is byte-for-byte unchanged), and the TCP driver implements
//! it over its own wall-clock state.

use odp_fabric::SpanCarrier;
use odp_sim::actor::{Ctx, TimerId};
use odp_sim::metrics::MetricsRegistry;
use odp_sim::net::NodeId;
use odp_sim::rng::DetRng;
use odp_sim::time::{SimDuration, SimTime};

/// What a transport-hosted actor can do, independent of backend.
///
/// The trait is deliberately dyn-compatible (concrete `&str`/`String`
/// parameters, no generics) so actor handlers take
/// `&mut dyn NetCtx<M>` and compile once for all backends.
pub trait NetCtx<M> {
    /// The current time: simulated time on the sim backend, elapsed
    /// wall time since node start on the TCP backend.
    fn now(&self) -> SimTime;

    /// This actor's node id.
    fn id(&self) -> NodeId;

    /// This actor's private deterministic RNG (seeded per node on both
    /// backends).
    fn rng(&mut self) -> &mut DetRng;

    /// Sends `msg` to `to` with the backend's default accounting size.
    fn send(&mut self, to: NodeId, msg: M);

    /// Sends `msg` to `to` accounting for `bytes` on the wire. The sim
    /// backend feeds its bandwidth model with it; the TCP backend
    /// ignores the hint (real frames have real sizes).
    fn send_sized(&mut self, to: NodeId, msg: M, bytes: usize);

    /// Schedules [`TransportActor::on_timer`](crate::actor::TransportActor::on_timer)
    /// after `delay` with `tag`.
    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId;

    /// Cancels a pending timer (firing after cancellation is
    /// suppressed; cancelling a fired timer is a no-op).
    fn cancel_timer(&mut self, id: TimerId);

    /// The host's metrics registry.
    fn metrics(&mut self) -> &mut MetricsRegistry;

    /// Records a labelled trace event attributed to this actor.
    fn trace(&mut self, label: &str, data: String);

    /// Records a telemetry span opening into the host's binary span
    /// log (the allocation-free fast path; see
    /// [`odp_fabric::SpanLog`]).
    fn span_open(&mut self, span: SpanCarrier, kind: &str);

    /// Records a telemetry span closing into the host's binary span log.
    fn span_close(&mut self, span: SpanCarrier);
}

impl<M> NetCtx<M> for Ctx<'_, M> {
    fn now(&self) -> SimTime {
        Ctx::now(self)
    }

    fn id(&self) -> NodeId {
        Ctx::id(self)
    }

    fn rng(&mut self) -> &mut DetRng {
        Ctx::rng(self)
    }

    fn send(&mut self, to: NodeId, msg: M) {
        Ctx::send(self, to, msg);
    }

    fn send_sized(&mut self, to: NodeId, msg: M, bytes: usize) {
        Ctx::send_sized(self, to, msg, bytes);
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        Ctx::set_timer(self, delay, tag)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        Ctx::cancel_timer(self, id);
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        Ctx::metrics(self)
    }

    fn trace(&mut self, label: &str, data: String) {
        Ctx::trace(self, label, data);
    }

    fn span_open(&mut self, span: SpanCarrier, kind: &str) {
        Ctx::span_open(self, span, kind);
    }

    fn span_close(&mut self, span: SpanCarrier) {
        Ctx::span_close(self, span);
    }
}
