//! The hand-rolled binary wire codec and length-prefixed framing.
//!
//! The workspace builds offline (the vendored `serde` is an API stub
//! with no real serializer behind it), so the wire format is a small
//! explicit binary encoding: fixed-width big-endian integers, IEEE-754
//! bit-pattern floats, length-prefixed strings and collections, and a
//! `u32` discriminant per enum variant. Every decoder is total — any
//! input, however truncated or hostile, yields a typed
//! [`NetError`](crate::NetError), never a panic — which the proptest
//! suites in the owning crates pin down per envelope type.
//!
//! Framing is `[len: u32 BE][body: len bytes]` with a hard cap checked
//! on *both* sides: encoders refuse to produce an oversized frame and
//! decoders refuse to believe an oversized header (so a corrupt length
//! can neither allocate unbounded memory nor stall the stream).

use std::collections::{BTreeMap, BTreeSet};

use odp_fabric::Payload;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use crate::error::NetError;

/// Default frame-body cap: 1 MiB, far above any protocol envelope in
/// the workspace but small enough that a corrupted length prefix cannot
/// provoke a multi-gigabyte allocation.
pub const MAX_FRAME: usize = 1 << 20;

/// A bounds-checked cursor over a received byte buffer.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes or reports truncation.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(NetError::Truncated {
                needed: n,
                have: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Decodes a `T`, then requires the buffer to be fully consumed.
    pub fn finish<T: WireCodec>(mut self) -> Result<T, NetError> {
        let value = T::decode(&mut self)?;
        if self.remaining() > 0 {
            return Err(NetError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(value)
    }
}

/// A value with a self-describing binary encoding.
///
/// Implementations live in the crate that owns the type (the trait is
/// public precisely so `odp-groupcomm` can encode `GcMsg` and
/// `odp-awareness` can encode `BusWire` without this crate knowing
/// either). Encoding is infallible (it writes to a growable buffer;
/// size limits are enforced at the framing layer); decoding is total.
pub trait WireCodec: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Reads one value from the cursor.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError>;
}

/// Encodes `value` as one length-prefixed frame, enforcing `max_body`.
pub fn encode_frame<T: WireCodec>(value: &T, max_body: usize) -> Result<Vec<u8>, NetError> {
    let mut body = Vec::new();
    value.encode(&mut body);
    if body.len() > max_body {
        return Err(NetError::FrameTooLarge {
            len: body.len(),
            max: max_body,
        });
    }
    let mut frame = Vec::with_capacity(4 + body.len());
    frame.extend_from_slice(&(body.len() as u32).to_be_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

/// Decodes one frame from the front of `buf`.
///
/// Returns the value and the total bytes consumed (header + body), or
/// `Truncated` when the buffer does not yet hold a whole frame (the
/// stream reader's signal to keep reading), or `FrameTooLarge` when the
/// header itself is inadmissible (the stream reader's signal to drop
/// the connection).
pub fn decode_frame<T: WireCodec>(buf: &[u8], max_body: usize) -> Result<(T, usize), NetError> {
    if buf.len() < 4 {
        return Err(NetError::Truncated {
            needed: 4,
            have: buf.len(),
        });
    }
    let len = u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > max_body {
        return Err(NetError::FrameTooLarge { len, max: max_body });
    }
    if buf.len() < 4 + len {
        return Err(NetError::Truncated {
            needed: 4 + len,
            have: buf.len(),
        });
    }
    let value = WireReader::new(&buf[4..4 + len]).finish()?;
    Ok((value, 4 + len))
}

macro_rules! impl_wire_uint {
    ($($ty:ty),*) => {$(
        impl WireCodec for $ty {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_be_bytes());
            }
            fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
                let bytes = r.take(std::mem::size_of::<$ty>())?;
                let mut fixed = [0u8; std::mem::size_of::<$ty>()];
                fixed.copy_from_slice(bytes);
                Ok(<$ty>::from_be_bytes(fixed))
            }
        }
    )*};
}

impl_wire_uint!(u8, u16, u32, u64, i64);

impl WireCodec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(NetError::BadTag {
                what: "bool",
                tag: u32::from(tag),
            }),
        }
    }
}

impl WireCodec for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_be_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(f64::from_bits(u64::decode(r)?))
    }
}

impl WireCodec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        let bytes = r.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| NetError::BadUtf8)
    }
}

impl<T: WireCodec> WireCodec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(NetError::BadTag {
                what: "Option",
                tag: u32::from(tag),
            }),
        }
    }
}

/// Guards a decoded collection length against the bytes actually
/// present: every element costs at least one byte on the wire, so a
/// length prefix exceeding `remaining` is lying and must not reach an
/// allocator.
fn check_len(len: usize, r: &WireReader<'_>) -> Result<(), NetError> {
    if len > r.remaining() {
        return Err(NetError::Truncated {
            needed: len,
            have: r.remaining(),
        });
    }
    Ok(())
}

impl<T: WireCodec> WireCodec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        check_len(len, r)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<K: WireCodec + Ord, V: WireCodec> WireCodec for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for (key, value) in self {
            key.encode(out);
            value.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        check_len(len, r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(r)?;
            let value = V::decode(r)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<T: WireCodec + Ord> WireCodec for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let len = u32::decode(r)? as usize;
        check_len(len, r)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(r)?);
        }
        Ok(set)
    }
}

impl<A: WireCodec, B: WireCodec> WireCodec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl WireCodec for NodeId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(NodeId(u32::decode(r)?))
    }
}

impl WireCodec for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(SimTime::from_micros(u64::decode(r)?))
    }
}

impl WireCodec for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_micros().encode(out);
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        Ok(SimDuration::from_micros(u64::decode(r)?))
    }
}

/// [`Payload`] is *transparent* on the wire: its bytes are appended
/// verbatim (no length prefix) and decoding consumes every remaining
/// byte. That makes `encode(payload_of(&v))` byte-identical to
/// `encode(&v)` — the zero-copy fabric path produces the same frames
/// as the typed path, which the differential suite proves per envelope.
///
/// The transparency is sound **only when the payload is the trailing
/// field** of its envelope (it is, in every payload-carrying `GcMsg`
/// variant); a mid-envelope `Payload` would swallow its successors.
/// Envelopes needing an interior byte field should keep `Vec<u8>`
/// (length-prefixed) instead.
impl WireCodec for Payload {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(self.as_slice());
    }
    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        let rest = r.take(r.remaining())?;
        Ok(Payload::from_slice(rest))
    }
}

/// Encodes `value` into a fresh [`Payload`] — the bridge from a typed
/// envelope onto the byte fabric. The resulting payload's bytes *are*
/// `value`'s wire encoding, so re-encoding the payload reproduces the
/// typed frame bit-for-bit.
pub fn payload_of<T: WireCodec>(value: &T) -> Payload {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    Payload::from_vec(buf)
}

/// Decodes a typed value back out of a fabric [`Payload`], requiring
/// the payload to hold exactly one `T` encoding.
pub fn payload_as<T: WireCodec>(payload: &Payload) -> Result<T, NetError> {
    WireReader::new(payload.as_slice()).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_consumed_length() {
        let frame = encode_frame(&"hello".to_string(), MAX_FRAME).expect("encode");
        let (back, used): (String, usize) = decode_frame(&frame, MAX_FRAME).expect("decode");
        assert_eq!(back, "hello");
        assert_eq!(used, frame.len());
    }

    #[test]
    fn oversized_header_is_rejected_not_allocated() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_be_bytes());
        frame.extend_from_slice(&[0u8; 16]);
        let err = decode_frame::<String>(&frame, MAX_FRAME).unwrap_err();
        assert!(matches!(err, NetError::FrameTooLarge { .. }), "{err}");
    }

    #[test]
    fn encoder_refuses_oversized_bodies() {
        let big = "x".repeat(64);
        let err = encode_frame(&big, 16).unwrap_err();
        assert!(
            matches!(err, NetError::FrameTooLarge { len: 68, max: 16 }),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_an_error_at_every_prefix() {
        let value: Vec<(NodeId, f64)> = vec![(NodeId(1), 0.5), (NodeId(9), 1.0)];
        let mut body = Vec::new();
        value.encode(&mut body);
        for cut in 0..body.len() {
            let err = WireReader::new(&body[..cut]).finish::<Vec<(NodeId, f64)>>();
            assert!(err.is_err(), "prefix of {cut} bytes decoded");
        }
        let ok = WireReader::new(&body)
            .finish::<Vec<(NodeId, f64)>>()
            .expect("full");
        assert_eq!(ok, value);
    }

    #[test]
    fn lying_collection_length_is_truncation_not_oom() {
        let mut body = Vec::new();
        (u32::MAX).encode(&mut body);
        let err = WireReader::new(&body).finish::<Vec<u64>>().unwrap_err();
        assert!(matches!(err, NetError::Truncated { .. }), "{err}");
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Vec::new();
        42u64.encode(&mut body);
        body.push(0xFF);
        let err = WireReader::new(&body).finish::<u64>().unwrap_err();
        assert_eq!(err, NetError::TrailingBytes { extra: 1 });
    }
}
