//! The deterministic backend: hosting a [`TransportActor`] on the
//! `odp_sim` scheduler.
//!
//! [`SimHost`] is a zero-state newtype whose `Actor` impl forwards each
//! sim callback to the wrapped [`TransportActor`] through the
//! `NetCtx`-for-`Ctx` blanket in [`crate::ctx`]. Because every `NetCtx`
//! method is a direct 1:1 forward onto `Ctx`, a scenario built from
//! `SimHost`-wrapped actors produces the *same* event schedule, RNG
//! draw order, metrics and trace stream as the un-wrapped actor did —
//! the bit-identity the transport refactor promises (and
//! `crates/net/tests/sim_identical.rs` pins down for the awareness
//! fan-out scenario).

use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;

use crate::actor::TransportActor;

/// Hosts a [`TransportActor`] as a plain `odp_sim` actor.
///
/// ```
/// use odp_net::prelude::*;
/// use odp_sim::prelude::*;
///
/// struct Echo;
/// impl TransportActor<String> for Echo {
///     fn on_message(&mut self, ctx: &mut dyn NetCtx<String>, from: NodeId, msg: String) {
///         ctx.send(from, msg);
///     }
/// }
///
/// let mut sim = SimBuilder::new(1).build();
/// sim.add_actor(NodeId(0), SimHost::new(Echo));
/// ```
pub struct SimHost<A> {
    inner: A,
}

impl<A> SimHost<A> {
    /// Wraps `actor` for the sim backend.
    pub fn new(actor: A) -> Self {
        SimHost { inner: actor }
    }

    /// The hosted actor (post-run inspection).
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the hosted actor.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Unwraps the hosted actor.
    pub fn into_inner(self) -> A {
        self.inner
    }
}

impl<M: 'static, A: TransportActor<M>> Actor<M> for SimHost<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        self.inner.on_start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M) {
        self.inner.on_message(ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, timer: TimerId, tag: u64) {
        self.inner.on_timer(ctx, timer, tag);
    }
}
