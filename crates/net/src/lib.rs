//! The pluggable transport layer for the CSCW/ODP middleware.
//!
//! Blair & Rodden's argument is that cooperation semantics (group
//! multicast, awareness distribution, trading) must ride an *open*
//! communication substrate, not a bespoke one. This crate makes that
//! separation concrete: protocol actors are written once against the
//! backend-neutral [`ctx::NetCtx`] capability trait and the
//! [`actor::TransportActor`] callback trait, then hosted on either
//!
//! * the **sim backend** ([`sim_host`]) — a zero-cost adapter onto
//!   `odp_sim`'s deterministic discrete-event scheduler, preserving
//!   byte-for-byte reproducible traces; or
//! * the **TCP backend** ([`tcp`]) — a threaded production driver on
//!   `std::net` loopback/LAN sockets with length-prefixed framing
//!   ([`wire`]), per-peer sequence numbers, heartbeat failure
//!   detection, bounded-buffer reconnect replay and crash forwarding
//!   (all implemented sans-IO in [`session`]).
//!
//! The split mirrors the session layer of the sans-IO protocol engines
//! elsewhere in the workspace: everything that can be pure state
//! machine is ([`session::SessionLayer`]), and the two thin drivers
//! differ only in where bytes, clocks and wake-ups come from.

pub mod actor;
pub mod ctx;
pub mod error;
pub mod session;
pub mod sim_host;
pub mod tcp;
pub mod wire;

pub use actor::TransportActor;
pub use ctx::NetCtx;
pub use error::NetError;
pub use session::{Frame, PeerEvent, SessionConfig, SessionLayer, SessionStats, SessionStep};
pub use sim_host::SimHost;
pub use tcp::{TcpConfig, TcpHandle, TcpNode, TcpReport};
pub use wire::{
    decode_frame, encode_frame, payload_as, payload_of, WireCodec, WireReader, MAX_FRAME,
};

/// Everything an actor port or a backend driver needs.
pub mod prelude {
    pub use crate::actor::TransportActor;
    pub use crate::ctx::NetCtx;
    pub use crate::error::NetError;
    pub use crate::sim_host::SimHost;
    pub use crate::wire::{WireCodec, WireReader};
}
