//! The backend-neutral actor callback surface.

use odp_sim::actor::TimerId;
use odp_sim::net::NodeId;

use crate::ctx::NetCtx;

/// A protocol participant that can be hosted on any transport backend.
///
/// The callbacks mirror `odp_sim::actor::Actor` but take the
/// dyn-compatible [`NetCtx`] capability handle, plus two membership
/// callbacks only live transports can raise: the sim backend models
/// connectivity inside its network (actors observe failures through
/// their protocol engines), while the TCP backend detects peers by
/// heartbeat and reports transitions here.
pub trait TransportActor<M> {
    /// Called once when the host starts, before any message.
    fn on_start(&mut self, ctx: &mut dyn NetCtx<M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, ctx: &mut dyn NetCtx<M>, from: NodeId, msg: M);

    /// Called when a timer set through [`NetCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut dyn NetCtx<M>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }

    /// A live transport established (or re-established) a session with
    /// `peer`. Never raised by the sim backend.
    fn on_peer_up(&mut self, ctx: &mut dyn NetCtx<M>, peer: NodeId) {
        let _ = (ctx, peer);
    }

    /// A live transport declared `peer` failed (heartbeat timeout).
    /// Never raised by the sim backend.
    fn on_peer_down(&mut self, ctx: &mut dyn NetCtx<M>, peer: NodeId) {
        let _ = (ctx, peer);
    }
}
