//! Typed transport errors.
//!
//! Every failure a codec or backend can hit surfaces as a [`NetError`]
//! value — a malformed or hostile frame must never panic a node.

use std::fmt;

use odp_sim::net::NodeId;

/// A transport-layer failure: wire decoding, framing or socket I/O.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes that remained.
        have: usize,
    },
    /// A frame header announced a body longer than the configured cap.
    FrameTooLarge {
        /// Announced body length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// A value decoded cleanly but left unconsumed bytes in its frame.
    TrailingBytes {
        /// Leftover byte count.
        extra: usize,
    },
    /// An enum discriminant outside the known range.
    BadTag {
        /// The type being decoded.
        what: &'static str,
        /// The offending discriminant.
        tag: u32,
    },
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
    /// A decoded value violated a domain constraint (e.g. a
    /// non-finite float where a weight was expected).
    BadValue {
        /// What was being decoded.
        what: &'static str,
    },
    /// Socket-level failure, stringified (`std::io::Error` is neither
    /// `Clone` nor `PartialEq`, and callers only branch on the kind of
    /// *protocol* error, never on errno).
    Io(String),
    /// A send or connect addressed a node the transport has no route
    /// for.
    UnknownPeer(NodeId),
    /// The driver thread exited (panicked or was already stopped) while
    /// a handle operation waited on it.
    DriverGone,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { needed, have } => {
                write!(
                    f,
                    "truncated frame: needed {needed} more bytes, have {have}"
                )
            }
            NetError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte cap")
            }
            NetError::TrailingBytes { extra } => {
                write!(f, "frame decoded with {extra} trailing bytes")
            }
            NetError::BadTag { what, tag } => write!(f, "unknown {what} discriminant {tag}"),
            NetError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            NetError::BadValue { what } => write!(f, "malformed {what} value"),
            NetError::Io(err) => write!(f, "transport I/O: {err}"),
            NetError::UnknownPeer(node) => write!(f, "no route to {node}"),
            NetError::DriverGone => write!(f, "transport driver thread is gone"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(err: std::io::Error) -> Self {
        NetError::Io(err.to_string())
    }
}
