//! The sans-IO link/session layer of the live transport.
//!
//! Everything the TCP backend does that is *protocol* rather than I/O
//! lives here as a pure state machine, in the style of the workspace's
//! other sans-IO engines: callers feed in frames, sends and clock
//! ticks; the layer hands back frames to transmit, messages to deliver
//! and peer up/down events. That makes the reliability mechanics —
//! per-peer sequence numbers, reconnect replay from bounded retransmit
//! buffers, heartbeat failure detection, and survivors forwarding a
//! crashed origin's broadcasts — testable deterministically on the
//! simulator (the explorer's transport-fidelity check hosts exactly
//! this struct on sim actors) while the threaded driver stays a thin
//! byte shuffle.
//!
//! ## Sequencing model
//!
//! Each ordered frame to a peer carries a per-link sequence number
//! (`seq`, starting at 1). Senders keep the last
//! [`SessionConfig::retransmit_buffer`] frames per link; when a peer
//! reconnects its [`Frame::Hello`] announces the next `seq` it expects
//! and the sender replays everything buffered from there. A receiver
//! seeing `seq` jump forward records a **gap** (the buffer was too
//! short — data is lost and the transport-fidelity invariant fails); a
//! `seq` at or below the expected one is a **replay duplicate** and is
//! dropped silently (that is the mechanism working, not a fault).
//!
//! ## Broadcast forwarding
//!
//! Broadcasts additionally carry `(origin, bseq)` — a per-origin
//! broadcast sequence number — and every receiver retains the last
//! [`SessionConfig::forward_buffer`] broadcasts per origin. When
//! failure detection declares a peer down, survivors re-send the dead
//! origin's retained broadcasts to every live peer as [`Frame::Fwd`];
//! `(origin, bseq)` dedup makes delivery exactly-once however many
//! survivors forward the same message.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use crate::error::NetError;
use crate::wire::{WireCodec, WireReader};

/// Tuning knobs for one node's session layer.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// How often [`SessionLayer::on_tick`] emits heartbeats per peer.
    pub heartbeat_every: SimDuration,
    /// Silence after which a peer is declared down. Should cover
    /// several heartbeats plus scheduling jitter.
    pub fail_after: SimDuration,
    /// Ordered frames retained per link for reconnect replay.
    pub retransmit_buffer: usize,
    /// Broadcasts retained per origin for crash forwarding.
    pub forward_buffer: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            heartbeat_every: SimDuration::from_millis(25),
            fail_after: SimDuration::from_millis(100),
            retransmit_buffer: 64,
            forward_buffer: 64,
        }
    }
}

/// One link-layer frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame<M> {
    /// Session (re-)establishment: `from` identifies the sender and
    /// `expected` is the next per-link `seq` it expects from the
    /// receiver, prompting replay of anything newer in the buffer.
    Hello {
        /// The connecting node.
        from: NodeId,
        /// Next `seq` the connecting node expects on this link.
        expected: u64,
    },
    /// Liveness beacon; unsequenced, never replayed.
    Heartbeat,
    /// A sequenced unicast payload.
    Data {
        /// Per-link sequence number.
        seq: u64,
        /// The payload.
        msg: M,
    },
    /// A sequenced broadcast payload.
    Bcast {
        /// Per-link sequence number.
        seq: u64,
        /// The broadcast's originator.
        origin: NodeId,
        /// The originator's broadcast sequence number.
        bseq: u64,
        /// The payload.
        msg: M,
    },
    /// A broadcast re-sent by a survivor on behalf of a dead origin.
    Fwd {
        /// Per-link sequence number.
        seq: u64,
        /// The dead originator.
        origin: NodeId,
        /// The originator's broadcast sequence number.
        bseq: u64,
        /// The payload.
        msg: M,
    },
}

/// A peer liveness transition reported by the session layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// A session with the peer is (re-)established.
    Up(NodeId),
    /// The peer missed heartbeats past the failure deadline.
    Down(NodeId),
}

/// Counters the transport-fidelity invariant reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sequence numbers skipped on receive: data irrecoverably lost to
    /// a too-short retransmit buffer. Must be zero on a healthy link.
    pub gaps: u64,
    /// Frames dropped as replay duplicates (`seq` already seen). This
    /// is the replay mechanism working, not a failure.
    pub link_duplicates: u64,
    /// Broadcast payloads dropped by `(origin, bseq)` dedup. Nonzero is
    /// normal whenever forwarding overlaps the original.
    pub bcast_duplicates: u64,
    /// Broadcast payloads forwarded on behalf of dead origins.
    pub forwarded: u64,
    /// Payloads delivered to the application.
    pub delivered: u64,
    /// Ordered frames evicted from a retransmit buffer before any
    /// reconnect consumed them (a replay after this may gap).
    pub evicted: u64,
}

/// What one session-layer operation wants done.
#[derive(Debug)]
pub struct SessionStep<M> {
    /// Frames to transmit, per destination.
    pub outbound: Vec<(NodeId, Frame<M>)>,
    /// Payloads to deliver to the application, tagged with the node
    /// that *originated* them (for forwarded broadcasts that is the
    /// dead origin, not the forwarding survivor).
    pub delivered: Vec<(NodeId, M)>,
    /// Liveness transitions observed during the operation.
    pub events: Vec<PeerEvent>,
}

impl<M> SessionStep<M> {
    fn empty() -> Self {
        SessionStep {
            outbound: Vec::new(),
            delivered: Vec::new(),
            events: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct PeerState<M> {
    /// Next outgoing per-link seq to assign (starts at 1).
    next_out: u64,
    /// Next incoming per-link seq expected (starts at 1).
    expected_in: u64,
    /// Retained ordered frames for reconnect replay, oldest first.
    sent: VecDeque<Frame<M>>,
    /// Last time any frame arrived from the peer.
    last_heard: SimTime,
    /// Failure-detector verdict.
    alive: bool,
}

impl<M> PeerState<M> {
    fn new(now: SimTime) -> Self {
        PeerState {
            next_out: 1,
            expected_in: 1,
            sent: VecDeque::new(),
            last_heard: now,
            alive: true,
        }
    }
}

/// The sans-IO session state machine for one node.
///
/// Generic over the payload `M`; cloning is required because replay and
/// forwarding re-send retained payloads.
#[derive(Debug)]
pub struct SessionLayer<M> {
    me: NodeId,
    cfg: SessionConfig,
    peers: BTreeMap<NodeId, PeerState<M>>,
    /// This node's own broadcast sequence counter.
    next_bseq: u64,
    /// Retained broadcasts per origin (own included), for forwarding.
    retained: BTreeMap<NodeId, VecDeque<(u64, M)>>,
    /// `(origin, bseq)` pairs already delivered (broadcast dedup).
    seen: BTreeSet<(NodeId, u64)>,
    stats: SessionStats,
    /// Fault injection for the explorer's known-bad fixture: when
    /// false, forwarded broadcasts skip `(origin, bseq)` dedup, so
    /// overlapping survivors deliver the same payload twice.
    forward_dedup: bool,
    last_beat: SimTime,
}

impl<M: Clone> SessionLayer<M> {
    /// A session layer for node `me`.
    pub fn new(me: NodeId, cfg: SessionConfig) -> Self {
        SessionLayer {
            me,
            cfg,
            peers: BTreeMap::new(),
            next_bseq: 0,
            retained: BTreeMap::new(),
            seen: BTreeSet::new(),
            stats: SessionStats::default(),
            forward_dedup: true,
            last_beat: SimTime::ZERO,
        }
    }

    /// This node's id.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Registers `peer` as a session member (idempotent).
    pub fn add_peer(&mut self, peer: NodeId, now: SimTime) {
        self.peers
            .entry(peer)
            .or_insert_with(|| PeerState::new(now));
    }

    /// The registered peers.
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.peers.keys().copied()
    }

    /// Whether the failure detector currently believes `peer` is up.
    pub fn peer_alive(&self, peer: NodeId) -> bool {
        self.peers.get(&peer).is_some_and(|p| p.alive)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Fault injection (see [`SessionLayer::forward_dedup`] field docs);
    /// production code never calls this.
    pub fn set_forward_dedup(&mut self, on: bool) {
        self.forward_dedup = on;
    }

    /// The `Hello` to transmit to `peer` when a connection to it is
    /// (re-)established.
    pub fn hello_for(&mut self, peer: NodeId, now: SimTime) -> Frame<M> {
        let state = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerState::new(now));
        Frame::Hello {
            from: self.me,
            expected: state.expected_in,
        }
    }

    fn next_seq(&mut self, peer: NodeId, now: SimTime) -> u64 {
        let state = self
            .peers
            .entry(peer)
            .or_insert_with(|| PeerState::new(now));
        let seq = state.next_out;
        state.next_out += 1;
        seq
    }

    fn retain_sent(&mut self, peer: NodeId, frame: Frame<M>) {
        let Some(state) = self.peers.get_mut(&peer) else {
            return;
        };
        state.sent.push_back(frame);
        while state.sent.len() > self.cfg.retransmit_buffer {
            state.sent.pop_front();
            self.stats.evicted += 1;
        }
    }

    /// Sends `msg` to `peer` as a sequenced unicast.
    pub fn unicast(&mut self, peer: NodeId, msg: M, now: SimTime) -> SessionStep<M> {
        let mut step = SessionStep::empty();
        let seq = self.next_seq(peer, now);
        let frame = Frame::Data { seq, msg };
        self.retain_sent(peer, frame.clone());
        step.outbound.push((peer, frame));
        step
    }

    /// Broadcasts `msg` to every registered peer, retaining it for
    /// crash forwarding.
    pub fn broadcast(&mut self, msg: M, now: SimTime) -> SessionStep<M> {
        let mut step = SessionStep::empty();
        self.next_bseq += 1;
        let bseq = self.next_bseq;
        self.retain_bcast(self.me, bseq, msg.clone());
        // Own broadcasts are "seen": a survivor forwarding one back at
        // us after our crash verdict was wrong must not self-deliver.
        self.seen.insert((self.me, bseq));
        let targets: Vec<NodeId> = self.peers.keys().copied().collect();
        for peer in targets {
            let seq = self.next_seq(peer, now);
            let frame = Frame::Bcast {
                seq,
                origin: self.me,
                bseq,
                msg: msg.clone(),
            };
            self.retain_sent(peer, frame.clone());
            step.outbound.push((peer, frame));
        }
        step
    }

    fn retain_bcast(&mut self, origin: NodeId, bseq: u64, msg: M) {
        let buf = self.retained.entry(origin).or_default();
        buf.push_back((bseq, msg));
        while buf.len() > self.cfg.forward_buffer {
            buf.pop_front();
        }
    }

    /// Admits one sequenced frame: returns whether it is fresh, and
    /// records gaps/duplicates against `stats`.
    fn admit_seq(&mut self, from: NodeId, seq: u64, now: SimTime) -> bool {
        let state = self
            .peers
            .entry(from)
            .or_insert_with(|| PeerState::new(now));
        state.last_heard = now;
        if seq < state.expected_in {
            self.stats.link_duplicates += 1;
            return false;
        }
        if seq > state.expected_in {
            self.stats.gaps += seq - state.expected_in;
        }
        state.expected_in = seq + 1;
        true
    }

    /// Delivers a broadcast-class payload if `(origin, bseq)` is fresh.
    fn deliver_bcast(
        &mut self,
        origin: NodeId,
        bseq: u64,
        msg: M,
        dedup: bool,
        step: &mut SessionStep<M>,
    ) {
        if dedup && !self.seen.insert((origin, bseq)) {
            self.stats.bcast_duplicates += 1;
            return;
        }
        if !dedup {
            // Known-bad path: still record the pair so later honest
            // receives count as duplicates, but deliver regardless.
            self.seen.insert((origin, bseq));
        }
        self.retain_bcast(origin, bseq, msg.clone());
        self.stats.delivered += 1;
        step.delivered.push((origin, msg));
    }

    /// Processes one received frame from `from`.
    pub fn on_frame(&mut self, from: NodeId, frame: Frame<M>, now: SimTime) -> SessionStep<M> {
        let mut step = SessionStep::empty();
        match frame {
            Frame::Hello {
                from: claimed,
                expected,
            } => {
                let peer = claimed;
                let state = self
                    .peers
                    .entry(peer)
                    .or_insert_with(|| PeerState::new(now));
                state.last_heard = now;
                if !state.alive {
                    state.alive = true;
                    step.events.push(PeerEvent::Up(peer));
                }
                // The peer's `expected` also tells a *fresh* session
                // (a process restarted under the same node id) where
                // its outgoing seq must resume: adopting it keeps the
                // peer from discarding the newcomer's frames as replay
                // duplicates. For a continuous session `expected` never
                // exceeds `next_out`, so this is a no-op there.
                state.next_out = state.next_out.max(expected);
                // Replay everything retained from the peer's expected
                // seq onward. Frames below it were delivered; frames
                // above the retained window are gone (the receiver will
                // record a gap).
                let replay: Vec<Frame<M>> = state
                    .sent
                    .iter()
                    .filter(|f| frame_seq(f).is_some_and(|s| s >= expected))
                    .cloned()
                    .collect();
                for f in replay {
                    step.outbound.push((peer, f));
                }
            }
            Frame::Heartbeat => {
                let state = self
                    .peers
                    .entry(from)
                    .or_insert_with(|| PeerState::new(now));
                state.last_heard = now;
                if !state.alive {
                    state.alive = true;
                    step.events.push(PeerEvent::Up(from));
                }
            }
            Frame::Data { seq, msg } => {
                if self.admit_seq(from, seq, now) {
                    self.stats.delivered += 1;
                    step.delivered.push((from, msg));
                }
            }
            Frame::Bcast {
                seq,
                origin,
                bseq,
                msg,
            } => {
                if self.admit_seq(from, seq, now) {
                    self.deliver_bcast(origin, bseq, msg, true, &mut step);
                }
            }
            Frame::Fwd {
                seq,
                origin,
                bseq,
                msg,
            } => {
                if self.admit_seq(from, seq, now) {
                    let dedup = self.forward_dedup;
                    self.deliver_bcast(origin, bseq, msg, dedup, &mut step);
                }
            }
        }
        step
    }

    /// A connection to `peer` dropped at the byte level. Not a failure
    /// verdict by itself — reconnect may beat the heartbeat deadline —
    /// but the clock on [`SessionConfig::fail_after`] is already
    /// running from the last frame heard.
    pub fn on_disconnect(&mut self, _peer: NodeId) {}

    /// Periodic maintenance: emits heartbeats, runs failure detection
    /// and triggers crash forwarding.
    pub fn on_tick(&mut self, now: SimTime) -> SessionStep<M> {
        let mut step = SessionStep::empty();
        if now.saturating_since(self.last_beat) >= self.cfg.heartbeat_every {
            self.last_beat = now;
            for (&peer, state) in &self.peers {
                if state.alive {
                    step.outbound.push((peer, Frame::Heartbeat));
                }
            }
        }
        // Failure detection.
        let newly_down: Vec<NodeId> = self
            .peers
            .iter()
            .filter(|(_, s)| s.alive && now.saturating_since(s.last_heard) >= self.cfg.fail_after)
            .map(|(&p, _)| p)
            .collect();
        for peer in newly_down {
            if let Some(state) = self.peers.get_mut(&peer) {
                state.alive = false;
            }
            step.events.push(PeerEvent::Down(peer));
            // Forward the dead origin's retained broadcasts to every
            // surviving peer; (origin, bseq) dedup collapses overlap
            // between survivors into exactly-once delivery.
            let retained: Vec<(u64, M)> = self
                .retained
                .get(&peer)
                .map(|buf| buf.iter().cloned().collect())
                .unwrap_or_default();
            let survivors: Vec<NodeId> = self
                .peers
                .iter()
                .filter(|(&p, s)| p != peer && s.alive)
                .map(|(&p, _)| p)
                .collect();
            // Failure recovery, not steady state: this loop runs only
            // when a peer is declared down, and the survivors must each
            // own the forwarded frame.
            for (bseq, msg) in retained {
                for &to in &survivors {
                    let seq = self.next_seq(to, now);
                    let frame = Frame::Fwd {
                        seq,
                        origin: peer,
                        bseq,
                        msg: msg.clone(), // odp-check: allow(hot-path-alloc)
                    };
                    self.retain_sent(to, frame.clone()); // odp-check: allow(hot-path-alloc)
                    step.outbound.push((to, frame));
                    self.stats.forwarded += 1;
                }
            }
        }
        step
    }
}

/// The per-link seq of a sequenced frame (None for Hello/Heartbeat).
fn frame_seq<M>(frame: &Frame<M>) -> Option<u64> {
    match frame {
        Frame::Data { seq, .. } | Frame::Bcast { seq, .. } | Frame::Fwd { seq, .. } => Some(*seq),
        Frame::Hello { .. } | Frame::Heartbeat => None,
    }
}

impl<M: WireCodec> WireCodec for Frame<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Frame::Hello { from, expected } => {
                0u8.encode(out);
                from.encode(out);
                expected.encode(out);
            }
            Frame::Heartbeat => 1u8.encode(out),
            Frame::Data { seq, msg } => {
                2u8.encode(out);
                seq.encode(out);
                msg.encode(out);
            }
            Frame::Bcast {
                seq,
                origin,
                bseq,
                msg,
            } => {
                3u8.encode(out);
                seq.encode(out);
                origin.encode(out);
                bseq.encode(out);
                msg.encode(out);
            }
            Frame::Fwd {
                seq,
                origin,
                bseq,
                msg,
            } => {
                4u8.encode(out);
                seq.encode(out);
                origin.encode(out);
                bseq.encode(out);
                msg.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, NetError> {
        match u8::decode(r)? {
            0 => Ok(Frame::Hello {
                from: NodeId::decode(r)?,
                expected: u64::decode(r)?,
            }),
            1 => Ok(Frame::Heartbeat),
            2 => Ok(Frame::Data {
                seq: u64::decode(r)?,
                msg: M::decode(r)?,
            }),
            3 => Ok(Frame::Bcast {
                seq: u64::decode(r)?,
                origin: NodeId::decode(r)?,
                bseq: u64::decode(r)?,
                msg: M::decode(r)?,
            }),
            4 => Ok(Frame::Fwd {
                seq: u64::decode(r)?,
                origin: NodeId::decode(r)?,
                bseq: u64::decode(r)?,
                msg: M::decode(r)?,
            }),
            tag => Err(NetError::BadTag {
                what: "Frame",
                tag: u32::from(tag),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    fn pair() -> (SessionLayer<String>, SessionLayer<String>) {
        let mut a = SessionLayer::new(NodeId(0), SessionConfig::default());
        let mut b = SessionLayer::new(NodeId(1), SessionConfig::default());
        a.add_peer(NodeId(1), SimTime::ZERO);
        b.add_peer(NodeId(0), SimTime::ZERO);
        (a, b)
    }

    /// Shovels a step's outbound frames into the right receiver,
    /// returning everything delivered.
    fn shovel(
        step: SessionStep<String>,
        from: NodeId,
        peers: &mut [(&mut SessionLayer<String>, NodeId)],
        now: SimTime,
    ) -> Vec<(NodeId, String)> {
        let mut delivered = Vec::new();
        for (to, frame) in step.outbound {
            for (layer, id) in peers.iter_mut() {
                if *id == to {
                    let sub = layer.on_frame(from, frame.clone(), now);
                    delivered.extend(sub.delivered);
                }
            }
        }
        delivered
    }

    #[test]
    fn unicast_sequences_and_delivers_in_order() {
        let (mut a, mut b) = pair();
        for i in 0..5 {
            let step = a.unicast(NodeId(1), format!("m{i}"), ms(i));
            let got = shovel(step, NodeId(0), &mut [(&mut b, NodeId(1))], ms(i));
            assert_eq!(got, vec![(NodeId(0), format!("m{i}"))]);
        }
        assert_eq!(b.stats().gaps, 0);
        assert_eq!(b.stats().delivered, 5);
    }

    #[test]
    fn reconnect_replays_from_the_expected_seq() {
        let (mut a, mut b) = pair();
        // Two frames delivered, then two lost in flight (disconnect).
        for i in 0..2 {
            let step = a.unicast(NodeId(1), format!("m{i}"), ms(i));
            shovel(step, NodeId(0), &mut [(&mut b, NodeId(1))], ms(i));
        }
        let _lost1 = a.unicast(NodeId(1), "m2".into(), ms(2));
        let _lost2 = a.unicast(NodeId(1), "m3".into(), ms(3));
        // Reconnect: b's hello says "I expect seq 3".
        let hello = b.hello_for(NodeId(0), ms(10));
        let replay = a.on_frame(NodeId(1), hello, ms(10));
        let got = shovel(replay, NodeId(0), &mut [(&mut b, NodeId(1))], ms(10));
        assert_eq!(
            got,
            vec![(NodeId(0), "m2".to_string()), (NodeId(0), "m3".to_string())]
        );
        assert_eq!(b.stats().gaps, 0, "replay closed the hole");
        assert_eq!(b.stats().link_duplicates, 0);
    }

    #[test]
    fn replay_overlap_is_dropped_as_duplicates() {
        let (mut a, mut b) = pair();
        let step = a.unicast(NodeId(1), "m0".into(), ms(0));
        shovel(step, NodeId(0), &mut [(&mut b, NodeId(1))], ms(0));
        // b's hello claims it expects seq 1 again (e.g. its ack state
        // was behind); a replays frame 1, b drops it.
        let hello = Frame::Hello {
            from: NodeId(1),
            expected: 1,
        };
        let replay = a.on_frame(NodeId(1), hello, ms(1));
        let got = shovel(replay, NodeId(0), &mut [(&mut b, NodeId(1))], ms(1));
        assert!(got.is_empty());
        assert_eq!(b.stats().link_duplicates, 1);
        assert_eq!(b.stats().delivered, 1);
    }

    #[test]
    fn overflowing_the_retransmit_buffer_gaps_on_replay() {
        let cfg = SessionConfig {
            retransmit_buffer: 2,
            ..SessionConfig::default()
        };
        let mut a = SessionLayer::new(NodeId(0), cfg.clone());
        let mut b = SessionLayer::new(NodeId(1), cfg);
        a.add_peer(NodeId(1), SimTime::ZERO);
        b.add_peer(NodeId(0), SimTime::ZERO);
        // Four frames all lost; only the last two are retained.
        for i in 0..4 {
            let _ = a.unicast(NodeId(1), format!("m{i}"), ms(i));
        }
        assert_eq!(a.stats().evicted, 2);
        let hello = b.hello_for(NodeId(0), ms(10));
        let replay = a.on_frame(NodeId(1), hello, ms(10));
        let got = shovel(replay, NodeId(0), &mut [(&mut b, NodeId(1))], ms(10));
        assert_eq!(got.len(), 2, "only the retained tail arrives");
        assert_eq!(b.stats().gaps, 2, "the evicted frames are a recorded gap");
    }

    #[test]
    fn heartbeat_silence_declares_down_and_forwards_broadcasts() {
        let cfg = SessionConfig::default();
        let mut a = SessionLayer::new(NodeId(0), cfg.clone());
        let mut b = SessionLayer::new(NodeId(1), cfg.clone());
        let mut c = SessionLayer::new(NodeId(2), cfg.clone());
        for (layer, me) in [(&mut a, 0u32), (&mut b, 1), (&mut c, 2)] {
            for peer in 0..3u32 {
                if peer != me {
                    layer.add_peer(NodeId(peer), SimTime::ZERO);
                }
            }
        }
        // c broadcasts; the copy to b is lost in flight.
        let step = c.broadcast("crash-note".to_string(), ms(1));
        let mut delivered_a = Vec::new();
        for (to, frame) in step.outbound {
            if to == NodeId(0) {
                delivered_a.extend(a.on_frame(NodeId(2), frame, ms(1)).delivered);
            }
            // NodeId(1): dropped.
        }
        assert_eq!(delivered_a, vec![(NodeId(2), "crash-note".to_string())]);
        // b is alive and heartbeating; c is silent past the deadline,
        // so a declares c (and only c) down and forwards the retained
        // broadcast to b.
        a.on_frame(NodeId(1), Frame::Heartbeat, ms(150));
        let tick = a.on_tick(ms(200));
        assert!(!tick.events.contains(&PeerEvent::Down(NodeId(1))));
        assert!(tick.events.contains(&PeerEvent::Down(NodeId(2))));
        let mut delivered_b = Vec::new();
        for (to, frame) in tick.outbound {
            if to == NodeId(1) {
                delivered_b.extend(b.on_frame(NodeId(0), frame, ms(200)).delivered);
            }
        }
        assert_eq!(
            delivered_b,
            vec![(NodeId(2), "crash-note".to_string())],
            "the survivor's forward reaches b attributed to the dead origin"
        );
        // b now also detects the crash and forwards back to a, whose
        // dedup drops the echo: exactly-once.
        let tick_b = b.on_tick(ms(201));
        let mut echoed = Vec::new();
        for (to, frame) in tick_b.outbound {
            if to == NodeId(0) {
                echoed.extend(a.on_frame(NodeId(1), frame, ms(201)).delivered);
            }
        }
        assert!(echoed.is_empty(), "dedup makes forwarding exactly-once");
        assert_eq!(a.stats().bcast_duplicates, 1);
    }

    #[test]
    fn disabling_forward_dedup_double_delivers() {
        let cfg = SessionConfig::default();
        let mut a = SessionLayer::new(NodeId(0), cfg.clone());
        a.add_peer(NodeId(1), SimTime::ZERO);
        a.add_peer(NodeId(2), SimTime::ZERO);
        a.set_forward_dedup(false);
        // The original broadcast arrives...
        let bcast = Frame::Bcast {
            seq: 1,
            origin: NodeId(2),
            bseq: 1,
            msg: "x".to_string(),
        };
        let first = a.on_frame(NodeId(2), bcast, ms(1));
        assert_eq!(first.delivered.len(), 1);
        // ...then a survivor's forward of the same payload: without
        // dedup it is delivered again.
        let fwd = Frame::Fwd {
            seq: 1,
            origin: NodeId(2),
            bseq: 1,
            msg: "x".to_string(),
        };
        let second = a.on_frame(NodeId(1), fwd, ms(2));
        assert_eq!(second.delivered.len(), 1, "the seeded bug double-delivers");
    }

    #[test]
    fn reconnect_before_deadline_stays_up() {
        let (mut a, _b) = pair();
        let tick = a.on_tick(ms(50));
        assert!(tick.events.is_empty());
        // Heartbeat arrives at 80ms; deadline slides.
        a.on_frame(NodeId(1), Frame::Heartbeat, ms(80));
        let tick = a.on_tick(ms(150));
        assert!(tick.events.is_empty(), "heard at 80, checked at 150 < 180");
        let tick = a.on_tick(ms(185));
        assert_eq!(tick.events, vec![PeerEvent::Down(NodeId(1))]);
        // A late hello resurrects the peer.
        let step = a.on_frame(
            NodeId(1),
            Frame::Hello {
                from: NodeId(1),
                expected: 1,
            },
            ms(200),
        );
        assert_eq!(step.events, vec![PeerEvent::Up(NodeId(1))]);
    }
}
