//! The production backend: a threaded TCP driver for
//! [`TransportActor`]s.
//!
//! One [`TcpNode`] hosts one actor on real `std::net` sockets:
//!
//! * a listener accepts connections from lower-numbered peers, a
//!   dialer thread per higher-numbered peer connects (and reconnects)
//!   outward, so each pair shares exactly one TCP connection;
//! * per-connection reader threads decode length-prefixed
//!   [`Frame`]s (see [`crate::wire`]) and feed them to the single
//!   driver thread over a channel — the actor itself is never touched
//!   concurrently;
//! * the driver runs the sans-IO [`SessionLayer`] for sequencing,
//!   reconnect replay, heartbeat failure detection and crash
//!   forwarding, fires actor timers from its own wheel, and applies
//!   actor effects (sends become sequenced unicasts).
//!
//! Unlike the sim backend this one is **not deterministic**: the OS
//! scheduler and the network order deliveries, and `NetCtx::now` is
//! elapsed wall time since node start. What *is* preserved are the
//! protocol invariants — the acceptance tests assert vector-clock
//! causality, total-order agreement and convergence over loopback, and
//! the session stats prove no sequence gaps and exactly-once
//! forwarding.

use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use odp_sim::actor::TimerId;
use odp_sim::metrics::MetricsRegistry;
use odp_sim::net::NodeId;
use odp_sim::rng::DetRng;
use odp_sim::time::{SimDuration, SimTime};
use odp_sim::trace::Trace;

use crate::actor::TransportActor;
use crate::ctx::NetCtx;
use crate::error::NetError;
use crate::session::{Frame, PeerEvent, SessionConfig, SessionLayer, SessionStats, SessionStep};
use crate::wire::{decode_frame, encode_frame, WireCodec, MAX_FRAME};

/// Tuning for one TCP node.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Seed for the node's deterministic RNG (`DetRng::seed_from(seed)`
    /// xor-folded with the node id, so a fleet can share one seed).
    pub seed: u64,
    /// Session-layer knobs (heartbeats, failure deadline, buffers).
    pub session: SessionConfig,
    /// Frame-body size cap for both encode and decode.
    pub max_frame: usize,
    /// Delay between reconnect attempts by dialer threads.
    pub connect_retry: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            seed: 0,
            session: SessionConfig::default(),
            max_frame: MAX_FRAME,
            connect_retry: SimDuration::from_millis(10),
        }
    }
}

/// What a finished node hands back for inspection.
#[derive(Debug)]
pub struct TcpReport {
    /// The node's metrics registry (counters such as
    /// `net.tcp.rx_frames`, plus everything the actor recorded).
    pub metrics: MetricsRegistry,
    /// The node's trace (actor `trace()` calls, span events, ...).
    pub trace: Trace,
    /// Session-layer counters: gaps, duplicates, forwards.
    pub stats: SessionStats,
}

/// Wall-clock readings mapped onto the `SimTime` scale (µs since node
/// start), so actors and the session layer see one time type on both
/// backends. The lint's wallclock rule is bypassed exactly here: this
/// *is* the backend that trades determinism for real sockets.
struct WallClock {
    // odp-check: allow(wallclock)
    start: std::time::Instant,
}

impl WallClock {
    fn new() -> Self {
        WallClock {
            // odp-check: allow(wallclock)
            start: std::time::Instant::now(),
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_micros(self.start.elapsed().as_micros() as u64)
    }
}

/// Control and data inputs multiplexed into the driver thread.
enum Input<M> {
    /// A connection to `peer` is byte-ready; `stream` is the write
    /// half (the sending thread keeps the read half).
    Conn { peer: NodeId, stream: TcpStream },
    /// A decoded frame from `peer`.
    Frame { from: NodeId, frame: Frame<M> },
    /// The connection to `peer` dropped.
    Gone { peer: NodeId },
    /// Local injection: deliver `msg` to the actor as if sent by
    /// `from` (the TCP analogue of `Sim::inject`).
    Inject { from: NodeId, msg: M },
    /// Session-level broadcast to all peers (retained for crash
    /// forwarding; delivered to remote actors, not the local one).
    Bcast { msg: M },
    /// Stop the driver and return the actor.
    Stop,
}

/// A bound-but-not-yet-running TCP node.
pub struct TcpNode {
    me: NodeId,
    listener: TcpListener,
    cfg: TcpConfig,
    peers: BTreeMap<NodeId, SocketAddr>,
}

impl TcpNode {
    /// Binds a node on a loopback port chosen by the OS.
    pub fn bind(me: NodeId, cfg: TcpConfig) -> Result<Self, NetError> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        Ok(TcpNode {
            me,
            listener,
            cfg,
            peers: BTreeMap::new(),
        })
    }

    /// Where this node listens (exchange these before `spawn`).
    pub fn local_addr(&self) -> Result<SocketAddr, NetError> {
        Ok(self.listener.local_addr()?)
    }

    /// Declares the full peer set (`me` is ignored if present).
    pub fn set_peers(&mut self, peers: BTreeMap<NodeId, SocketAddr>) {
        self.peers = peers;
        self.peers.remove(&self.me);
    }

    /// Starts the driver thread hosting `actor`; returns the control
    /// handle. Connection policy: this node dials every peer with a
    /// *larger* id and accepts from every peer with a smaller one, so
    /// each pair shares one connection.
    pub fn spawn<M, A>(self, actor: A) -> TcpHandle<A, M>
    where
        M: WireCodec + Clone + Send + 'static,
        A: TransportActor<M> + Send + 'static,
    {
        let (tx, rx) = mpsc::channel::<Input<M>>();
        let stop = Arc::new(AtomicBool::new(false));
        let driver_tx = tx.clone();
        let driver_stop = Arc::clone(&stop);
        let join =
            std::thread::spawn(move || Driver::new(self, actor, driver_tx, driver_stop).run(rx));
        TcpHandle { tx, stop, join }
    }
}

/// Control handle for a running node.
pub struct TcpHandle<A, M> {
    tx: Sender<Input<M>>,
    stop: Arc<AtomicBool>,
    join: JoinHandle<(A, TcpReport)>,
}

impl<A, M> TcpHandle<A, M> {
    /// Delivers `msg` to the hosted actor as if sent by `from` — the
    /// TCP analogue of `Sim::inject` for driving workloads.
    pub fn inject(&self, from: NodeId, msg: M) {
        let _ = self.tx.send(Input::Inject { from, msg });
    }

    /// Session-level broadcast: sends `msg` to every peer with a
    /// per-origin broadcast seq, retained so survivors forward it if
    /// this node is declared dead before everyone saw it.
    pub fn broadcast(&self, msg: M) {
        let _ = self.tx.send(Input::Bcast { msg });
    }

    /// Stops the node and returns the actor plus its report. Peers see
    /// the connection drop and, after their failure deadline, a peer-
    /// down event — exactly what a crash looks like, which is what the
    /// crash/rejoin suites use it for.
    pub fn stop(self) -> Result<(A, TcpReport), NetError> {
        self.stop.store(true, AtomicOrdering::SeqCst);
        let _ = self.tx.send(Input::Stop);
        self.join.join().map_err(|_| NetError::DriverGone)
    }
}

/// Pending actor effects buffered by [`TcpCtx`] during one callback.
struct EffectBuf<M> {
    sends: Vec<(NodeId, M)>,
    set_timers: Vec<(u64, SimDuration, u64)>,
    cancels: Vec<u64>,
}

impl<M> EffectBuf<M> {
    fn new() -> Self {
        EffectBuf {
            sends: Vec::new(),
            set_timers: Vec::new(),
            cancels: Vec::new(),
        }
    }
}

/// The `NetCtx` the TCP driver hands to actor callbacks.
struct TcpCtx<'a, M> {
    now: SimTime,
    me: NodeId,
    rng: &'a mut DetRng,
    metrics: &'a mut MetricsRegistry,
    trace: &'a mut Trace,
    next_timer_id: &'a mut u64,
    effects: &'a mut EffectBuf<M>,
}

impl<M> NetCtx<M> for TcpCtx<'_, M> {
    fn now(&self) -> SimTime {
        self.now
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    fn send(&mut self, to: NodeId, msg: M) {
        self.effects.sends.push((to, msg));
    }

    fn send_sized(&mut self, to: NodeId, msg: M, _bytes: usize) {
        // Real frames have real sizes; the hint only drives the sim
        // bandwidth model.
        self.effects.sends.push((to, msg));
    }

    fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.effects.set_timers.push((id, delay, tag));
        TimerId::from_raw(id)
    }

    fn cancel_timer(&mut self, id: TimerId) {
        self.effects.cancels.push(id.raw());
    }

    fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }

    fn trace(&mut self, label: &str, data: String) {
        self.trace.record(self.now, self.me, label, data);
    }

    fn span_open(&mut self, span: odp_fabric::SpanCarrier, kind: &str) {
        self.trace.span_open(self.now, self.me, span, kind);
    }

    fn span_close(&mut self, span: odp_fabric::SpanCarrier) {
        self.trace.span_close(self.now, self.me, span);
    }
}

/// The single-threaded core of a TCP node.
struct Driver<M, A> {
    me: NodeId,
    cfg: TcpConfig,
    actor: A,
    session: SessionLayer<M>,
    clock: WallClock,
    rng: DetRng,
    metrics: MetricsRegistry,
    trace: Trace,
    writers: BTreeMap<NodeId, TcpStream>,
    /// `(due, timer id) -> tag`, driving `on_timer`.
    timers: BTreeMap<(SimTime, u64), u64>,
    cancelled: BTreeSet<u64>,
    next_timer_id: u64,
    tx: Sender<Input<M>>,
    stop: Arc<AtomicBool>,
}

impl<M, A> Driver<M, A>
where
    M: WireCodec + Clone + Send + 'static,
    A: TransportActor<M> + Send + 'static,
{
    fn new(node: TcpNode, actor: A, tx: Sender<Input<M>>, stop: Arc<AtomicBool>) -> Self {
        let mut session = SessionLayer::new(node.me, node.cfg.session.clone());
        for &peer in node.peers.keys() {
            session.add_peer(peer, SimTime::ZERO);
        }
        let seed = node.cfg.seed ^ u64::from(node.me.0).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let driver = Driver {
            me: node.me,
            cfg: node.cfg.clone(),
            actor,
            session,
            clock: WallClock::new(),
            rng: DetRng::seed_from(seed),
            metrics: MetricsRegistry::new(),
            trace: Trace::new(),
            writers: BTreeMap::new(),
            timers: BTreeMap::new(),
            cancelled: BTreeSet::new(),
            next_timer_id: 0,
            tx,
            stop: Arc::clone(&stop),
        };
        driver.spawn_io(node.listener, node.peers);
        driver
    }

    /// Starts the acceptor and one dialer per higher-numbered peer.
    fn spawn_io(&self, listener: TcpListener, peers: BTreeMap<NodeId, SocketAddr>) {
        let max_frame = self.cfg.max_frame;
        // Acceptor: non-blocking poll so the thread can observe stop.
        let tx = self.tx.clone();
        let stop = Arc::clone(&self.stop);
        std::thread::spawn(move || {
            while !stop.load(AtomicOrdering::SeqCst) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let tx = tx.clone();
                        let stop = Arc::clone(&stop);
                        std::thread::spawn(move || {
                            read_loop::<M>(stream, None, tx, stop, max_frame);
                        });
                    }
                    Err(err) if err.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        // Dialers: this node connects to every larger-id peer.
        let retry = Duration::from_micros(self.cfg.connect_retry.as_micros());
        for (&peer, &addr) in peers.iter().filter(|(&p, _)| p > self.me) {
            let tx = self.tx.clone();
            let stop = Arc::clone(&self.stop);
            std::thread::spawn(move || {
                while !stop.load(AtomicOrdering::SeqCst) {
                    if let Ok(stream) = TcpStream::connect(addr) {
                        // One connected stint: read until the link
                        // drops, then fall through to redial.
                        read_loop::<M>(
                            stream,
                            Some(peer),
                            tx.clone(),
                            Arc::clone(&stop),
                            max_frame,
                        );
                    }
                    std::thread::sleep(retry);
                }
            });
        }
    }

    /// Runs one actor callback under a fresh effect buffer, then
    /// applies the effects.
    fn dispatch(&mut self, call: impl FnOnce(&mut A, &mut dyn NetCtx<M>)) {
        let mut effects = EffectBuf::new();
        let now = self.clock.now();
        {
            let mut ctx = TcpCtx {
                now,
                me: self.me,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                next_timer_id: &mut self.next_timer_id,
                effects: &mut effects,
            };
            call(&mut self.actor, &mut ctx);
        }
        for (id, delay, tag) in effects.set_timers {
            self.timers.insert((now + delay, id), tag);
        }
        for id in effects.cancels {
            self.cancelled.insert(id);
        }
        for (to, msg) in effects.sends {
            let now = self.clock.now();
            let step = self.session.unicast(to, msg, now);
            self.process_step(step);
        }
    }

    /// Transmits frames, surfaces deliveries and peer events.
    fn process_step(&mut self, step: SessionStep<M>) {
        for (to, frame) in step.outbound {
            self.transmit(to, &frame);
        }
        for event in step.events {
            match event {
                PeerEvent::Up(peer) => {
                    self.metrics.incr("net.tcp.peer_up");
                    self.dispatch(|actor, ctx| actor.on_peer_up(ctx, peer));
                }
                PeerEvent::Down(peer) => {
                    self.metrics.incr("net.tcp.peer_down");
                    self.dispatch(|actor, ctx| actor.on_peer_down(ctx, peer));
                }
            }
        }
        for (origin, msg) in step.delivered {
            self.metrics.incr("net.tcp.delivered");
            self.dispatch(|actor, ctx| actor.on_message(ctx, origin, msg));
        }
    }

    fn transmit(&mut self, to: NodeId, frame: &Frame<M>) {
        let Some(writer) = self.writers.get_mut(&to) else {
            // No live connection: sequenced frames sit in the session's
            // retransmit buffer until the peer's hello pulls them.
            self.metrics.incr("net.tcp.tx_unrouted");
            return;
        };
        match encode_frame(frame, self.cfg.max_frame) {
            Ok(bytes) => {
                if writer.write_all(&bytes).is_err() {
                    self.writers.remove(&to);
                    self.session.on_disconnect(to);
                    self.metrics.incr("net.tcp.tx_broken");
                } else {
                    self.metrics.incr("net.tcp.tx_frames");
                    self.metrics.add("net.tcp.tx_bytes", bytes.len() as u64);
                }
            }
            Err(_) => {
                // An oversized application payload is the sender's bug;
                // count it, never panic, never poison the stream.
                self.metrics.incr("net.tcp.tx_oversized");
            }
        }
    }

    fn fire_due_timers(&mut self) {
        loop {
            let now = self.clock.now();
            let Some((&(due, id), &tag)) = self.timers.iter().next() else {
                return;
            };
            if due > now {
                return;
            }
            self.timers.remove(&(due, id));
            if self.cancelled.remove(&id) {
                continue;
            }
            self.dispatch(|actor, ctx| actor.on_timer(ctx, TimerId::from_raw(id), tag));
        }
    }

    /// How long the driver may sleep before something is due.
    fn idle_budget(&self) -> Duration {
        let now = self.clock.now();
        let mut budget = Duration::from_micros(self.cfg.session.heartbeat_every.as_micros() / 2);
        if let Some((&(due, _), _)) = self.timers.iter().next() {
            let until = Duration::from_micros(due.saturating_since(now).as_micros());
            budget = budget.min(until);
        }
        budget.max(Duration::from_millis(1))
    }

    fn run(mut self, rx: Receiver<Input<M>>) -> (A, TcpReport) {
        self.dispatch(|actor, ctx| actor.on_start(ctx));
        loop {
            if self.stop.load(AtomicOrdering::SeqCst) {
                break;
            }
            match rx.recv_timeout(self.idle_budget()) {
                Ok(Input::Stop) => break,
                Ok(Input::Conn { peer, stream }) => {
                    self.metrics.incr("net.tcp.conn");
                    self.writers.insert(peer, stream);
                    let now = self.clock.now();
                    let hello = self.session.hello_for(peer, now);
                    self.transmit(peer, &hello);
                }
                Ok(Input::Frame { from, frame }) => {
                    self.metrics.incr("net.tcp.rx_frames");
                    let now = self.clock.now();
                    let step = self.session.on_frame(from, frame, now);
                    self.process_step(step);
                }
                Ok(Input::Gone { peer }) => {
                    self.writers.remove(&peer);
                    self.session.on_disconnect(peer);
                    self.metrics.incr("net.tcp.conn_lost");
                }
                Ok(Input::Inject { from, msg }) => {
                    self.dispatch(|actor, ctx| actor.on_message(ctx, from, msg));
                }
                Ok(Input::Bcast { msg }) => {
                    let now = self.clock.now();
                    let step = self.session.broadcast(msg, now);
                    self.process_step(step);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.fire_due_timers();
            let now = self.clock.now();
            let step = self.session.on_tick(now);
            self.process_step(step);
        }
        self.stop.store(true, AtomicOrdering::SeqCst);
        let report = TcpReport {
            metrics: self.metrics,
            trace: self.trace,
            stats: self.session.stats(),
        };
        (self.actor, report)
    }
}

/// Reads length-prefixed frames from one connection until it drops.
///
/// For accepted connections (`peer == None`) the first frame must be a
/// `Hello` identifying the sender; for dialed connections the peer is
/// known up front and the write half is registered immediately.
fn read_loop<M: WireCodec + Send + 'static>(
    stream: TcpStream,
    mut peer: Option<NodeId>,
    tx: Sender<Input<M>>,
    stop: Arc<AtomicBool>,
    max_frame: usize,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(20)));
    let Ok(mut reader) = stream.try_clone() else {
        return;
    };
    // Dialed connections know the peer up front and register the write
    // half immediately; accepted connections hold it back until the
    // hello names the sender.
    let mut pending: Option<TcpStream> = Some(stream);
    if let Some(p) = peer {
        let Some(write_half) = pending.take() else {
            return;
        };
        if tx
            .send(Input::Conn {
                peer: p,
                stream: write_half,
            })
            .is_err()
        {
            return;
        }
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        if stop.load(AtomicOrdering::SeqCst) {
            return;
        }
        match reader.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    match decode_frame::<Frame<M>>(&buf, max_frame) {
                        Ok((frame, used)) => {
                            buf.drain(..used);
                            if peer.is_none() {
                                let Frame::Hello { from, .. } = &frame else {
                                    // An unidentified connection must
                                    // introduce itself first.
                                    return;
                                };
                                peer = Some(*from);
                                if let Some(write_half) = pending.take() {
                                    if tx
                                        .send(Input::Conn {
                                            peer: *from,
                                            stream: write_half,
                                        })
                                        .is_err()
                                    {
                                        return;
                                    }
                                }
                            }
                            let Some(from) = peer else { return };
                            if tx.send(Input::Frame { from, frame }).is_err() {
                                return;
                            }
                        }
                        Err(NetError::Truncated { .. }) => break,
                        Err(_) => {
                            // Oversized or malformed: the stream is
                            // unframeable from here — drop it.
                            if let Some(p) = peer {
                                let _ = tx.send(Input::Gone { peer: p });
                            }
                            return;
                        }
                    }
                }
            }
            Err(err)
                if err.kind() == std::io::ErrorKind::WouldBlock
                    || err.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    if let Some(p) = peer {
        let _ = tx.send(Input::Gone { peer: p });
    }
}
