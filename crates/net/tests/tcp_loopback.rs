//! Acceptance tests for the threaded TCP backend on real loopback
//! sockets.
//!
//! The TCP driver is not deterministic, so these tests assert the
//! *protocol invariants* the transport promises instead of byte
//! equality: every replica converges to the same delivered set, nothing
//! is delivered twice, no sequence gaps appear, and a crashed sender's
//! broadcasts are forwarded by survivors exactly once.
//!
//! Wall-clock sleeps are fine here — integration tests are exempt from
//! the wallclock lint, and loopback convergence is bounded by the
//! session heartbeat (25 ms) rather than the sleeps' generosity.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_awareness::dist::{BusActor, BusWire};
use odp_awareness::events::ActivityKind;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_net::actor::TransportActor;
use odp_net::ctx::NetCtx;
use odp_net::tcp::{TcpConfig, TcpHandle, TcpNode};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;

const NODES: u32 = 3;
const WRITES_EACH: u32 = 2;
const ARTEFACT: &str = "doc/plan";

/// Binds `NODES` nodes, exchanges addresses, and returns them ready to
/// spawn.
fn bound_fleet(seed: u64) -> Vec<TcpNode> {
    let mut nodes: Vec<TcpNode> = (0..NODES)
        .map(|i| {
            let cfg = TcpConfig {
                seed,
                ..TcpConfig::default()
            };
            TcpNode::bind(NodeId(i), cfg).expect("bind loopback")
        })
        .collect();
    let addrs: BTreeMap<NodeId, SocketAddr> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (NodeId(i as u32), n.local_addr().expect("local addr")))
        .collect();
    for node in &mut nodes {
        node.set_peers(addrs.clone());
    }
    nodes
}

fn open_bus() -> EventBus {
    let mut bus = EventBus::new();
    for i in 0..NODES {
        bus.register(NodeId(i), 0.0);
    }
    bus
}

fn edit(publisher: u32, write: u32) -> BusWire {
    BusWire::new(CoopEvent::broadcast(
        NodeId(publisher),
        ARTEFACT,
        SimTime::from_millis(u64::from(write)),
        CoopKind::Activity(ActivityKind::Edit),
    ))
}

#[test]
fn bus_replicas_converge_over_loopback() {
    let view = View::initial(GroupId(0), (0..NODES).map(NodeId));
    let handles: Vec<TcpHandle<BusActor, GcMsg<BusWire>>> = bound_fleet(7)
        .into_iter()
        .enumerate()
        .map(|(i, node)| node.spawn(BusActor::new(NodeId(i as u32), view.clone(), open_bus())))
        .collect();

    // Let the mesh connect, then publish from every node.
    std::thread::sleep(Duration::from_millis(200));
    for (i, handle) in handles.iter().enumerate() {
        for w in 0..WRITES_EACH {
            handle.inject(NodeId(i as u32), GcMsg::AppCmd(edit(i as u32, w)));
        }
    }
    std::thread::sleep(Duration::from_millis(1500));

    for (i, handle) in handles.into_iter().enumerate() {
        let me = NodeId(i as u32);
        let (actor, report) = handle.stop().expect("node stops cleanly");

        // Convergence: every replica surfaces exactly the publications
        // of the *other* nodes (a broadcast never reaches its actor),
        // each exactly once.
        let mut got: Vec<(NodeId, u64)> = actor
            .delivered()
            .iter()
            .map(|d| {
                assert_eq!(d.observer, me, "grants surface at their own node");
                (d.event.actor, d.event.at.as_micros())
            })
            .collect();
        got.sort_unstable();
        let mut want: Vec<(NodeId, u64)> = (0..NODES)
            .filter(|&p| p != me.0)
            .flat_map(|p| {
                (0..WRITES_EACH)
                    .map(move |w| (NodeId(p), SimTime::from_millis(u64::from(w)).as_micros()))
            })
            .collect();
        want.sort_unstable();
        assert_eq!(got, want, "node {i} delivered set");

        // Transport fidelity: no sequence gaps, and frames really moved
        // through the socket layer.
        let stats = report.stats;
        assert_eq!(stats.gaps, 0, "node {i} saw a sequence gap");
        assert_eq!(stats.evicted, 0, "node {i} evicted undelivered frames");
        assert!(
            report.metrics.counter("net.tcp.rx_frames") > 0,
            "node {i} never received a frame"
        );
        assert!(
            report.metrics.counter("aware.deliver") >= u64::from((NODES - 1) * WRITES_EACH),
            "node {i} under-delivered"
        );
    }
}

/// Records every delivered payload; the crash-forwarding test asserts
/// exactly-once delivery of a dead origin's broadcasts.
struct Recorder {
    seen: Vec<(NodeId, String)>,
}

impl TransportActor<String> for Recorder {
    fn on_message(&mut self, _ctx: &mut dyn NetCtx<String>, from: NodeId, msg: String) {
        self.seen.push((from, msg));
    }
}

#[test]
fn survivors_forward_a_crashed_senders_broadcast_exactly_once() {
    let handles: Vec<TcpHandle<Recorder, String>> = bound_fleet(11)
        .into_iter()
        .map(|node| node.spawn(Recorder { seen: Vec::new() }))
        .collect();
    let mut handles = handles.into_iter();
    let origin = handles.next().expect("origin handle");
    let survivors: Vec<_> = handles.collect();

    // Connect, broadcast from node 0, let it land everywhere.
    std::thread::sleep(Duration::from_millis(200));
    origin.broadcast("last words".to_owned());
    std::thread::sleep(Duration::from_millis(400));

    // Crash the origin. Survivors see the connection drop, declare the
    // peer dead after the failure deadline, and re-forward its retained
    // broadcasts to each other; `(origin, bseq)` dedup must keep the
    // delivery count at one.
    drop(origin.stop().expect("origin stops"));
    std::thread::sleep(Duration::from_millis(600));

    let mut forwarded_total = 0;
    for (i, handle) in survivors.into_iter().enumerate() {
        let (actor, report) = handle.stop().expect("survivor stops");
        let copies = actor
            .seen
            .iter()
            .filter(|(from, msg)| *from == NodeId(0) && msg == "last words")
            .count();
        assert_eq!(copies, 1, "survivor {} delivered {copies} copies", i + 1);
        assert_eq!(report.stats.gaps, 0, "survivor {} saw a gap", i + 1);
        forwarded_total += report.stats.forwarded;
    }
    assert!(
        forwarded_total > 0,
        "no survivor forwarded the dead origin's broadcast"
    );
}
