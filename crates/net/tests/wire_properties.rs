//! Property tests for the wire codec and framing layer: every
//! primitive round-trips bit-exactly, every link-layer [`Frame`]
//! variant round-trips, and the decoders are *total* — arbitrary or
//! truncated bytes always yield a typed [`NetError`], never a panic
//! and never an unbounded allocation.

use std::collections::{BTreeMap, BTreeSet};

use odp_fabric::Payload;
use odp_net::error::NetError;
use odp_net::session::Frame;
use odp_net::wire::{decode_frame, encode_frame, WireCodec, WireReader, MAX_FRAME};
use odp_net::{payload_as, payload_of};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn roundtrip<T: WireCodec + PartialEq + std::fmt::Debug>(value: &T) -> Result<(), String> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    match WireReader::new(&buf).finish::<T>() {
        Ok(back) if &back == value => Ok(()),
        Ok(back) => Err(format!("decoded {back:?} != {value:?}")),
        Err(e) => Err(format!("failed to decode own encoding: {e}")),
    }
}

/// An arbitrary link-layer frame over `String` payloads, covering all
/// five variants.
fn arb_frame() -> impl Strategy<Value = Frame<String>> {
    (
        0u8..5,
        any::<u32>(),
        any::<u64>(),
        any::<u64>(),
        "[a-zA-Z0-9 .!?\n]{0,40}",
    )
        .prop_map(|(tag, node, seq, bseq, msg)| match tag {
            0 => Frame::Hello {
                from: NodeId(node),
                expected: seq,
            },
            1 => Frame::Heartbeat,
            2 => Frame::Data { seq, msg },
            3 => Frame::Bcast {
                seq,
                origin: NodeId(node),
                bseq,
                msg,
            },
            _ => Frame::Fwd {
                seq,
                origin: NodeId(node),
                bseq,
                msg,
            },
        })
}

proptest! {
    /// Unsigned/signed integers, bools, strings, times and ids all
    /// round-trip exactly, alone and inside nested containers.
    #[test]
    fn primitives_and_containers_roundtrip(
        a in any::<u64>(),
        b in any::<u32>(),
        s in "[a-zA-Z0-9 .!?\n]{0,60}",
        flag in any::<bool>(),
        pairs in prop::collection::vec((any::<u32>(), any::<u64>()), 0..12),
        set in prop::collection::btree_set(any::<u32>(), 0..12),
    ) {
        prop_assert!(roundtrip(&a).is_ok());
        prop_assert!(roundtrip(&b).is_ok());
        prop_assert!(roundtrip(&(a as i64)).is_ok());
        prop_assert!(roundtrip(&s).is_ok());
        prop_assert!(roundtrip(&flag).is_ok());
        prop_assert!(roundtrip(&NodeId(b)).is_ok());
        prop_assert!(roundtrip(&SimTime::from_micros(a)).is_ok());
        prop_assert!(roundtrip(&SimDuration::from_micros(a)).is_ok());
        prop_assert!(roundtrip(&Some(s.clone())).is_ok());
        prop_assert!(roundtrip(&Option::<String>::None).is_ok());
        let map: BTreeMap<NodeId, u64> =
            pairs.iter().map(|&(k, v)| (NodeId(k), v)).collect();
        prop_assert!(roundtrip(&map).is_ok());
        let ids: BTreeSet<NodeId> = set.iter().map(|&n| NodeId(n)).collect();
        prop_assert!(roundtrip(&ids).is_ok());
        let nested: Vec<(NodeId, Vec<String>)> =
            vec![(NodeId(b), vec![s.clone(), String::new()])];
        prop_assert!(roundtrip(&nested).is_ok());
    }

    /// Floats round-trip by bit pattern — NaN payloads and signed
    /// zeroes included.
    #[test]
    fn floats_roundtrip_by_bits(bits in any::<u64>()) {
        let value = f64::from_bits(bits);
        let mut buf = Vec::new();
        value.encode(&mut buf);
        let back = WireReader::new(&buf).finish::<f64>().expect("f64 decodes");
        prop_assert_eq!(back.to_bits(), bits);
    }

    /// Every `Frame` variant survives the full encode → frame →
    /// decode_frame pipeline, consuming exactly the bytes produced.
    #[test]
    fn frames_roundtrip_through_framing(frame in arb_frame()) {
        let bytes = encode_frame(&frame, MAX_FRAME).expect("frame encodes");
        let (back, used): (Frame<String>, usize) =
            decode_frame(&bytes, MAX_FRAME).expect("frame decodes");
        prop_assert_eq!(back, frame);
        prop_assert_eq!(used, bytes.len());
    }

    /// Every strict prefix of a valid encoding is an error — the
    /// decoder never silently accepts a cut-off value.
    #[test]
    fn truncated_frames_error_at_every_prefix(frame in arb_frame()) {
        let mut body = Vec::new();
        frame.encode(&mut body);
        for cut in 0..body.len() {
            let got = WireReader::new(&body[..cut]).finish::<Frame<String>>();
            prop_assert!(got.is_err(), "prefix of {} bytes decoded", cut);
        }
    }

    /// Arbitrary hostile bytes never panic the frame decoder: the
    /// outcome is a value or a typed error, and a header announcing
    /// more than the cap is rejected before any allocation.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in prop::collection::vec(any::<u8>(), 0..200),
        cap in 8usize..64,
    ) {
        match decode_frame::<Frame<String>>(&bytes, cap) {
            Ok((_, used)) => prop_assert!(used <= bytes.len()),
            Err(NetError::FrameTooLarge { len, max }) => {
                prop_assert!(len > max);
            }
            Err(_) => {}
        }
        // The raw value decoder is total too.
        let _ = WireReader::new(&bytes).finish::<Frame<String>>();
        let _ = WireReader::new(&bytes).finish::<Vec<(NodeId, f64)>>();
        let _ = WireReader::new(&bytes).finish::<BTreeMap<NodeId, String>>();
    }

    /// `Payload` is wire-transparent: it encodes as its raw bytes with
    /// no header, and decoding consumes everything that remains — so a
    /// fabric envelope's frame is byte-identical to the typed one.
    #[test]
    fn payload_is_wire_transparent(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let payload = Payload::from_vec(bytes.clone());
        let mut buf = Vec::new();
        payload.encode(&mut buf);
        prop_assert_eq!(buf.as_slice(), bytes.as_slice());
        let back = WireReader::new(&buf).finish::<Payload>().expect("total");
        prop_assert_eq!(back.as_slice(), bytes.as_slice());
    }

    /// `payload_of` / `payload_as` invert each other for typed values,
    /// and `payload_as` over arbitrary bytes is total — hostile
    /// payloads surface as typed errors, never panics.
    #[test]
    fn payload_of_as_roundtrip_and_hostile_bytes(
        s in "[a-zA-Z0-9 .!?\n]{0,40}",
        n in any::<u64>(),
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let typed = (s.clone(), n);
        let payload = payload_of(&typed);
        prop_assert_eq!(payload_as::<(String, u64)>(&payload).expect("roundtrips"), typed);
        // Trailing garbage after a valid encoding must be rejected:
        // payload decoding is consume-all by construction.
        if !junk.is_empty() {
            let mut extended = payload.as_slice().to_vec();
            extended.extend_from_slice(&junk);
            prop_assert!(payload_as::<(String, u64)>(&Payload::from_vec(extended)).is_err());
        }
        let _ = payload_as::<(String, u64)>(&Payload::from_vec(junk.clone()));
        let _ = payload_as::<Frame<String>>(&Payload::from_vec(junk));
    }

    /// The encoder refuses to produce frames above the cap, with the
    /// true body length in the error.
    #[test]
    fn oversized_bodies_are_refused(len in 0usize..128, cap in 0usize..64) {
        let s = "x".repeat(len);
        let body_len = 4 + len; // u32 length prefix + bytes
        match encode_frame(&s, cap) {
            Ok(frame) => {
                prop_assert!(body_len <= cap);
                prop_assert_eq!(frame.len(), 4 + body_len);
            }
            Err(NetError::FrameTooLarge { len: got, max }) => {
                prop_assert_eq!(got, body_len);
                prop_assert_eq!(max, cap);
                prop_assert!(body_len > cap);
            }
            Err(other) => prop_assert!(false, "unexpected error {}", other),
        }
    }
}
