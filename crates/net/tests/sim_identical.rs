//! The transport refactor's central promise: hosting an actor on the
//! sim backend through [`SimHost`] is *bit-identical* to running it as
//! a plain `odp_sim` actor.
//!
//! The workload is the E13 awareness fan-out scenario from
//! `cscw-bench` — 8 rights-gated [`BusActor`] replicas over a 15 ms
//! WAN, 4 broadcast edits each, telemetry on so span minting draws from
//! every actor's RNG stream. The same seeded scenario is built twice
//! (bare actors vs `SimHost`-wrapped) and the full observable record is
//! compared: trace event streams (including RNG-derived span ids),
//! metrics counters, and each replica's surfaced deliveries.

use std::collections::BTreeMap;

use odp_access::matrix::Subject;
use odp_access::rbac::{Effect, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use odp_awareness::bus::{CoopEvent, CoopKind, EventBus};
use odp_awareness::dist::{BusActor, BusWire};
use odp_awareness::events::ActivityKind;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_net::sim_host::SimHost;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};

const REPLICAS: u32 = 8;
const WRITES_EACH: u32 = 4;
const READERS: u32 = 6;
const ARTEFACT: &str = "doc/plan";

fn reader_policy() -> RbacPolicy {
    let mut policy = RbacPolicy::new();
    policy.add_rule(RoleId(1), "doc".into(), Rights::READ, Effect::Allow);
    for i in 0..READERS {
        policy.assign(Subject(i), RoleId(1));
    }
    policy
}

fn replica_bus() -> EventBus {
    let mut bus = EventBus::new();
    bus.set_policy(reader_policy());
    for i in 0..REPLICAS {
        bus.register(NodeId(i), 0.0);
    }
    bus
}

fn replica(i: u32) -> BusActor {
    let view = View::initial(GroupId(0), (0..REPLICAS).map(NodeId));
    let mut actor = BusActor::new(NodeId(i), view, replica_bus());
    actor.set_telemetry(true);
    actor
}

/// Builds the E13 fan-out sim; `wrapped` hosts every replica behind
/// [`SimHost`] instead of registering it directly.
fn fanout_sim(seed: u64, wrapped: bool) -> Sim<GcMsg<BusWire>> {
    let link = LinkSpec::wan(SimDuration::from_millis(15));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<BusWire>> = SimBuilder::new(seed).network(net).build();
    for i in 0..REPLICAS {
        if wrapped {
            sim.add_actor(NodeId(i), SimHost::new(replica(i)));
        } else {
            sim.add_actor(NodeId(i), replica(i));
        }
    }
    for i in 0..REPLICAS {
        for w in 0..WRITES_EACH {
            let at = SimTime::from_millis(10 + w as u64 * 50);
            sim.inject(
                at,
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(BusWire::new(CoopEvent::broadcast(
                    NodeId(i),
                    ARTEFACT,
                    at,
                    CoopKind::Activity(ActivityKind::Edit),
                ))),
            );
        }
    }
    sim
}

fn counters(sim: &Sim<GcMsg<BusWire>>) -> BTreeMap<String, u64> {
    sim.metrics()
        .counters()
        .map(|(name, value)| (name.to_owned(), value))
        .collect()
}

/// `(observer, publisher, weight)` per surfaced delivery, per node.
fn deliveries(actor: &BusActor) -> Vec<(NodeId, NodeId, f64)> {
    actor
        .delivered()
        .iter()
        .map(|d| (d.observer, d.event.actor, d.weight))
        .collect()
}

#[test]
fn sim_host_is_bit_identical_on_the_e13_fanout() {
    for seed in [1u64, 42, 0xC5C3] {
        let mut bare = fanout_sim(seed, false);
        let mut wrapped = fanout_sim(seed, true);
        bare.run(Until::For(SimDuration::from_secs(30)));
        wrapped.run(Until::For(SimDuration::from_secs(30)));

        // The trace is the strongest witness: event order, timestamps,
        // and RNG-derived span ids must agree entry for entry.
        assert_eq!(
            bare.trace().events(),
            wrapped.trace().events(),
            "trace diverged on seed {seed}"
        );
        assert_eq!(
            counters(&bare),
            counters(&wrapped),
            "metrics diverged on seed {seed}"
        );

        // And the application-level outcome matches replica by replica.
        let mut surfaced = 0usize;
        for i in 0..REPLICAS {
            let b: &BusActor = bare.get(ActorHandle::of(NodeId(i))).expect("bare replica");
            let w: &SimHost<BusActor> = wrapped
                .get(ActorHandle::of(NodeId(i)))
                .expect("wrapped replica");
            assert_eq!(
                deliveries(b),
                deliveries(w.inner()),
                "deliveries diverged at node {i} on seed {seed}"
            );
            surfaced += b.delivered().len();
        }
        // Vacuity guard: the scenario actually fans out.
        assert!(surfaced > 0, "E13 scenario surfaced nothing on seed {seed}");
    }
}
