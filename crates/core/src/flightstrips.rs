//! The Lancaster air-traffic-control flight-strip board (§2.3) — the
//! paper's motivating field study. Strips are "organised in a rack
//! according to the reporting points over which a flight will pass";
//! controllers derive "the anticipated future loading on the system or
//! emerging problems" at a glance; and, crucially, strips are positioned
//! **manually** — "manual positioning draws the attention of controllers
//! to the new arrival and helps to identify potential problems at an
//! early stage."
//!
//! The board therefore supports both placement modes so experiments and
//! examples can contrast them: automatic placement files a strip silently
//! in ETA order; manual placement requires an explicit position and
//! raises an attention (awareness) event.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// An aircraft callsign.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Callsign(pub String);

impl fmt::Display for Callsign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A reporting point (beacon) with a rack on the board.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Beacon(pub String);

impl fmt::Display for Beacon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One flight progress strip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightStrip {
    /// The flight.
    pub callsign: Callsign,
    /// Estimated time over the beacon.
    pub eta: SimTime,
    /// Flight level (hundreds of feet).
    pub level: u32,
    /// Controller instructions, amended as they are issued and confirmed.
    pub instructions: Vec<String>,
}

/// How a strip was placed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementMode {
    /// Filed silently in ETA order by the system.
    Automatic,
    /// Positioned by a controller's hand (raises attention).
    Manual,
}

/// An attention event: who placed/moved what, seen by the whole team.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionEvent {
    /// The controller acting.
    pub by: NodeId,
    /// The flight concerned.
    pub callsign: Callsign,
    /// The rack concerned.
    pub beacon: Beacon,
    /// When.
    pub at: SimTime,
}

/// Errors from board operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoardError {
    /// No rack for that beacon.
    UnknownBeacon(Beacon),
    /// No strip for that callsign in that rack.
    UnknownStrip(Callsign),
    /// Manual placement needs a position inside the rack.
    BadPosition {
        /// Requested index.
        index: usize,
        /// Rack size.
        len: usize,
    },
}

impl fmt::Display for BoardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoardError::UnknownBeacon(b) => write!(f, "no rack for beacon {b}"),
            BoardError::UnknownStrip(c) => write!(f, "no strip for {c}"),
            BoardError::BadPosition { index, len } => {
                write!(f, "position {index} outside rack of {len}")
            }
        }
    }
}

impl std::error::Error for BoardError {}

/// The flight progress board: one ordered rack of strips per beacon.
///
/// # Examples
///
/// ```
/// use cscw_core::flightstrips::{Beacon, Callsign, FlightProgressBoard, FlightStrip, PlacementMode};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut board = FlightProgressBoard::new();
/// board.add_rack(Beacon("POL".into()));
/// let strip = FlightStrip {
///     callsign: Callsign("BA123".into()),
///     eta: SimTime::from_secs(600),
///     level: 330,
///     instructions: vec![],
/// };
/// board.place(NodeId(0), Beacon("POL".into()), strip, PlacementMode::Automatic, None, SimTime::ZERO)?;
/// assert_eq!(board.rack(&Beacon("POL".into()))?.len(), 1);
/// # Ok::<(), cscw_core::flightstrips::BoardError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct FlightProgressBoard {
    racks: BTreeMap<Beacon, Vec<FlightStrip>>,
    attention: Vec<AttentionEvent>,
}

impl FlightProgressBoard {
    /// Creates an empty board.
    pub fn new() -> Self {
        FlightProgressBoard::default()
    }

    /// Adds a rack for a beacon.
    pub fn add_rack(&mut self, beacon: Beacon) {
        self.racks.entry(beacon).or_default();
    }

    /// Places a strip. Automatic placement ignores `position` and files
    /// by ETA silently; manual placement requires `position` and raises
    /// an [`AttentionEvent`].
    ///
    /// # Errors
    ///
    /// Unknown beacons and out-of-range manual positions fail.
    pub fn place(
        &mut self,
        by: NodeId,
        beacon: Beacon,
        strip: FlightStrip,
        mode: PlacementMode,
        position: Option<usize>,
        at: SimTime,
    ) -> Result<(), BoardError> {
        let rack = self
            .racks
            .get_mut(&beacon)
            .ok_or_else(|| BoardError::UnknownBeacon(beacon.clone()))?;
        match mode {
            PlacementMode::Automatic => {
                let idx = rack
                    .iter()
                    .position(|s| s.eta > strip.eta)
                    .unwrap_or(rack.len());
                rack.insert(idx, strip);
            }
            PlacementMode::Manual => {
                let index = position.unwrap_or(rack.len());
                if index > rack.len() {
                    return Err(BoardError::BadPosition {
                        index,
                        len: rack.len(),
                    });
                }
                let callsign = strip.callsign.clone();
                rack.insert(index, strip);
                self.attention.push(AttentionEvent {
                    by,
                    callsign,
                    beacon,
                    at,
                });
            }
        }
        Ok(())
    }

    /// Manually moves ("cocks out") a strip to a new index in its rack —
    /// the re-ordering controllers use to flag problems. Raises
    /// attention.
    ///
    /// # Errors
    ///
    /// Unknown beacons/strips and bad positions fail.
    pub fn reorder(
        &mut self,
        by: NodeId,
        beacon: &Beacon,
        callsign: &Callsign,
        to_index: usize,
        at: SimTime,
    ) -> Result<(), BoardError> {
        let rack = self
            .racks
            .get_mut(beacon)
            .ok_or_else(|| BoardError::UnknownBeacon(beacon.clone()))?;
        let from = rack
            .iter()
            .position(|s| &s.callsign == callsign)
            .ok_or_else(|| BoardError::UnknownStrip(callsign.clone()))?;
        if to_index >= rack.len() {
            return Err(BoardError::BadPosition {
                index: to_index,
                len: rack.len(),
            });
        }
        let strip = rack.remove(from);
        rack.insert(to_index, strip);
        self.attention.push(AttentionEvent {
            by,
            callsign: callsign.clone(),
            beacon: beacon.clone(),
            at,
        });
        Ok(())
    }

    /// Amends a strip with a confirmed instruction.
    ///
    /// # Errors
    ///
    /// Unknown beacons/strips fail.
    pub fn amend(
        &mut self,
        beacon: &Beacon,
        callsign: &Callsign,
        instruction: impl Into<String>,
    ) -> Result<(), BoardError> {
        let rack = self
            .racks
            .get_mut(beacon)
            .ok_or_else(|| BoardError::UnknownBeacon(beacon.clone()))?;
        let strip = rack
            .iter_mut()
            .find(|s| &s.callsign == callsign)
            .ok_or_else(|| BoardError::UnknownStrip(callsign.clone()))?;
        strip.instructions.push(instruction.into());
        Ok(())
    }

    /// The rack for a beacon, in board order.
    ///
    /// # Errors
    ///
    /// [`BoardError::UnknownBeacon`] if absent.
    pub fn rack(&self, beacon: &Beacon) -> Result<&[FlightStrip], BoardError> {
        self.racks
            .get(beacon)
            .map(|r| r.as_slice())
            .ok_or_else(|| BoardError::UnknownBeacon(beacon.clone()))
    }

    /// "At a glance" loading: strips per rack.
    pub fn loading(&self) -> Vec<(&Beacon, usize)> {
        self.racks.iter().map(|(b, r)| (b, r.len())).collect()
    }

    /// Emerging problems at a glance: pairs of strips over one beacon at
    /// the same flight level whose ETAs are within `separation`.
    pub fn conflicts(&self, separation: SimDuration) -> Vec<(&Beacon, &Callsign, &Callsign)> {
        let mut out = Vec::new();
        for (beacon, rack) in &self.racks {
            for i in 0..rack.len() {
                for j in i + 1..rack.len() {
                    let (a, b) = (&rack[i], &rack[j]);
                    if a.level == b.level {
                        let gap = if a.eta >= b.eta {
                            a.eta.saturating_since(b.eta)
                        } else {
                            b.eta.saturating_since(a.eta)
                        };
                        if gap < separation {
                            out.push((beacon, &a.callsign, &b.callsign));
                        }
                    }
                }
            }
        }
        out
    }

    /// Attention events raised by manual actions.
    pub fn attention(&self) -> &[AttentionEvent] {
        &self.attention
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strip(cs: &str, eta_s: u64, level: u32) -> FlightStrip {
        FlightStrip {
            callsign: Callsign(cs.into()),
            eta: SimTime::from_secs(eta_s),
            level,
            instructions: vec![],
        }
    }

    fn pol() -> Beacon {
        Beacon("POL".into())
    }

    #[test]
    fn automatic_placement_files_by_eta_silently() {
        let mut b = FlightProgressBoard::new();
        b.add_rack(pol());
        for (cs, eta) in [("A1", 300), ("B2", 100), ("C3", 200)] {
            b.place(
                NodeId(0),
                pol(),
                strip(cs, eta, 330),
                PlacementMode::Automatic,
                None,
                SimTime::ZERO,
            )
            .unwrap();
        }
        let order: Vec<&str> = b
            .rack(&pol())
            .unwrap()
            .iter()
            .map(|s| s.callsign.0.as_str())
            .collect();
        assert_eq!(order, vec!["B2", "C3", "A1"]);
        assert!(
            b.attention().is_empty(),
            "automation is silent — the design risk"
        );
    }

    #[test]
    fn manual_placement_draws_attention() {
        let mut b = FlightProgressBoard::new();
        b.add_rack(pol());
        b.place(
            NodeId(3),
            pol(),
            strip("A1", 300, 330),
            PlacementMode::Manual,
            Some(0),
            SimTime::from_secs(5),
        )
        .unwrap();
        assert_eq!(b.attention().len(), 1);
        assert_eq!(b.attention()[0].by, NodeId(3));
    }

    #[test]
    fn manual_reorder_flags_problems() {
        let mut b = FlightProgressBoard::new();
        b.add_rack(pol());
        for (cs, eta) in [("A1", 100), ("B2", 200)] {
            b.place(
                NodeId(0),
                pol(),
                strip(cs, eta, 330),
                PlacementMode::Automatic,
                None,
                SimTime::ZERO,
            )
            .unwrap();
        }
        b.reorder(
            NodeId(1),
            &pol(),
            &Callsign("B2".into()),
            0,
            SimTime::from_secs(9),
        )
        .unwrap();
        let order: Vec<&str> = b
            .rack(&pol())
            .unwrap()
            .iter()
            .map(|s| s.callsign.0.as_str())
            .collect();
        assert_eq!(order, vec!["B2", "A1"], "out of ETA order on purpose");
        assert_eq!(b.attention().len(), 1);
    }

    #[test]
    fn conflicts_detect_same_level_close_etas() {
        let mut b = FlightProgressBoard::new();
        b.add_rack(pol());
        b.place(
            NodeId(0),
            pol(),
            strip("A1", 100, 330),
            PlacementMode::Automatic,
            None,
            SimTime::ZERO,
        )
        .unwrap();
        b.place(
            NodeId(0),
            pol(),
            strip("B2", 130, 330),
            PlacementMode::Automatic,
            None,
            SimTime::ZERO,
        )
        .unwrap();
        b.place(
            NodeId(0),
            pol(),
            strip("C3", 135, 350),
            PlacementMode::Automatic,
            None,
            SimTime::ZERO,
        )
        .unwrap();
        let conflicts = b.conflicts(SimDuration::from_secs(60));
        assert_eq!(conflicts.len(), 1, "only the same-level pair conflicts");
        assert_eq!(conflicts[0].1 .0, "A1");
        assert_eq!(conflicts[0].2 .0, "B2");
    }

    #[test]
    fn amendments_accumulate_on_the_strip() {
        let mut b = FlightProgressBoard::new();
        b.add_rack(pol());
        b.place(
            NodeId(0),
            pol(),
            strip("A1", 100, 330),
            PlacementMode::Automatic,
            None,
            SimTime::ZERO,
        )
        .unwrap();
        b.amend(&pol(), &Callsign("A1".into()), "descend FL280")
            .unwrap();
        b.amend(&pol(), &Callsign("A1".into()), "speed 250")
            .unwrap();
        assert_eq!(b.rack(&pol()).unwrap()[0].instructions.len(), 2);
    }

    #[test]
    fn errors_for_unknown_and_bad_positions() {
        let mut b = FlightProgressBoard::new();
        assert!(b.rack(&pol()).is_err());
        b.add_rack(pol());
        assert!(b.amend(&pol(), &Callsign("ZZ".into()), "x").is_err());
        assert!(matches!(
            b.place(
                NodeId(0),
                pol(),
                strip("A1", 1, 1),
                PlacementMode::Manual,
                Some(5),
                SimTime::ZERO
            ),
            Err(BoardError::BadPosition { .. })
        ));
        b.place(
            NodeId(0),
            pol(),
            strip("A1", 1, 1),
            PlacementMode::Automatic,
            None,
            SimTime::ZERO,
        )
        .unwrap();
        assert!(b
            .reorder(NodeId(0), &pol(), &Callsign("A1".into()), 5, SimTime::ZERO)
            .is_err());
    }
}
