//! Trader-mediated session discovery and join.
//!
//! §4.2.1 of the paper: clients of an open system locate services
//! through the trading function, not through configuration. This module
//! closes the loop for sessions: a host *advertises* a [`Session`] to a
//! trading [`Federation`] as a typed service offer, and a participant
//! *joins by service type* — the trader resolves the offer (locally or
//! across federation links, subject to scope and rights), QoS-matches
//! it against what the joiner's connectivity can sustain, and only then
//! does the ordinary [`Session::join`] run.

use std::collections::BTreeMap;

use odp_access::rights::Rights;
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use odp_streams::qos::QosSpec;
use odp_trader::error::TraderError;
use odp_trader::federation::{DomainId, Federation};
use odp_trader::offer::{OfferId, ServiceOffer, ServiceType, SessionKind};
use odp_trader::plan::ImportRequest;
use odp_trader::select::SelectionPolicy;

use crate::session::{Session, SessionError, SessionId, SessionMode, TimeMode};

/// How far a session lookup may chase federation links.
const MAX_IMPORT_HOPS: u32 = 3;

/// Why a trader-mediated join failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscoveryError {
    /// The trader could not resolve the service type.
    Import(TraderError),
    /// The resolved offer names a session this directory doesn't hold
    /// (withdrawn but not yet invalidated, or a foreign domain's).
    StaleOffer(ServiceType),
    /// The session itself refused the join.
    Session(SessionError),
}

impl std::fmt::Display for DiscoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiscoveryError::Import(e) => write!(f, "trader import failed: {e}"),
            DiscoveryError::StaleOffer(t) => write!(f, "offer for {t} names no live session"),
            DiscoveryError::Session(e) => write!(f, "session refused join: {e}"),
        }
    }
}

impl std::error::Error for DiscoveryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiscoveryError::Import(e) => Some(e),
            DiscoveryError::Session(e) => Some(e),
            DiscoveryError::StaleOffer(_) => None,
        }
    }
}

/// A successful trader-mediated join.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOutcome {
    /// The session joined.
    pub session: SessionId,
    /// The node hosting it (from the resolved offer).
    pub host: NodeId,
    /// The QoS contract negotiation settled on for the joiner.
    pub agreed: QosSpec,
    /// Federation hops the resolution crossed (0 = local domain).
    pub hops: u32,
}

/// A directory of advertised sessions, backed by a trading federation.
///
/// The directory owns the sessions it advertises; participants join
/// through [`SessionDirectory::join_via_trader`] without knowing host
/// addresses.
#[derive(Debug, Default)]
pub struct SessionDirectory {
    federation: Federation,
    sessions: BTreeMap<SessionId, Session>,
    advertised: BTreeMap<ServiceType, (SessionId, DomainId, OfferId)>,
}

impl SessionDirectory {
    /// An empty directory over an empty federation.
    pub fn new() -> Self {
        SessionDirectory::default()
    }

    /// The underlying federation (domain/link setup).
    pub fn federation_mut(&mut self) -> &mut Federation {
        &mut self.federation
    }

    /// Read access to a held session.
    pub fn session(&self, id: SessionId) -> Option<&Session> {
        self.sessions.get(&id)
    }

    /// Mutable access to a held session (sharing artefacts, mode
    /// switches).
    pub fn session_mut(&mut self, id: SessionId) -> Option<&mut Session> {
        self.sessions.get_mut(&id)
    }

    /// Advertises `session` under `service_type` in `domain`, hosted at
    /// `host` with QoS `offered`. The session is stored in the
    /// directory; the offer carries its kind (conference for
    /// synchronous modes, workspace otherwise) so importers can filter.
    ///
    /// # Errors
    ///
    /// [`odp_trader::offer::TraderError`] if the domain has no shards
    /// (mapped through as `Import(NoMatch)` would be misleading, so the
    /// raw error is surfaced).
    pub fn advertise(
        &mut self,
        domain: DomainId,
        service_type: ServiceType,
        session: Session,
        host: NodeId,
        offered: QosSpec,
    ) -> Result<OfferId, odp_trader::offer::TraderError> {
        let kind = match session.mode().time {
            TimeMode::Synchronous => SessionKind::Conference,
            TimeMode::Asynchronous => SessionKind::Workspace,
        };
        let offer = ServiceOffer::session(service_type.clone(), kind, offered, host)
            .with_property("session", format!("{}", session.id().0))
            .with_property("mode", session.mode().label().to_string());
        let store = self
            .federation
            .domain_mut(domain)
            .ok_or(odp_trader::offer::TraderError::NoShards)?;
        let id = store.export(offer)?;
        self.advertised
            .insert(service_type, (session.id(), domain, id));
        self.sessions.insert(session.id(), session);
        Ok(id)
    }

    /// Withdraws a service type's offer; the session stays in the
    /// directory but is no longer discoverable.
    pub fn withdraw(&mut self, service_type: &ServiceType) -> bool {
        match self.advertised.remove(service_type) {
            Some((_, domain, offer_id)) => self
                .federation
                .domain_mut(domain)
                .is_some_and(|store| store.withdraw(offer_id).is_ok()),
            None => false,
        }
    }

    /// Joins a session by service type: the trader resolves the type
    /// from `at` under `rights`, QoS-matching against `required`; the
    /// join then runs against the resolved session.
    ///
    /// # Errors
    ///
    /// See [`DiscoveryError`].
    pub fn join_via_trader(
        &mut self,
        at: DomainId,
        rights: Rights,
        service_type: &ServiceType,
        required: &QosSpec,
        who: NodeId,
        now: SimTime,
    ) -> Result<JoinOutcome, DiscoveryError> {
        let request = ImportRequest::for_type(service_type.clone())
            .qos(*required)
            .rights(rights)
            .policy(SelectionPolicy::FirstFit)
            .max_hops(MAX_IMPORT_HOPS);
        let resolution = self
            .federation
            .resolve(at, &request, None)
            .map_err(DiscoveryError::Import)?;
        let (session_id, _, _) = *self
            .advertised
            .get(service_type)
            .ok_or_else(|| DiscoveryError::StaleOffer(service_type.clone()))?;
        let session = self
            .sessions
            .get_mut(&session_id)
            .ok_or_else(|| DiscoveryError::StaleOffer(service_type.clone()))?;
        session.join(who, now).map_err(DiscoveryError::Session)?;
        Ok(JoinOutcome {
            session: session_id,
            host: resolution.matched.offer.node,
            agreed: resolution.matched.agreed,
            hops: resolution.hops,
        })
    }
}

/// Convenience: the canonical service type for a session mode
/// ("session/sync-distributed" etc.).
pub fn session_service_type(mode: SessionMode) -> ServiceType {
    let suffix = match (mode.time, mode.place) {
        (TimeMode::Synchronous, crate::session::PlaceMode::CoLocated) => "face-to-face",
        (TimeMode::Synchronous, crate::session::PlaceMode::Remote) => "sync-distributed",
        (TimeMode::Asynchronous, crate::session::PlaceMode::CoLocated) => "async-colocated",
        (TimeMode::Asynchronous, crate::session::PlaceMode::Remote) => "async-distributed",
    };
    ServiceType::new(format!("session/{suffix}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_trader::store::ShardedStore;

    const HOST: NodeId = NodeId(1);
    const JOINER: NodeId = NodeId(2);

    fn directory_with_session() -> (SessionDirectory, ServiceType) {
        let mut dir = SessionDirectory::new();
        dir.federation_mut()
            .add_domain(DomainId(0), ShardedStore::new([NodeId(100)]));
        let session = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
        let st = session_service_type(SessionMode::SYNC_DISTRIBUTED);
        dir.advertise(DomainId(0), st.clone(), session, HOST, QosSpec::video())
            .unwrap();
        (dir, st)
    }

    #[test]
    fn join_via_trader_resolves_and_joins() {
        let (mut dir, st) = directory_with_session();
        let outcome = dir
            .join_via_trader(
                DomainId(0),
                Rights::READ,
                &st,
                &QosSpec::video(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(outcome.host, HOST);
        assert_eq!(outcome.hops, 0);
        assert_eq!(outcome.agreed, QosSpec::video());
        assert!(dir
            .session(SessionId(1))
            .unwrap()
            .participants()
            .contains(&JOINER));
    }

    #[test]
    fn degraded_joiner_gets_a_degraded_contract() {
        // The host can only sustain modest QoS; a joiner asking for
        // broadcast video settles on a negotiated-down contract.
        let mut dir = SessionDirectory::new();
        dir.federation_mut()
            .add_domain(DomainId(0), ShardedStore::new([NodeId(100)]));
        let session = Session::new(SessionId(3), SessionMode::SYNC_DISTRIBUTED);
        let st = ServiceType::new("session/field-review");
        let modest = QosSpec {
            throughput_fps: 8,
            latency_bound: odp_sim::time::SimDuration::from_millis(400),
            jitter_bound: odp_sim::time::SimDuration::from_millis(100),
            loss_bound: 0.05,
            ..QosSpec::video()
        };
        dir.advertise(DomainId(0), st.clone(), session, HOST, modest)
            .unwrap();
        let outcome = dir
            .join_via_trader(
                DomainId(0),
                Rights::READ,
                &st,
                &QosSpec::video(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap();
        assert!(outcome.agreed.throughput_fps < QosSpec::video().throughput_fps);
        assert!(modest.satisfies(&outcome.agreed));
    }

    #[test]
    fn unknown_types_fail_with_import_error() {
        let (mut dir, _) = directory_with_session();
        let err = dir
            .join_via_trader(
                DomainId(0),
                Rights::READ,
                &ServiceType::new("session/nonexistent"),
                &QosSpec::audio(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, DiscoveryError::Import(TraderError::NoMatch)));
    }

    #[test]
    fn withdrawn_sessions_are_undiscoverable() {
        let (mut dir, st) = directory_with_session();
        assert!(dir.withdraw(&st));
        let err = dir
            .join_via_trader(
                DomainId(0),
                Rights::READ,
                &st,
                &QosSpec::video(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(err, DiscoveryError::Import(TraderError::NoMatch)));
    }

    #[test]
    fn federated_join_crosses_domains_under_rights() {
        // The session lives in domain 1; the joiner starts in domain 0.
        let mut dir = SessionDirectory::new();
        dir.federation_mut()
            .add_domain(DomainId(0), ShardedStore::new([NodeId(100)]));
        dir.federation_mut()
            .add_domain(DomainId(1), ShardedStore::new([NodeId(200)]));
        dir.federation_mut()
            .link(DomainId(0), DomainId(1), "session/", Rights::READ);
        let session = Session::new(SessionId(9), SessionMode::SYNC_DISTRIBUTED);
        let st = session_service_type(SessionMode::SYNC_DISTRIBUTED);
        dir.advertise(DomainId(1), st.clone(), session, HOST, QosSpec::video())
            .unwrap();
        // Without READ the link is barred.
        let err = dir
            .join_via_trader(
                DomainId(0),
                Rights::NONE,
                &st,
                &QosSpec::video(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap_err();
        assert!(matches!(
            err,
            DiscoveryError::Import(TraderError::AccessDenied)
        ));
        // With READ it crosses one hop.
        let outcome = dir
            .join_via_trader(
                DomainId(0),
                Rights::READ,
                &st,
                &QosSpec::video(),
                JOINER,
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(outcome.hops, 1);
    }
}
