//! A GROVE-style multi-user outline (Ellis, Gibbs & Rein): the group
//! editor the paper cites for operation transformations was an *outline*
//! editor whose items carried per-user visibility — "private" items
//! (one author's thinking), "shared" items (a subgroup), and "public"
//! items (everyone). Each participant sees their own view of one shared
//! structure — relaxed WYSIWIS at the data-model level.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// Names an outline item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ItemId(pub u64);

/// Who may see an item.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Visibility {
    /// Everyone in the session.
    Public,
    /// Only the listed participants.
    Shared(BTreeSet<NodeId>),
    /// Only the author.
    Private,
}

/// One outline item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Item {
    /// Its id.
    pub id: ItemId,
    /// Who created it.
    pub author: NodeId,
    /// The item text.
    pub text: String,
    /// Who may see it.
    pub visibility: Visibility,
    /// Child items, in outline order.
    pub children: Vec<ItemId>,
}

/// Errors from outline operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OutlineError {
    /// Unknown item.
    UnknownItem(ItemId),
    /// Only the author may change an item's visibility.
    NotTheAuthor(NodeId, ItemId),
    /// The insertion index is beyond the sibling list.
    BadPosition {
        /// Requested index.
        index: usize,
        /// Number of siblings.
        len: usize,
    },
    /// Moving an item under its own descendant would create a cycle.
    WouldCycle(ItemId),
}

impl fmt::Display for OutlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OutlineError::UnknownItem(i) => write!(f, "unknown item {}", i.0),
            OutlineError::NotTheAuthor(n, i) => {
                write!(f, "{n} is not the author of item {}", i.0)
            }
            OutlineError::BadPosition { index, len } => {
                write!(f, "position {index} beyond {len} siblings")
            }
            OutlineError::WouldCycle(i) => write!(f, "moving item {} would create a cycle", i.0),
        }
    }
}

impl std::error::Error for OutlineError {}

/// The shared outline: one structure, many views.
///
/// # Examples
///
/// ```
/// use cscw_core::outline::{Outline, Visibility};
/// use odp_sim::net::NodeId;
///
/// let mut o = Outline::new();
/// let intro = o.add_item(NodeId(0), None, 0, "Introduction", Visibility::Public)?;
/// let note = o.add_item(NodeId(0), Some(intro), 0, "todo: sharpen", Visibility::Private)?;
/// assert!(o.view_for(NodeId(0)).iter().any(|(i, _)| *i == note));
/// assert!(!o.view_for(NodeId(1)).iter().any(|(i, _)| *i == note), "private to its author");
/// # Ok::<(), cscw_core::outline::OutlineError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Outline {
    items: BTreeMap<ItemId, Item>,
    roots: Vec<ItemId>,
    next: u64,
}

impl Outline {
    /// Creates an empty outline.
    pub fn new() -> Self {
        Outline::default()
    }

    /// Adds an item under `parent` (or at top level for `None`) at
    /// `position` among its siblings.
    ///
    /// # Errors
    ///
    /// Unknown parents and out-of-range positions fail.
    pub fn add_item(
        &mut self,
        author: NodeId,
        parent: Option<ItemId>,
        position: usize,
        text: impl Into<String>,
        visibility: Visibility,
    ) -> Result<ItemId, OutlineError> {
        let id = ItemId(self.next);
        let siblings_len = match parent {
            Some(p) => self
                .items
                .get(&p)
                .ok_or(OutlineError::UnknownItem(p))?
                .children
                .len(),
            None => self.roots.len(),
        };
        if position > siblings_len {
            return Err(OutlineError::BadPosition {
                index: position,
                len: siblings_len,
            });
        }
        self.next += 1;
        self.items.insert(
            id,
            Item {
                id,
                author,
                text: text.into(),
                visibility,
                children: Vec::new(),
            },
        );
        match parent {
            Some(p) => self
                .items
                .get_mut(&p)
                .expect("checked")
                .children
                .insert(position, id),
            None => self.roots.insert(position, id),
        }
        Ok(id)
    }

    /// Edits an item's text (any participant — GROVE let the group edit
    /// freely; social protocol governs).
    ///
    /// # Errors
    ///
    /// [`OutlineError::UnknownItem`] if absent.
    pub fn edit_text(&mut self, id: ItemId, text: impl Into<String>) -> Result<(), OutlineError> {
        self.items
            .get_mut(&id)
            .map(|i| i.text = text.into())
            .ok_or(OutlineError::UnknownItem(id))
    }

    /// Changes an item's visibility — author only (making your private
    /// thinking public is yours to decide).
    ///
    /// # Errors
    ///
    /// Fails for unknown items or non-authors.
    pub fn set_visibility(
        &mut self,
        who: NodeId,
        id: ItemId,
        visibility: Visibility,
    ) -> Result<(), OutlineError> {
        let item = self
            .items
            .get_mut(&id)
            .ok_or(OutlineError::UnknownItem(id))?;
        if item.author != who {
            return Err(OutlineError::NotTheAuthor(who, id));
        }
        item.visibility = visibility;
        Ok(())
    }

    /// True if `viewer` may see `item`.
    fn visible(&self, viewer: NodeId, item: &Item) -> bool {
        match &item.visibility {
            Visibility::Public => true,
            Visibility::Shared(set) => item.author == viewer || set.contains(&viewer),
            Visibility::Private => item.author == viewer,
        }
    }

    /// Renders `viewer`'s view: visible items in depth-first outline
    /// order with their depths. Items hidden from the viewer hide their
    /// subtrees too (you cannot anchor under what you cannot see).
    pub fn view_for(&self, viewer: NodeId) -> Vec<(ItemId, usize)> {
        let mut out = Vec::new();
        fn walk(
            outline: &Outline,
            viewer: NodeId,
            ids: &[ItemId],
            depth: usize,
            out: &mut Vec<(ItemId, usize)>,
        ) {
            for id in ids {
                let Some(item) = outline.items.get(id) else {
                    continue;
                };
                if outline.visible(viewer, item) {
                    out.push((*id, depth));
                    walk(outline, viewer, &item.children, depth + 1, out);
                }
            }
        }
        walk(self, viewer, &self.roots, 0, &mut out);
        out
    }

    /// Moves an item (with its subtree) to a new parent/position.
    ///
    /// # Errors
    ///
    /// Fails for unknown items, bad positions, or moves that would make
    /// an item its own ancestor.
    pub fn move_item(
        &mut self,
        id: ItemId,
        new_parent: Option<ItemId>,
        position: usize,
    ) -> Result<(), OutlineError> {
        if !self.items.contains_key(&id) {
            return Err(OutlineError::UnknownItem(id));
        }
        if let Some(p) = new_parent {
            if p == id || self.is_descendant(p, id) {
                return Err(OutlineError::WouldCycle(id));
            }
            if !self.items.contains_key(&p) {
                return Err(OutlineError::UnknownItem(p));
            }
        }
        // Detach.
        self.roots.retain(|&r| r != id);
        for item in self.items.values_mut() {
            item.children.retain(|&c| c != id);
        }
        // Attach.
        let siblings_len = match new_parent {
            Some(p) => self.items.get(&p).expect("checked").children.len(),
            None => self.roots.len(),
        };
        let position = position.min(siblings_len);
        match new_parent {
            Some(p) => self
                .items
                .get_mut(&p)
                .expect("checked")
                .children
                .insert(position, id),
            None => self.roots.insert(position, id),
        }
        Ok(())
    }

    /// True if `candidate` lies in `ancestor`'s subtree.
    fn is_descendant(&self, candidate: ItemId, ancestor: ItemId) -> bool {
        let Some(a) = self.items.get(&ancestor) else {
            return false;
        };
        a.children
            .iter()
            .any(|&c| c == candidate || self.is_descendant(candidate, c))
    }

    /// Looks up an item.
    ///
    /// # Errors
    ///
    /// [`OutlineError::UnknownItem`] if absent.
    pub fn item(&self, id: ItemId) -> Result<&Item, OutlineError> {
        self.items.get(&id).ok_or(OutlineError::UnknownItem(id))
    }

    /// Total items (all visibilities).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the outline is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shared_with(nodes: &[u32]) -> Visibility {
        Visibility::Shared(nodes.iter().map(|&n| NodeId(n)).collect())
    }

    #[test]
    fn views_respect_visibility() {
        let mut o = Outline::new();
        let pub1 = o
            .add_item(NodeId(0), None, 0, "public point", Visibility::Public)
            .unwrap();
        let priv1 = o
            .add_item(NodeId(0), None, 1, "my draft thought", Visibility::Private)
            .unwrap();
        let team = o
            .add_item(NodeId(1), None, 2, "team-only", shared_with(&[0]))
            .unwrap();
        let v0: Vec<ItemId> = o.view_for(NodeId(0)).into_iter().map(|(i, _)| i).collect();
        assert_eq!(v0, vec![pub1, priv1, team], "author+shared sees all");
        let v2: Vec<ItemId> = o.view_for(NodeId(2)).into_iter().map(|(i, _)| i).collect();
        assert_eq!(v2, vec![pub1], "outsider sees only public");
        let v1: Vec<ItemId> = o.view_for(NodeId(1)).into_iter().map(|(i, _)| i).collect();
        assert_eq!(v1, vec![pub1, team], "sharer sees own shared item");
    }

    #[test]
    fn hidden_items_hide_their_subtrees() {
        let mut o = Outline::new();
        let secret = o
            .add_item(NodeId(0), None, 0, "secret section", Visibility::Private)
            .unwrap();
        let child = o
            .add_item(
                NodeId(0),
                Some(secret),
                0,
                "public child of secret",
                Visibility::Public,
            )
            .unwrap();
        let v1 = o.view_for(NodeId(1));
        assert!(v1.is_empty(), "the public child is unreachable: {v1:?}");
        let v0: Vec<ItemId> = o.view_for(NodeId(0)).into_iter().map(|(i, _)| i).collect();
        assert_eq!(v0, vec![secret, child]);
    }

    #[test]
    fn publishing_private_thinking_is_author_only() {
        let mut o = Outline::new();
        let item = o
            .add_item(NodeId(0), None, 0, "draft", Visibility::Private)
            .unwrap();
        assert_eq!(
            o.set_visibility(NodeId(1), item, Visibility::Public)
                .unwrap_err(),
            OutlineError::NotTheAuthor(NodeId(1), item)
        );
        o.set_visibility(NodeId(0), item, Visibility::Public)
            .unwrap();
        assert_eq!(o.view_for(NodeId(1)).len(), 1);
    }

    #[test]
    fn depths_follow_the_structure() {
        let mut o = Outline::new();
        let a = o
            .add_item(NodeId(0), None, 0, "1", Visibility::Public)
            .unwrap();
        let b = o
            .add_item(NodeId(0), Some(a), 0, "1.1", Visibility::Public)
            .unwrap();
        let c = o
            .add_item(NodeId(0), Some(b), 0, "1.1.1", Visibility::Public)
            .unwrap();
        let view = o.view_for(NodeId(9));
        assert_eq!(view, vec![(a, 0), (b, 1), (c, 2)]);
    }

    #[test]
    fn moves_restructure_and_reject_cycles() {
        let mut o = Outline::new();
        let a = o
            .add_item(NodeId(0), None, 0, "a", Visibility::Public)
            .unwrap();
        let b = o
            .add_item(NodeId(0), None, 1, "b", Visibility::Public)
            .unwrap();
        let a1 = o
            .add_item(NodeId(0), Some(a), 0, "a1", Visibility::Public)
            .unwrap();
        // Move a1 under b.
        o.move_item(a1, Some(b), 0).unwrap();
        assert_eq!(o.item(b).unwrap().children, vec![a1]);
        assert!(o.item(a).unwrap().children.is_empty());
        // Move b under its own child a1: cycle.
        assert_eq!(
            o.move_item(b, Some(a1), 0).unwrap_err(),
            OutlineError::WouldCycle(b)
        );
        // Move b to top-level front (a no-op structurally, position 0).
        o.move_item(b, None, 0).unwrap();
        let view: Vec<ItemId> = o.view_for(NodeId(0)).into_iter().map(|(i, _)| i).collect();
        assert_eq!(view, vec![b, a1, a]);
    }

    #[test]
    fn bad_positions_and_unknown_items_error() {
        let mut o = Outline::new();
        assert!(matches!(
            o.add_item(NodeId(0), None, 5, "x", Visibility::Public),
            Err(OutlineError::BadPosition { .. })
        ));
        assert!(o.edit_text(ItemId(9), "x").is_err());
        assert!(o.move_item(ItemId(9), None, 0).is_err());
        assert!(o.item(ItemId(9)).is_err());
        assert!(o.is_empty());
    }
}
