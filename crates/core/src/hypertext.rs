//! Multi-user hypertext (§3.2.3): "the hypertext document (or network) is
//! constructed by a number of users adding nodes to the network in an
//! independent manner. Facilities must then be provided to deal
//! explicitly with the conflicts inherent in this process" — plus Sepia's
//! extension of typed nodes representing the cooperative work plan.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// Names a hypertext node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HyperNodeId(pub u64);

/// The node types (Sepia-style work-plan vocabulary plus plain content).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeType {
    /// Ordinary content.
    Content,
    /// An issue to resolve (work plan).
    Issue,
    /// A position on an issue.
    Position,
    /// An argument for/against a position.
    Argument,
}

/// Typed, directed links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LinkType {
    /// Generic reference.
    Reference,
    /// `Position` responds-to `Issue`.
    RespondsTo,
    /// `Argument` supports `Position`.
    Supports,
    /// `Argument` objects-to `Position`.
    ObjectsTo,
}

/// One hypertext node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperNode {
    /// Its id.
    pub id: HyperNodeId,
    /// Its type.
    pub node_type: NodeType,
    /// Who created it.
    pub author: NodeId,
    /// Content text.
    pub content: String,
    /// Version counter for conflict detection.
    pub version: u64,
    /// When created.
    pub created: SimTime,
}

/// Errors from hypertext operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HypertextError {
    /// Unknown node.
    UnknownNode(HyperNodeId),
    /// A stale edit: the editor based its change on an old version.
    VersionConflict {
        /// The node.
        node: HyperNodeId,
        /// The editor's base version.
        base: u64,
        /// The node's current version.
        current: u64,
    },
    /// A typed link violating the vocabulary (e.g. Supports onto Issue).
    IllTypedLink {
        /// The link type.
        link: LinkType,
        /// Source node type.
        from: NodeType,
        /// Target node type.
        to: NodeType,
    },
}

impl fmt::Display for HypertextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HypertextError::UnknownNode(n) => write!(f, "unknown node {}", n.0),
            HypertextError::VersionConflict {
                node,
                base,
                current,
            } => {
                write!(
                    f,
                    "edit of node {} based on v{base} but current is v{current}",
                    node.0
                )
            }
            HypertextError::IllTypedLink { link, from, to } => {
                write!(f, "{link:?} link not allowed from {from:?} to {to:?}")
            }
        }
    }
}

impl std::error::Error for HypertextError {}

/// The shared hypertext network.
///
/// # Examples
///
/// ```
/// use cscw_core::hypertext::{HypertextNetwork, LinkType, NodeType};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut net = HypertextNetwork::new();
/// let issue = net.add_node(NodeId(0), NodeType::Issue, "Which protocol?", SimTime::ZERO);
/// let pos = net.add_node(NodeId(1), NodeType::Position, "Use multicast", SimTime::ZERO);
/// net.add_link(pos, issue, LinkType::RespondsTo)?;
/// assert_eq!(net.links_from(pos).len(), 1);
/// # Ok::<(), cscw_core::hypertext::HypertextError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct HypertextNetwork {
    nodes: BTreeMap<HyperNodeId, HyperNode>,
    links: BTreeSet<(HyperNodeId, HyperNodeId, LinkType)>,
    next: u64,
    conflicts: u64,
}

impl HypertextNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        HypertextNetwork::default()
    }

    /// Adds a node; concurrent independent additions never conflict
    /// (each gets a fresh id).
    pub fn add_node(
        &mut self,
        author: NodeId,
        node_type: NodeType,
        content: impl Into<String>,
        at: SimTime,
    ) -> HyperNodeId {
        let id = HyperNodeId(self.next);
        self.next += 1;
        self.nodes.insert(
            id,
            HyperNode {
                id,
                node_type,
                author,
                content: content.into(),
                version: 0,
                created: at,
            },
        );
        id
    }

    /// Edits a node's content, optimistic-concurrency style: the caller
    /// states the version its edit was based on.
    ///
    /// # Errors
    ///
    /// [`HypertextError::VersionConflict`] when the base is stale — the
    /// explicit conflict handling the paper calls for.
    pub fn edit_node(
        &mut self,
        id: HyperNodeId,
        base_version: u64,
        content: impl Into<String>,
    ) -> Result<u64, HypertextError> {
        let node = self
            .nodes
            .get_mut(&id)
            .ok_or(HypertextError::UnknownNode(id))?;
        if node.version != base_version {
            self.conflicts += 1;
            return Err(HypertextError::VersionConflict {
                node: id,
                base: base_version,
                current: node.version,
            });
        }
        node.content = content.into();
        node.version += 1;
        Ok(node.version)
    }

    /// Adds a typed link, enforcing the work-plan vocabulary.
    ///
    /// # Errors
    ///
    /// Unknown endpoints or ill-typed links fail.
    pub fn add_link(
        &mut self,
        from: HyperNodeId,
        to: HyperNodeId,
        link: LinkType,
    ) -> Result<(), HypertextError> {
        let from_type = self.node(from)?.node_type;
        let to_type = self.node(to)?.node_type;
        let ok = match link {
            LinkType::Reference => true,
            LinkType::RespondsTo => from_type == NodeType::Position && to_type == NodeType::Issue,
            LinkType::Supports | LinkType::ObjectsTo => {
                from_type == NodeType::Argument && to_type == NodeType::Position
            }
        };
        if !ok {
            return Err(HypertextError::IllTypedLink {
                link,
                from: from_type,
                to: to_type,
            });
        }
        self.links.insert((from, to, link));
        Ok(())
    }

    /// Looks up a node.
    ///
    /// # Errors
    ///
    /// [`HypertextError::UnknownNode`] if absent.
    pub fn node(&self, id: HyperNodeId) -> Result<&HyperNode, HypertextError> {
        self.nodes.get(&id).ok_or(HypertextError::UnknownNode(id))
    }

    /// Outgoing links of a node.
    pub fn links_from(&self, id: HyperNodeId) -> Vec<(HyperNodeId, LinkType)> {
        self.links
            .iter()
            .filter(|(f, _, _)| *f == id)
            .map(|&(_, t, l)| (t, l))
            .collect()
    }

    /// Incoming links of a node.
    pub fn links_to(&self, id: HyperNodeId) -> Vec<(HyperNodeId, LinkType)> {
        self.links
            .iter()
            .filter(|(_, t, _)| *t == id)
            .map(|&(f, _, l)| (f, l))
            .collect()
    }

    /// Version conflicts detected so far.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the network is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn independent_additions_never_conflict() {
        let mut net = HypertextNetwork::new();
        let a = net.add_node(NodeId(0), NodeType::Content, "A", NOW);
        let b = net.add_node(NodeId(1), NodeType::Content, "B", NOW);
        assert_ne!(a, b);
        assert_eq!(net.len(), 2);
        assert_eq!(net.conflicts(), 0);
    }

    #[test]
    fn stale_edit_is_a_version_conflict() {
        let mut net = HypertextNetwork::new();
        let n = net.add_node(NodeId(0), NodeType::Content, "v0", NOW);
        // Two users read v0; the first edit wins.
        assert_eq!(net.edit_node(n, 0, "from user 1").unwrap(), 1);
        let err = net.edit_node(n, 0, "from user 2").unwrap_err();
        assert_eq!(
            err,
            HypertextError::VersionConflict {
                node: n,
                base: 0,
                current: 1
            }
        );
        assert_eq!(net.conflicts(), 1);
        // User 2 re-reads and retries.
        assert_eq!(net.edit_node(n, 1, "merged").unwrap(), 2);
    }

    #[test]
    fn typed_links_enforce_the_work_plan_vocabulary() {
        let mut net = HypertextNetwork::new();
        let issue = net.add_node(NodeId(0), NodeType::Issue, "?", NOW);
        let pos = net.add_node(NodeId(1), NodeType::Position, "!", NOW);
        let arg = net.add_node(NodeId(2), NodeType::Argument, "because", NOW);
        net.add_link(pos, issue, LinkType::RespondsTo).unwrap();
        net.add_link(arg, pos, LinkType::Supports).unwrap();
        assert!(matches!(
            net.add_link(arg, issue, LinkType::Supports),
            Err(HypertextError::IllTypedLink { .. })
        ));
        assert!(matches!(
            net.add_link(issue, pos, LinkType::RespondsTo),
            Err(HypertextError::IllTypedLink { .. })
        ));
        // References connect anything.
        net.add_link(issue, arg, LinkType::Reference).unwrap();
    }

    #[test]
    fn link_queries() {
        let mut net = HypertextNetwork::new();
        let a = net.add_node(NodeId(0), NodeType::Content, "a", NOW);
        let b = net.add_node(NodeId(0), NodeType::Content, "b", NOW);
        net.add_link(a, b, LinkType::Reference).unwrap();
        assert_eq!(net.links_from(a), vec![(b, LinkType::Reference)]);
        assert_eq!(net.links_to(b), vec![(a, LinkType::Reference)]);
        assert!(net.links_from(b).is_empty());
    }

    #[test]
    fn unknown_nodes_error() {
        let mut net = HypertextNetwork::new();
        let ghost = HyperNodeId(99);
        assert!(net.node(ghost).is_err());
        assert!(net.edit_node(ghost, 0, "x").is_err());
        let a = net.add_node(NodeId(0), NodeType::Content, "a", NOW);
        assert!(net.add_link(a, ghost, LinkType::Reference).is_err());
    }
}
