//! Sessions across the Johansen space–time matrix (Figure 1 of the
//! paper), with the *seamless transitions* §3.1 demands: "work often
//! switches rapidly between asynchronous and synchronous interactions.
//! CSCW researchers now highlight the need to support these transitions
//! in as seamless a manner as possible."
//!
//! A [`Session`] carries its participants, its shared artefacts and its
//! current [`SessionMode`]; switching modes preserves all state and logs
//! a transition record (experiment E12 measures continuity and cost).

use std::collections::BTreeSet;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The time dimension of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeMode {
    /// Same time: participants interact synchronously.
    Synchronous,
    /// Different time: participants contribute when they can.
    Asynchronous,
}

/// The place dimension of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaceMode {
    /// Same place — co-located (logically: high-bandwidth, low-latency
    /// accessibility to each other).
    CoLocated,
    /// Different places — remote.
    Remote,
}

/// One cell of the space–time matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionMode {
    /// Same or different time.
    pub time: TimeMode,
    /// Same or different place.
    pub place: PlaceMode,
}

impl SessionMode {
    /// Face-to-face interaction (same time, same place).
    pub const FACE_TO_FACE: SessionMode = SessionMode {
        time: TimeMode::Synchronous,
        place: PlaceMode::CoLocated,
    };
    /// Synchronous distributed interaction.
    pub const SYNC_DISTRIBUTED: SessionMode = SessionMode {
        time: TimeMode::Synchronous,
        place: PlaceMode::Remote,
    };
    /// Asynchronous interaction (same place, different time).
    pub const ASYNC_COLOCATED: SessionMode = SessionMode {
        time: TimeMode::Asynchronous,
        place: PlaceMode::CoLocated,
    };
    /// Asynchronous distributed interaction.
    pub const ASYNC_DISTRIBUTED: SessionMode = SessionMode {
        time: TimeMode::Asynchronous,
        place: PlaceMode::Remote,
    };

    /// All four quadrants, in Figure-1 reading order.
    pub const QUADRANTS: [SessionMode; 4] = [
        SessionMode::FACE_TO_FACE,
        SessionMode::ASYNC_COLOCATED,
        SessionMode::SYNC_DISTRIBUTED,
        SessionMode::ASYNC_DISTRIBUTED,
    ];

    /// Johansen's label for the quadrant.
    pub fn label(&self) -> &'static str {
        match (self.time, self.place) {
            (TimeMode::Synchronous, PlaceMode::CoLocated) => "face-to-face interaction",
            (TimeMode::Synchronous, PlaceMode::Remote) => "synchronous distributed interaction",
            (TimeMode::Asynchronous, PlaceMode::CoLocated) => "asynchronous interaction",
            (TimeMode::Asynchronous, PlaceMode::Remote) => "asynchronous distributed interaction",
        }
    }
}

impl fmt::Display for SessionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Names a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u32);

/// A mode transition record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// From which mode.
    pub from: SessionMode,
    /// To which mode.
    pub to: SessionMode,
    /// When it happened.
    pub at: SimTime,
    /// How long the rebind took.
    pub cost: SimDuration,
}

/// Errors from session operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The participant is already in the session.
    AlreadyJoined(NodeId),
    /// The participant is not in the session.
    NotAMember(NodeId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::AlreadyJoined(n) => write!(f, "{n} already joined"),
            SessionError::NotAMember(n) => write!(f, "{n} is not a member"),
        }
    }
}

impl std::error::Error for SessionError {}

/// A cooperative session.
///
/// # Examples
///
/// ```
/// use cscw_core::session::{Session, SessionId, SessionMode};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut s = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
/// s.join(NodeId(0), SimTime::ZERO)?;
/// s.join(NodeId(1), SimTime::ZERO)?;
/// assert_eq!(s.participants().len(), 2);
/// # Ok::<(), cscw_core::session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    id: SessionId,
    mode: SessionMode,
    participants: BTreeSet<NodeId>,
    artefacts: BTreeSet<String>,
    transitions: Vec<Transition>,
}

impl Session {
    /// Creates an empty session in `mode`.
    pub fn new(id: SessionId, mode: SessionMode) -> Self {
        Session {
            id,
            mode,
            participants: BTreeSet::new(),
            artefacts: BTreeSet::new(),
            transitions: Vec::new(),
        }
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The current mode.
    pub fn mode(&self) -> SessionMode {
        self.mode
    }

    /// Current participants, ascending.
    pub fn participants(&self) -> Vec<NodeId> {
        self.participants.iter().copied().collect()
    }

    /// Shared artefact names.
    pub fn artefacts(&self) -> Vec<&str> {
        self.artefacts.iter().map(|s| s.as_str()).collect()
    }

    /// Adds a participant.
    ///
    /// # Errors
    ///
    /// [`SessionError::AlreadyJoined`] on duplicates.
    pub fn join(&mut self, who: NodeId, _at: SimTime) -> Result<(), SessionError> {
        if !self.participants.insert(who) {
            return Err(SessionError::AlreadyJoined(who));
        }
        Ok(())
    }

    /// Removes a participant.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotAMember`] if absent.
    pub fn leave(&mut self, who: NodeId, _at: SimTime) -> Result<(), SessionError> {
        if !self.participants.remove(&who) {
            return Err(SessionError::NotAMember(who));
        }
        Ok(())
    }

    /// Shares an artefact into the session.
    pub fn share(&mut self, artefact: impl Into<String>) {
        self.artefacts.insert(artefact.into());
    }

    /// Switches mode **seamlessly**: participants and artefacts are
    /// untouched; the transition and its (modelled) rebind cost are
    /// logged. The cost model: switching the time dimension re-binds the
    /// interaction machinery (200 ms); switching place re-binds transport
    /// (50 ms); both switches compound.
    pub fn switch_mode(&mut self, to: SessionMode, at: SimTime) -> Transition {
        let mut cost = SimDuration::ZERO;
        if self.mode.time != to.time {
            cost += SimDuration::from_millis(200);
        }
        if self.mode.place != to.place {
            cost += SimDuration::from_millis(50);
        }
        let t = Transition {
            from: self.mode,
            to,
            at,
            cost,
        };
        self.mode = to;
        self.transitions.push(t.clone());
        t
    }

    /// All transitions so far.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_labels_match_figure_1() {
        assert_eq!(
            SessionMode::FACE_TO_FACE.label(),
            "face-to-face interaction"
        );
        assert_eq!(
            SessionMode::ASYNC_DISTRIBUTED.label(),
            "asynchronous distributed interaction"
        );
        assert_eq!(SessionMode::QUADRANTS.len(), 4);
        let set: std::collections::HashSet<_> = SessionMode::QUADRANTS.iter().collect();
        assert_eq!(set.len(), 4, "quadrants are distinct");
    }

    #[test]
    fn join_leave_and_errors() {
        let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            s.join(NodeId(0), SimTime::ZERO).unwrap_err(),
            SessionError::AlreadyJoined(NodeId(0))
        );
        s.leave(NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            s.leave(NodeId(0), SimTime::ZERO).unwrap_err(),
            SessionError::NotAMember(NodeId(0))
        );
    }

    #[test]
    fn transitions_preserve_state() {
        let mut s = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        s.join(NodeId(1), SimTime::ZERO).unwrap();
        s.share("report.tex");
        let t = s.switch_mode(SessionMode::ASYNC_DISTRIBUTED, SimTime::from_secs(60));
        assert_eq!(t.cost, SimDuration::from_millis(200), "time switch only");
        assert_eq!(s.participants().len(), 2, "participants preserved");
        assert_eq!(s.artefacts(), vec!["report.tex"], "artefacts preserved");
        assert_eq!(s.mode(), SessionMode::ASYNC_DISTRIBUTED);
    }

    #[test]
    fn transition_cost_compounds_across_dimensions() {
        let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
        let t = s.switch_mode(SessionMode::ASYNC_DISTRIBUTED, SimTime::ZERO);
        assert_eq!(t.cost, SimDuration::from_millis(250));
        let t2 = s.switch_mode(SessionMode::ASYNC_DISTRIBUTED, SimTime::ZERO);
        assert_eq!(t2.cost, SimDuration::ZERO, "no-op switch is free");
        assert_eq!(s.transitions().len(), 2);
    }
}
