//! Sessions across the Johansen space–time matrix (Figure 1 of the
//! paper), with the *seamless transitions* §3.1 demands: "work often
//! switches rapidly between asynchronous and synchronous interactions.
//! CSCW researchers now highlight the need to support these transitions
//! in as seamless a manner as possible."
//!
//! A [`Session`] carries its participants, its shared artefacts and its
//! current [`SessionMode`]; switching modes preserves all state and logs
//! a transition record (experiment E12 measures continuity and cost).

use std::collections::BTreeSet;
use std::fmt;

use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, EventBus};
use odp_fabric::SpanCarrier;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::SpanContext;
use serde::{Deserialize, Serialize};

/// The time dimension of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeMode {
    /// Same time: participants interact synchronously.
    Synchronous,
    /// Different time: participants contribute when they can.
    Asynchronous,
}

/// The place dimension of the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlaceMode {
    /// Same place — co-located (logically: high-bandwidth, low-latency
    /// accessibility to each other).
    CoLocated,
    /// Different places — remote.
    Remote,
}

/// One cell of the space–time matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SessionMode {
    /// Same or different time.
    pub time: TimeMode,
    /// Same or different place.
    pub place: PlaceMode,
}

impl SessionMode {
    /// Face-to-face interaction (same time, same place).
    pub const FACE_TO_FACE: SessionMode = SessionMode {
        time: TimeMode::Synchronous,
        place: PlaceMode::CoLocated,
    };
    /// Synchronous distributed interaction.
    pub const SYNC_DISTRIBUTED: SessionMode = SessionMode {
        time: TimeMode::Synchronous,
        place: PlaceMode::Remote,
    };
    /// Asynchronous interaction (same place, different time).
    pub const ASYNC_COLOCATED: SessionMode = SessionMode {
        time: TimeMode::Asynchronous,
        place: PlaceMode::CoLocated,
    };
    /// Asynchronous distributed interaction.
    pub const ASYNC_DISTRIBUTED: SessionMode = SessionMode {
        time: TimeMode::Asynchronous,
        place: PlaceMode::Remote,
    };

    /// All four quadrants, in Figure-1 reading order.
    pub const QUADRANTS: [SessionMode; 4] = [
        SessionMode::FACE_TO_FACE,
        SessionMode::ASYNC_COLOCATED,
        SessionMode::SYNC_DISTRIBUTED,
        SessionMode::ASYNC_DISTRIBUTED,
    ];

    /// Johansen's label for the quadrant.
    pub fn label(&self) -> &'static str {
        match (self.time, self.place) {
            (TimeMode::Synchronous, PlaceMode::CoLocated) => "face-to-face interaction",
            (TimeMode::Synchronous, PlaceMode::Remote) => "synchronous distributed interaction",
            (TimeMode::Asynchronous, PlaceMode::CoLocated) => "asynchronous interaction",
            (TimeMode::Asynchronous, PlaceMode::Remote) => "asynchronous distributed interaction",
        }
    }
}

impl fmt::Display for SessionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Names a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u32);

/// A mode transition record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transition {
    /// From which mode.
    pub from: SessionMode,
    /// To which mode.
    pub to: SessionMode,
    /// When it happened.
    pub at: SimTime,
    /// How long the rebind took.
    pub cost: SimDuration,
}

/// Errors from session operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The participant is already in the session.
    AlreadyJoined(NodeId),
    /// The participant is not in the session.
    NotAMember(NodeId),
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::AlreadyJoined(n) => write!(f, "{n} already joined"),
            SessionError::NotAMember(n) => write!(f, "{n} is not a member"),
        }
    }
}

impl std::error::Error for SessionError {}

/// One buffered telemetry record: an open (carrying its kind) or a
/// close of `span` at `at`, ready to replay into a trace's binary
/// span log ([`odp_sim::trace::Trace::span_open`] /
/// [`odp_sim::trace::Trace::span_close`]). Allocation-free: kinds are
/// static names and the carrier is three words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// When the event happened.
    pub at: SimTime,
    /// The span's identity.
    pub span: SpanCarrier,
    /// `Some(kind)` for an open, `None` for a close.
    pub open_kind: Option<&'static str>,
}

/// Counter-based span telemetry for a session's lifecycle.
///
/// Sessions are plain library state — they have no actor context and no
/// RNG — so span ids are allocated from a counter instead of the seeded
/// RNG (`SpanContext::root_with`/`child_with`), which is every bit as
/// deterministic. A `session.live` root span covers the instrumented
/// window; each join/leave/switch hangs a child off it. Events are
/// buffered here and drained by the harness into the simulation
/// [`odp_sim::trace::Trace`], where [`odp_telemetry`]'s collector picks
/// them up alongside the wire-level spans.
#[derive(Debug, Clone)]
struct SessionSpans {
    root: SpanContext,
    next_span: u64,
    open: bool,
    events: Vec<SpanEvent>,
}

impl SessionSpans {
    fn new(trace_id: u64, at: SimTime) -> Self {
        let root = SpanContext::root_with(trace_id, 1);
        let events = vec![SpanEvent {
            at,
            span: root.carrier(),
            open_kind: Some("session.live"),
        }];
        SessionSpans {
            root,
            next_span: 1,
            open: true,
            events,
        }
    }

    fn child(&mut self, kind: &'static str, opened: SimTime, closed: SimTime) {
        if !self.open {
            return;
        }
        self.next_span += 1;
        let span = self.root.child_with(self.next_span);
        self.events.push(SpanEvent {
            at: opened,
            span: span.carrier(),
            open_kind: Some(kind),
        });
        self.events.push(SpanEvent {
            at: closed,
            span: span.carrier(),
            open_kind: None,
        });
    }

    fn close(&mut self, at: SimTime) {
        if self.open {
            self.open = false;
            self.events.push(SpanEvent {
                at,
                span: self.root.carrier(),
                open_kind: None,
            });
        }
    }
}

/// A cooperative session.
///
/// # Examples
///
/// ```
/// use cscw_core::session::{Session, SessionId, SessionMode};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut s = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
/// s.join(NodeId(0), SimTime::ZERO)?;
/// s.join(NodeId(1), SimTime::ZERO)?;
/// assert_eq!(s.participants().len(), 2);
/// # Ok::<(), cscw_core::session::SessionError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Session {
    id: SessionId,
    mode: SessionMode,
    participants: BTreeSet<NodeId>,
    artefacts: BTreeSet<String>,
    transitions: Vec<Transition>,
    spans: Option<SessionSpans>,
}

impl Session {
    /// Creates an empty session in `mode`.
    pub fn new(id: SessionId, mode: SessionMode) -> Self {
        Session {
            id,
            mode,
            participants: BTreeSet::new(),
            artefacts: BTreeSet::new(),
            transitions: Vec::new(),
            spans: None,
        }
    }

    /// Starts span telemetry: opens a `session.live` root span under
    /// `trace_id` (callers pick a unique id, e.g. from the session id).
    /// Off unless called — existing sessions record nothing.
    pub fn enable_telemetry(&mut self, trace_id: u64, at: SimTime) {
        if self.spans.is_none() {
            self.spans = Some(SessionSpans::new(trace_id, at));
        }
    }

    /// Closes the `session.live` root span. Further operations stop
    /// minting spans; buffered events remain drainable.
    pub fn close_telemetry(&mut self, at: SimTime) {
        if let Some(spans) = &mut self.spans {
            spans.close(at);
        }
    }

    /// Drains the buffered span events so a harness can replay them into
    /// the simulation trace's binary span log:
    ///
    /// ```
    /// # use cscw_core::session::{Session, SessionId, SessionMode};
    /// # use odp_sim::{net::NodeId, time::SimTime, trace::Trace};
    /// # let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
    /// # s.enable_telemetry(7, SimTime::ZERO);
    /// # s.close_telemetry(SimTime::ZERO);
    /// # let mut trace = Trace::new();
    /// for e in s.drain_telemetry() {
    ///     match e.open_kind {
    ///         Some(kind) => trace.span_open(e.at, NodeId(0), e.span, kind),
    ///         None => trace.span_close(e.at, NodeId(0), e.span),
    ///     }
    /// }
    /// ```
    ///
    /// (Or use [`Session::replay_telemetry`], which is that loop.)
    pub fn drain_telemetry(&mut self) -> Vec<SpanEvent> {
        match &mut self.spans {
            Some(spans) => std::mem::take(&mut spans.events),
            None => Vec::new(),
        }
    }

    /// Drains the buffered span events straight into `trace`'s binary
    /// span log, attributed to `node`.
    pub fn replay_telemetry(&mut self, trace: &mut odp_sim::trace::Trace, node: NodeId) {
        for e in self.drain_telemetry() {
            match e.open_kind {
                Some(kind) => trace.span_open(e.at, node, e.span, kind),
                None => trace.span_close(e.at, node, e.span),
            }
        }
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The current mode.
    pub fn mode(&self) -> SessionMode {
        self.mode
    }

    /// Current participants, ascending.
    pub fn participants(&self) -> Vec<NodeId> {
        self.participants.iter().copied().collect()
    }

    /// Shared artefact names.
    pub fn artefacts(&self) -> Vec<&str> {
        self.artefacts.iter().map(|s| s.as_str()).collect()
    }

    /// Adds a participant.
    ///
    /// # Errors
    ///
    /// [`SessionError::AlreadyJoined`] on duplicates.
    pub fn join(&mut self, who: NodeId, at: SimTime) -> Result<(), SessionError> {
        if !self.participants.insert(who) {
            return Err(SessionError::AlreadyJoined(who));
        }
        if let Some(spans) = &mut self.spans {
            spans.child("session.join", at, at);
        }
        Ok(())
    }

    /// Removes a participant.
    ///
    /// # Errors
    ///
    /// [`SessionError::NotAMember`] if absent.
    pub fn leave(&mut self, who: NodeId, at: SimTime) -> Result<(), SessionError> {
        if !self.participants.remove(&who) {
            return Err(SessionError::NotAMember(who));
        }
        if let Some(spans) = &mut self.spans {
            spans.child("session.leave", at, at);
        }
        Ok(())
    }

    /// Shares an artefact into the session.
    pub fn share(&mut self, artefact: impl Into<String>) {
        self.artefacts.insert(artefact.into());
    }

    /// Switches mode **seamlessly** (participants and artefacts are
    /// untouched; the transition and its modelled rebind cost are
    /// logged — 200 ms to re-bind interaction machinery across the time
    /// dimension, 50 ms to re-bind transport across place, compounding),
    /// announcing the transition on the cooperation-event bus as a
    /// [`CoopKind::SessionSwitched`] broadcast from `by` on
    /// `session/{id}` — a seam the *other* participants need to notice,
    /// not just the one who pulled the lever.
    ///
    /// [`CoopKind::SessionSwitched`]: odp_awareness::bus::CoopKind::SessionSwitched
    pub fn switch_mode_via(
        &mut self,
        bus: &mut EventBus,
        by: NodeId,
        to: SessionMode,
        at: SimTime,
    ) -> (Transition, Vec<BusDelivery>) {
        let t = self.switch_mode_inner(to, at);
        let deliveries = bus.publish(CoopEvent::broadcast(
            by,
            format!("session/{}", self.id.0),
            at,
            CoopKind::SessionSwitched {
                from: t.from.label().to_owned(),
                to: t.to.label().to_owned(),
            },
        ));
        (t, deliveries)
    }

    fn switch_mode_inner(&mut self, to: SessionMode, at: SimTime) -> Transition {
        let mut cost = SimDuration::ZERO;
        if self.mode.time != to.time {
            cost += SimDuration::from_millis(200);
        }
        if self.mode.place != to.place {
            cost += SimDuration::from_millis(50);
        }
        let t = Transition {
            from: self.mode,
            to,
            at,
            cost,
        };
        self.mode = to;
        // The switch span stays open for the rebind cost: its duration
        // *is* the seam the transition machinery must hide.
        if let Some(spans) = &mut self.spans {
            spans.child("session.switch", at, at + cost);
        }
        self.transitions.push(t.clone());
        t
    }

    /// All transitions so far.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_labels_match_figure_1() {
        assert_eq!(
            SessionMode::FACE_TO_FACE.label(),
            "face-to-face interaction"
        );
        assert_eq!(
            SessionMode::ASYNC_DISTRIBUTED.label(),
            "asynchronous distributed interaction"
        );
        assert_eq!(SessionMode::QUADRANTS.len(), 4);
        let set: std::collections::HashSet<_> = SessionMode::QUADRANTS.iter().collect();
        assert_eq!(set.len(), 4, "quadrants are distinct");
    }

    #[test]
    fn join_leave_and_errors() {
        let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            s.join(NodeId(0), SimTime::ZERO).unwrap_err(),
            SessionError::AlreadyJoined(NodeId(0))
        );
        s.leave(NodeId(0), SimTime::ZERO).unwrap();
        assert_eq!(
            s.leave(NodeId(0), SimTime::ZERO).unwrap_err(),
            SessionError::NotAMember(NodeId(0))
        );
    }

    #[test]
    fn transitions_preserve_state() {
        let mut s = Session::new(SessionId(1), SessionMode::SYNC_DISTRIBUTED);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        s.join(NodeId(1), SimTime::ZERO).unwrap();
        s.share("report.tex");
        let t = s
            .switch_mode_via(
                &mut EventBus::new(),
                NodeId(0),
                SessionMode::ASYNC_DISTRIBUTED,
                SimTime::from_secs(60),
            )
            .0;
        assert_eq!(t.cost, SimDuration::from_millis(200), "time switch only");
        assert_eq!(s.participants().len(), 2, "participants preserved");
        assert_eq!(s.artefacts(), vec!["report.tex"], "artefacts preserved");
        assert_eq!(s.mode(), SessionMode::ASYNC_DISTRIBUTED);
    }

    #[test]
    fn session_telemetry_builds_a_well_formed_lifecycle_trace() {
        use odp_sim::trace::Trace;
        use odp_telemetry::collector::Collector;

        let mut s = Session::new(SessionId(3), SessionMode::SYNC_DISTRIBUTED);
        s.enable_telemetry(42, SimTime::ZERO);
        s.join(NodeId(0), SimTime::from_millis(10)).unwrap();
        s.join(NodeId(1), SimTime::from_millis(20)).unwrap();
        let _ = s.switch_mode_via(
            &mut EventBus::new(),
            NodeId(0),
            SessionMode::ASYNC_DISTRIBUTED,
            SimTime::from_secs(60),
        );
        s.leave(NodeId(1), SimTime::from_secs(90)).unwrap();
        s.close_telemetry(SimTime::from_secs(100));

        let mut trace = Trace::new();
        s.replay_telemetry(&mut trace, NodeId(9));
        let collector = Collector::from_trace(&trace);
        assert_eq!(collector.well_formed(), Ok(()), "span audit must pass");
        assert_eq!(collector.len(), 1, "one session, one trace");
        let dag = collector.trace(42).unwrap();
        assert_eq!(dag.len(), 5, "root + join + join + switch + leave");
        let kinds: std::collections::BTreeSet<&str> =
            dag.spans().map(|s| s.kind.as_str()).collect();
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            [
                "session.join",
                "session.leave",
                "session.live",
                "session.switch"
            ]
        );
        // The switch span's duration is the rebind cost (a time switch).
        let switch = dag.spans().find(|s| s.kind == "session.switch").unwrap();
        assert_eq!(
            switch.closed.unwrap().saturating_since(switch.opened),
            SimDuration::from_millis(200)
        );
        // Draining empties the buffer; telemetry stays closed.
        assert!(s.drain_telemetry().is_empty());
        assert!(s.join(NodeId(5), SimTime::from_secs(200)).is_ok());
        assert!(s.drain_telemetry().is_empty(), "closed spans mint nothing");
    }

    #[test]
    fn sessions_without_telemetry_buffer_nothing() {
        let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        assert!(s.drain_telemetry().is_empty());
    }

    #[test]
    fn via_transitions_broadcast_to_the_other_participants() {
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        bus.register(NodeId(1), 0.0);
        let mut s = Session::new(SessionId(4), SessionMode::SYNC_DISTRIBUTED);
        s.join(NodeId(0), SimTime::ZERO).unwrap();
        s.join(NodeId(1), SimTime::ZERO).unwrap();
        let (t, seen) = s.switch_mode_via(
            &mut bus,
            NodeId(0),
            SessionMode::ASYNC_DISTRIBUTED,
            SimTime::from_secs(60),
        );
        assert_eq!(t.cost, SimDuration::from_millis(200));
        // The switcher is the actor, so only the other participant hears it.
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].observer, NodeId(1));
        assert_eq!(seen[0].event.artefact, "session/4");
        match &seen[0].event.kind {
            CoopKind::SessionSwitched { from, to } => {
                assert_eq!(from, "synchronous distributed interaction");
                assert_eq!(to, "asynchronous distributed interaction");
            }
            other => panic!("expected a session switch, got {other:?}"),
        }
    }

    #[test]
    fn transition_cost_compounds_across_dimensions() {
        let mut s = Session::new(SessionId(1), SessionMode::FACE_TO_FACE);
        let t = s
            .switch_mode_via(
                &mut EventBus::new(),
                NodeId(0),
                SessionMode::ASYNC_DISTRIBUTED,
                SimTime::ZERO,
            )
            .0;
        assert_eq!(t.cost, SimDuration::from_millis(250));
        let t2 = s
            .switch_mode_via(
                &mut EventBus::new(),
                NodeId(0),
                SessionMode::ASYNC_DISTRIBUTED,
                SimTime::ZERO,
            )
            .0;
        assert_eq!(t2.cost, SimDuration::ZERO, "no-op switch is free");
        assert_eq!(s.transitions().len(), 2);
    }
}
