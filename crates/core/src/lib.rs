#![warn(missing_docs)]

//! # cscw-core — the groupware toolkit
//!
//! The paper's primary "contribution" is a requirements catalogue; this
//! crate is the toolkit that meets it, tying the substrate crates
//! together into the application concepts of §2–§3:
//!
//! - [`session`] — sessions across the Figure-1 space–time matrix with
//!   seamless transitions;
//! - [`workspace`] — shared workspaces: store + Shen–Dewan access control
//!   + awareness + public history;
//! - [`document`] — Quilt-style co-authoring (base + annotations);
//! - [`hypertext`] — multi-user hypertext with explicit conflict handling
//!   and Sepia work-plan node types;
//! - [`conference`] — collaboration-transparent (floor controlled) and
//!   collaboration-aware conferencing;
//! - [`discovery`] — trader-mediated session discovery: sessions are
//!   advertised to and joined through the `odp-trader` federation;
//! - [`rooms`] — the rooms metaphor (offices, meeting rooms, doors);
//! - [`flightstrips`] — the Lancaster ATC flight-strip board;
//! - [`outline`] — GROVE-style multi-user outlines with public/shared/
//!   private item visibility;
//! - [`replicated`] — workspace replicas over totally-ordered multicast;
//! - [`experiments`] — the derived evaluation suite E1–E12.

pub mod conference;
pub mod discovery;
pub mod document;
pub mod experiments;
pub mod flightstrips;
pub mod hypertext;
pub mod outline;
pub mod replicated;
pub mod rooms;
pub mod session;
pub mod workspace;
