//! A replicated shared workspace: every participant's node holds a full
//! replica, kept consistent by totally-ordered group multicast, with
//! access control enforced at the submitting replica and awareness
//! events raised at every replica.
//!
//! This is the "collaboration-aware" infrastructure of §3.2.2 built from
//! the substrates: `odp-groupcomm` for dissemination, `odp-access` for
//! policy, `odp-awareness` (via [`crate::workspace::SharedWorkspace`])
//! for the information flow of Figure 2b. Total ordering makes replica
//! application order identical, so replicas converge under concurrent
//! writes.

use odp_groupcomm::actors::{GroupActor, GroupApp};
use odp_groupcomm::membership::View;
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_net::ctx::NetCtx;
use odp_sim::net::NodeId;

use crate::workspace::{ObjectId, SharedWorkspace};

/// A workspace operation disseminated to all replicas.
#[derive(Debug, Clone, PartialEq)]
pub struct WsOp {
    /// The acting participant.
    pub actor: u32,
    /// The artefact.
    pub object: u64,
    /// The new value.
    pub value: String,
}

/// The per-node replica application: checks policy before multicasting
/// and applies delivered operations in total order.
pub struct WorkspaceReplica {
    workspace: SharedWorkspace,
    applied: u64,
    rejected: u64,
    awareness_delivered: u64,
}

impl WorkspaceReplica {
    /// Wraps a configured workspace (same initial configuration must be
    /// installed on every replica).
    pub fn new(workspace: SharedWorkspace) -> Self {
        WorkspaceReplica {
            workspace,
            applied: 0,
            rejected: 0,
            awareness_delivered: 0,
        }
    }

    /// The replica's workspace (post-run inspection).
    pub fn workspace(&self) -> &SharedWorkspace {
        &self.workspace
    }

    /// Operations applied from the total order.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Local submissions rejected by policy (never multicast).
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Awareness deliveries raised at this replica.
    pub fn awareness_delivered(&self) -> u64 {
        self.awareness_delivered
    }

    /// The current value of an artefact at this replica, if readable.
    pub fn peek(
        &mut self,
        reader: NodeId,
        object: u64,
        now: odp_sim::time::SimTime,
    ) -> Option<String> {
        self.workspace
            .read(reader, ObjectId(object), now)
            .ok()
            .map(|(v, _)| v)
    }
}

impl GroupApp<WsOp> for WorkspaceReplica {
    fn on_command(&mut self, ctx: &mut dyn NetCtx<GcMsg<WsOp>>, cmd: WsOp) -> Option<WsOp> {
        // Policy gate at the submitting replica: a denied write is
        // rejected before it ever reaches the wire.
        let probe = self.workspace.policy().check(
            odp_access::matrix::Subject(cmd.actor),
            &odp_access::rbac::ObjectPath::new(format!("shared/{}", cmd.object)),
            odp_access::rights::Rights::WRITE,
        );
        if probe.allowed {
            Some(cmd)
        } else {
            self.rejected += 1;
            ctx.trace(
                "ws.rejected",
                format!("actor {} on obj {}", cmd.actor, cmd.object),
            );
            None
        }
    }

    fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<WsOp>>, d: Delivery<WsOp>) {
        let op = d.payload;
        match self
            .workspace
            .write(NodeId(op.actor), ObjectId(op.object), op.value, ctx.now())
        {
            Ok(deliveries) => {
                self.applied += 1;
                self.awareness_delivered += deliveries.len() as u64;
                ctx.trace("ws.applied", format!("obj {} by {}", op.object, op.actor));
            }
            Err(e) => {
                // Replicas share one policy, so a policy denial here means
                // the configurations diverged — surface it loudly.
                ctx.trace("ws.replica_error", e.to_string());
            }
        }
    }
}

/// Builds one replica actor for `me`: a [`GroupActor`] carrying a
/// [`WorkspaceReplica`] over totally-ordered reliable multicast.
pub fn replica_actor(
    me: NodeId,
    view: View,
    workspace: SharedWorkspace,
) -> GroupActor<WsOp, WorkspaceReplica> {
    GroupActor::new(
        me,
        view,
        Ordering::Total,
        Reliability::reliable(),
        WorkspaceReplica::new(workspace),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_access::rbac::{Effect, RoleId};
    use odp_access::rights::Rights;
    use odp_groupcomm::membership::GroupId;
    use odp_sim::prelude::*;

    fn configured_workspace(n: u32, writers: &[u32]) -> SharedWorkspace {
        let mut ws = SharedWorkspace::new();
        ws.policy_mut()
            .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
        ws.policy_mut()
            .add_rule(RoleId(2), "shared".into(), Rights::READ, Effect::Allow);
        for i in 0..n {
            let role = if writers.contains(&i) {
                RoleId(1)
            } else {
                RoleId(2)
            };
            ws.policy_mut().assign(odp_access::matrix::Subject(i), role);
            ws.register_observer(NodeId(i), 0.0);
        }
        ws.create_artefact(ObjectId(1), "shared/1", "v0");
        ws
    }

    fn build(n: u32, writers: &[u32], seed: u64) -> Sim<GcMsg<WsOp>> {
        let view = View::initial(GroupId(0), (0..n).map(NodeId));
        let mut net = Network::new(LinkSpec::wan(SimDuration::from_millis(15)));
        net.set_default_link(LinkSpec::wan(SimDuration::from_millis(15)));
        let mut sim = SimBuilder::new(seed).network(net).build();
        for i in 0..n {
            sim.add_actor(
                NodeId(i),
                replica_actor(NodeId(i), view.clone(), configured_workspace(n, writers)),
            );
        }
        sim
    }

    fn replica(sim: &Sim<GcMsg<WsOp>>, i: u32) -> &GroupActor<WsOp, WorkspaceReplica> {
        sim.get(ActorHandle::of(NodeId(i))).expect("replica exists")
    }

    #[test]
    fn concurrent_writes_converge_identically_everywhere() {
        let mut sim = build(3, &[0, 1, 2], 17);
        // All three replicas write concurrently.
        for i in 0..3u32 {
            sim.inject(
                SimTime::from_millis(10),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(WsOp {
                    actor: i,
                    object: 1,
                    value: format!("from-{i}"),
                }),
            );
        }
        sim.run(Until::For(SimDuration::from_secs(10)));
        let histories: Vec<Vec<String>> = (0..3)
            .map(|i| {
                replica(&sim, i)
                    .app()
                    .workspace()
                    .history()
                    .iter()
                    .map(|h| format!("{}:{}", h.who, h.artefact))
                    .collect()
            })
            .collect();
        assert_eq!(histories[0].len(), 3, "all writes applied");
        assert_eq!(histories[0], histories[1], "replica 1 agrees");
        assert_eq!(histories[0], histories[2], "replica 2 agrees");
        for i in 0..3 {
            assert_eq!(replica(&sim, i).app().applied(), 3);
        }
    }

    #[test]
    fn denied_writers_are_stopped_at_their_own_replica() {
        // Participant 2 is read-only.
        let mut sim = build(3, &[0, 1], 17);
        sim.inject(
            SimTime::from_millis(10),
            NodeId(2),
            NodeId(2),
            GcMsg::AppCmd(WsOp {
                actor: 2,
                object: 1,
                value: "sneaky".into(),
            }),
        );
        sim.run(Until::For(SimDuration::from_secs(5)));
        assert_eq!(sim.trace().with_label("ws.rejected").count(), 1);
        for i in 0..3 {
            assert_eq!(replica(&sim, i).app().applied(), 0, "nothing hit the wire");
        }
    }

    #[test]
    fn every_replica_raises_awareness_locally() {
        let mut sim = build(3, &[0, 1, 2], 23);
        sim.inject(
            SimTime::from_millis(10),
            NodeId(0),
            NodeId(0),
            GcMsg::AppCmd(WsOp {
                actor: 0,
                object: 1,
                value: "hello".into(),
            }),
        );
        sim.run(Until::For(SimDuration::from_secs(5)));
        for i in 0..3u32 {
            // Each replica's awareness engine notified the 2 non-actors.
            assert_eq!(
                replica(&sim, i).app().awareness_delivered(),
                2,
                "replica {i}"
            );
        }
        // Replica errors would indicate configuration divergence.
        assert_eq!(sim.trace().with_label("ws.replica_error").count(), 0);
    }
}
