//! The shared workspace: a "publicly available workspace which enables
//! \[participants\] to 'at a glance' monitor the overall state of the
//! system and the work of others" (§2.3) — the integration point of
//! store, access control and awareness.
//!
//! Every operation is access-checked against a Shen–Dewan policy and, if
//! permitted, published to the awareness engine; the workspace also keeps
//! the *public history* that gives the paper's "accountability in the
//! collective process".

use odp_access::matrix::Subject;
use odp_access::rbac::{ObjectPath, RbacPolicy};
use odp_access::rights::Rights;
use odp_awareness::bus::{BusDelivery, CoopEvent, CoopKind, EventBus};
use odp_awareness::events::{ActivityKind, AwarenessEvent};
use odp_concurrency::store::{ObjectStore, StoreError};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

pub use odp_concurrency::store::ObjectId;

/// An awareness weighting function: maps `(observer, event)` to a weight
/// in `[0, 1]` (see [`odp_awareness::events::WeightFn`]).
pub type WorkspaceWeightFn = Box<dyn Fn(NodeId, &AwarenessEvent) -> f64 + Send>;

/// One entry of the public history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryEntry {
    /// Who acted (the workspace maps participants to nodes 1:1).
    pub who: u32,
    /// The artefact path.
    pub artefact: String,
    /// What they did.
    pub kind: ActivityKind,
    /// When.
    pub at: SimTime,
}

/// Errors from workspace operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkspaceError {
    /// The policy denied the access (with the policy's explanation).
    Denied(String),
    /// Underlying store failure.
    Store(StoreError),
}

impl fmt::Display for WorkspaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkspaceError::Denied(why) => write!(f, "access denied: {why}"),
            WorkspaceError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for WorkspaceError {}

impl From<StoreError> for WorkspaceError {
    fn from(e: StoreError) -> Self {
        WorkspaceError::Store(e)
    }
}

/// A shared workspace binding store + policy + awareness.
///
/// Awareness flows through the rights-gated cooperation-event bus: the
/// same [`RbacPolicy`] that adjudicates the *access* also gates who may
/// *observe* it, so an observer without `READ` rights on an artefact
/// never learns the artefact was touched (the bus discloses how much was
/// withheld via [`EventBus::suppressed_by_rights`]).
///
/// # Examples
///
/// ```
/// use cscw_core::workspace::{ObjectId, SharedWorkspace};
/// use odp_access::prelude::*;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut ws = SharedWorkspace::new();
/// ws.policy_mut().add_rule(RoleId(1), "notes".into(), Rights::ALL, Effect::Allow);
/// ws.policy_mut().assign(Subject(0), RoleId(1));
/// ws.policy_mut().assign(Subject(1), RoleId(1));
/// ws.create_artefact(ObjectId(1), "notes/today", "agenda");
/// ws.register_observer(NodeId(1), 0.0);
/// ws.register_observer(NodeId(2), 0.0); // no rights on "notes"
/// let deliveries = ws.write(NodeId(0), ObjectId(1), "agenda v2", SimTime::ZERO)?;
/// assert_eq!(deliveries.len(), 1, "only the rightful observer saw the edit");
/// assert_eq!(ws.bus().suppressed_by_rights(), 1, "the withholding is disclosed");
/// # Ok::<(), cscw_core::workspace::WorkspaceError>(())
/// ```
pub struct SharedWorkspace {
    store: ObjectStore,
    bus: EventBus,
    paths: std::collections::BTreeMap<ObjectId, ObjectPath>,
    history: Vec<HistoryEntry>,
}

impl Default for SharedWorkspace {
    fn default() -> Self {
        SharedWorkspace::new()
    }
}

impl SharedWorkspace {
    /// Creates an empty workspace (every event weighs 1.0 by default;
    /// install a spatial weighting via
    /// [`SharedWorkspace::set_weight_fn`]). The bus's rights gate is
    /// armed from the start: the workspace policy is default-deny, so
    /// observers only hear about artefacts they could read.
    pub fn new() -> Self {
        let mut bus = EventBus::new();
        bus.set_policy(RbacPolicy::new());
        SharedWorkspace {
            store: ObjectStore::new(),
            bus,
            paths: std::collections::BTreeMap::new(),
            history: Vec::new(),
        }
    }

    /// The access policy (add rules, assign roles). This is the same
    /// policy the awareness gate consults.
    pub fn policy_mut(&mut self) -> &mut RbacPolicy {
        self.bus.policy_mut()
    }

    /// Read access to the policy.
    pub fn policy(&self) -> &RbacPolicy {
        self.bus.policy()
    }

    /// The underlying cooperation-event bus (observer statistics,
    /// rights-suppression disclosure).
    pub fn bus(&self) -> &EventBus {
        &self.bus
    }

    /// Mutable access to the bus (e.g. to disarm the gate in a trusted
    /// closed-team configuration).
    pub fn bus_mut(&mut self) -> &mut EventBus {
        &mut self.bus
    }

    /// Registers an awareness observer with an interest threshold.
    pub fn register_observer(&mut self, who: NodeId, threshold: f64) {
        self.bus.register(who, threshold);
    }

    /// Installs an awareness weighting function (e.g. from a
    /// [`odp_awareness::spatial::SpatialModel`]).
    pub fn set_weight_fn(&mut self, weight: WorkspaceWeightFn) {
        self.bus.set_awareness_weight_fn(weight);
    }

    /// Creates an artefact at an access-control path.
    pub fn create_artefact(
        &mut self,
        id: ObjectId,
        path: impl Into<ObjectPath>,
        initial: impl Into<String>,
    ) {
        self.store.create(id, initial);
        self.paths.insert(id, path.into());
    }

    fn path_of(&self, id: ObjectId) -> ObjectPath {
        self.paths
            .get(&id)
            .cloned()
            .unwrap_or_else(|| ObjectPath::new(format!("obj/{}", id.0)))
    }

    fn check(&self, who: NodeId, id: ObjectId, needed: Rights) -> Result<(), WorkspaceError> {
        let path = self.path_of(id);
        let decision = self.bus.policy().check(Subject(who.0), &path, needed);
        if decision.allowed {
            Ok(())
        } else {
            Err(WorkspaceError::Denied(self.bus.policy().explain(
                Subject(who.0),
                &path,
                needed,
            )))
        }
    }

    fn publish(
        &mut self,
        who: NodeId,
        id: ObjectId,
        kind: ActivityKind,
        at: SimTime,
    ) -> Vec<BusDelivery> {
        let artefact = self.path_of(id).to_string();
        self.history.push(HistoryEntry {
            who: who.0,
            artefact: artefact.clone(),
            kind,
            at,
        });
        self.bus.publish(CoopEvent::broadcast(
            who,
            artefact,
            at,
            CoopKind::Activity(kind),
        ))
    }

    /// Reads an artefact (requires `READ`); peers with interest *and*
    /// `READ` rights on the artefact get a `View` awareness event.
    ///
    /// # Errors
    ///
    /// Denied accesses and unknown objects fail.
    pub fn read(
        &mut self,
        who: NodeId,
        id: ObjectId,
        at: SimTime,
    ) -> Result<(String, Vec<BusDelivery>), WorkspaceError> {
        self.check(who, id, Rights::READ)?;
        let value = self.store.read(id)?.value.clone();
        let deliveries = self.publish(who, id, ActivityKind::View, at);
        Ok((value, deliveries))
    }

    /// Writes an artefact (requires `WRITE`); peers with `READ` rights
    /// get an `Edit` event.
    ///
    /// # Errors
    ///
    /// Denied accesses and unknown objects fail.
    pub fn write(
        &mut self,
        who: NodeId,
        id: ObjectId,
        value: impl Into<String>,
        at: SimTime,
    ) -> Result<Vec<BusDelivery>, WorkspaceError> {
        self.check(who, id, Rights::WRITE)?;
        self.store.write(id, value)?;
        Ok(self.publish(who, id, ActivityKind::Edit, at))
    }

    /// The public history ("accountability in the collective process").
    pub fn history(&self) -> &[HistoryEntry] {
        &self.history
    }

    /// "At a glance": the most recent action per artefact.
    pub fn at_a_glance(&self) -> Vec<&HistoryEntry> {
        let mut latest: std::collections::BTreeMap<&str, &HistoryEntry> =
            std::collections::BTreeMap::new();
        for entry in &self.history {
            latest.insert(entry.artefact.as_str(), entry);
        }
        latest.into_values().collect()
    }

    /// Direct store access (trusted callers, e.g. experiment setup).
    pub fn store_mut(&mut self) -> &mut ObjectStore {
        &mut self.store
    }
}

impl fmt::Debug for SharedWorkspace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedWorkspace")
            .field("artefacts", &self.paths.len())
            .field("history", &self.history.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_access::rbac::{Effect, RoleId};

    fn workspace() -> SharedWorkspace {
        let mut ws = SharedWorkspace::new();
        ws.policy_mut().add_rule(
            RoleId(1),
            "docs".into(),
            Rights::READ | Rights::WRITE,
            Effect::Allow,
        );
        ws.policy_mut()
            .add_rule(RoleId(2), "docs".into(), Rights::READ, Effect::Allow);
        ws.policy_mut().assign(Subject(0), RoleId(1));
        ws.policy_mut().assign(Subject(1), RoleId(2));
        ws.create_artefact(ObjectId(1), "docs/plan", "v1");
        ws
    }

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn writes_flow_to_observers_with_rights() {
        let mut ws = workspace();
        ws.register_observer(NodeId(1), 0.0); // reader role on "docs"
        ws.register_observer(NodeId(2), 0.0); // no role at all
        let deliveries = ws.write(NodeId(0), ObjectId(1), "v2", NOW).unwrap();
        // The rightless observer is gated out, and the gate discloses it.
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].observer, NodeId(1));
        assert_eq!(deliveries[0].event.kind.activity(), ActivityKind::Edit);
        assert_eq!(ws.bus().suppressed_by_rights(), 1);
        assert_eq!(ws.bus().stats(NodeId(2)).unwrap().suppressed_by_rights, 1);
    }

    #[test]
    fn disarming_the_gate_restores_open_fanout() {
        let mut ws = workspace();
        ws.register_observer(NodeId(1), 0.0);
        ws.register_observer(NodeId(2), 0.0);
        ws.bus_mut().set_rights_gate(false);
        let deliveries = ws.write(NodeId(0), ObjectId(1), "v2", NOW).unwrap();
        assert_eq!(deliveries.len(), 2, "trusted closed team: everyone hears");
    }

    #[test]
    fn policy_denies_the_reader_role_writing() {
        let mut ws = workspace();
        let err = ws.write(NodeId(1), ObjectId(1), "nope", NOW).unwrap_err();
        assert!(matches!(err, WorkspaceError::Denied(_)));
        let (value, _) = ws.read(NodeId(1), ObjectId(1), NOW).unwrap();
        assert_eq!(value, "v1");
    }

    #[test]
    fn unknown_subjects_are_denied_by_default() {
        let mut ws = workspace();
        assert!(ws.read(NodeId(9), ObjectId(1), NOW).is_err());
    }

    #[test]
    fn history_records_everything_in_order() {
        let mut ws = workspace();
        ws.write(NodeId(0), ObjectId(1), "v2", NOW).unwrap();
        ws.read(NodeId(1), ObjectId(1), SimTime::from_secs(1))
            .unwrap();
        let h = ws.history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].kind, ActivityKind::Edit);
        assert_eq!(h[1].kind, ActivityKind::View);
        assert_eq!(h[1].who, 1);
    }

    #[test]
    fn at_a_glance_shows_latest_per_artefact() {
        let mut ws = workspace();
        ws.create_artefact(ObjectId(2), "docs/notes", "n");
        ws.write(NodeId(0), ObjectId(1), "a", NOW).unwrap();
        ws.write(NodeId(0), ObjectId(2), "b", SimTime::from_secs(1))
            .unwrap();
        ws.write(NodeId(0), ObjectId(1), "c", SimTime::from_secs(2))
            .unwrap();
        let glance = ws.at_a_glance();
        assert_eq!(glance.len(), 2);
        let plan = glance.iter().find(|e| e.artefact == "docs/plan").unwrap();
        assert_eq!(plan.at, SimTime::from_secs(2));
    }

    #[test]
    fn denied_accesses_leave_no_history_or_awareness() {
        let mut ws = workspace();
        ws.register_observer(NodeId(0), 0.0);
        let _ = ws.write(NodeId(1), ObjectId(1), "nope", NOW);
        assert!(ws.history().is_empty());
    }
}
