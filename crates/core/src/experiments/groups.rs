//! Experiment E8: group communication — delivery latency versus group
//! size and ordering, group RPC deadlines, and group-invocation skew.

use odp_groupcomm::actors::{GroupActor, GroupApp, RpcConfig};
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_groupcomm::rpc::{CallOutcome, CallStatus, Quorum};
use odp_net::ctx::NetCtx;
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};

use super::Table;

#[derive(Default)]
struct Tracer;

impl GroupApp<String> for Tracer {
    fn on_deliver(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, d: Delivery<String>) {
        ctx.trace("gc.delivered", d.payload);
    }
}

/// Issue time of payload `m{i}-{k}` per the injection schedule below.
fn issue_time(payload: &str) -> SimTime {
    let body = payload.trim_start_matches('m');
    let (i, k) = body.split_once('-').expect("payload shape m<i>-<k>");
    let i: u64 = i.parse().expect("i");
    let k: u64 = k.parse().expect("k");
    SimTime::from_millis(k * 200 + i * 7)
}

fn mcast_latency_run(ordering: Ordering, n: u32, seed: u64) -> (f64, f64) {
    mcast_run(
        ordering,
        n,
        seed,
        LinkSpec::wan(SimDuration::from_millis(20)),
        Reliability::reliable(),
    )
}

fn mcast_run(
    ordering: Ordering,
    n: u32,
    seed: u64,
    link: LinkSpec,
    reliability: Reliability,
) -> (f64, f64) {
    let view = View::initial(GroupId(0), (0..n).map(NodeId));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<String>> = SimBuilder::new(seed).network(net).build();
    for i in 0..n {
        sim.add_actor(NodeId(i), {
            let mut a = GroupActor::new(NodeId(i), view.clone(), ordering, reliability, Tracer);
            a.set_tick_interval(SimDuration::from_millis(50));
            a
        });
    }
    // Each member multicasts 5 messages; trace issue time via injection
    // markers embedded in the payload.
    for i in 0..n {
        for k in 0..5u32 {
            sim.inject(
                SimTime::from_millis((k as u64) * 200 + (i as u64) * 7),
                NodeId(i),
                NodeId(i),
                GcMsg::AppCmd(format!("m{i}-{k}")),
            );
        }
    }
    sim.run(Until::For(SimDuration::from_secs(30)));
    // Mean delivery latency from issue to each delivery, and coverage
    // (fraction of messages delivered at every member).
    let mut counts: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
    let mut total_us = 0u64;
    let mut samples = 0u64;
    for ev in sim.trace().with_label("gc.delivered") {
        *counts.entry(ev.data.as_str()).or_insert(0) += 1;
        total_us += ev.time.saturating_since(issue_time(&ev.data)).as_micros();
        samples += 1;
    }
    // Pure aggregation: the count is order-independent.
    // odp-check: allow(hashmap-iter)
    let delivered_everywhere = counts.values().filter(|&&c| c == n).count();
    let coverage = delivered_everywhere as f64 / counts.len().max(1) as f64;
    let mean_ms = if samples == 0 {
        0.0
    } else {
        total_us as f64 / samples as f64 / 1_000.0
    };
    (mean_ms, coverage)
}

/// **E8 — group communication.** Expected shape: delivery spread grows
/// with ordering strength (total order pays the sequencer hop); group
/// RPC deadline hit-rate collapses when the deadline dips under the
/// round trip; group invocation executes with zero skew.
pub fn e8_group_comm(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E8",
        "Multicast delivery latency vs ordering and group size (20 ms WAN, reliable)",
        [
            "config",
            "ordering",
            "group_size",
            "mean_latency_ms",
            "coverage",
        ],
    );
    for ordering in [
        Ordering::Unordered,
        Ordering::Fifo,
        Ordering::Causal,
        Ordering::Total,
    ] {
        for &n in &[4u32, 16] {
            let (latency, coverage) = mcast_latency_run(ordering, n, seed);
            table.push_row([
                format!("{ordering:?}/n={n}"),
                format!("{ordering:?}"),
                n.to_string(),
                format!("{latency:.2}"),
                format!("{coverage:.2}"),
            ]);
        }
    }

    // Group RPC deadline hit-rate.
    let mut rpc_table = Table::new(
        "E8b",
        "Group RPC deadline hit-rate (8 members, 20 ms WAN)",
        ["deadline_ms", "completed", "timed_out"],
    );
    for &deadline_ms in &[10u64, 50, 200] {
        let (completed, timed_out) = rpc_run(deadline_ms, seed);
        rpc_table.push_row([
            deadline_ms.to_string(),
            completed.to_string(),
            timed_out.to_string(),
        ]);
    }

    // Ablation: what the reliability layer buys, by loss rate.
    let mut ablation = Table::new(
        "E8d",
        "Ablation: multicast coverage vs loss rate, best-effort vs reliable (8 members)",
        [
            "config",
            "loss_pct",
            "best_effort_coverage",
            "reliable_coverage",
        ],
    );
    for &loss in &[0.0f64, 0.05, 0.15] {
        let link = LinkSpec {
            loss,
            ..LinkSpec::wan(SimDuration::from_millis(20))
        };
        let (_, be) = mcast_run(Ordering::Fifo, 8, seed, link, Reliability::BestEffort);
        let (_, rel) = mcast_run(Ordering::Fifo, 8, seed, link, Reliability::reliable());
        ablation.push_row([
            format!("loss={:.0}%", loss * 100.0),
            format!("{:.0}", loss * 100.0),
            format!("{be:.2}"),
            format!("{rel:.2}"),
        ]);
    }

    // Group invocation skew.
    let mut skew_table = Table::new(
        "E8c",
        "Group invocation: camera-start skew across 8 members",
        ["metric", "value_us"],
    );
    let skew_us = invocation_skew(seed);
    skew_table.push_row(["max_start_skew".to_owned(), skew_us.to_string()]);

    vec![table, rpc_table, ablation, skew_table]
}

struct RpcDriver {
    inner: GroupActor<String, Outcomes>,
    deadline: SimDuration,
    calls: u32,
}

#[derive(Default)]
struct Outcomes {
    completed: u32,
    timed_out: u32,
    executed_at: Vec<SimTime>,
}

impl GroupApp<String> for Outcomes {
    fn on_deliver(&mut self, _: &mut dyn NetCtx<GcMsg<String>>, _: Delivery<String>) {}
    fn on_rpc(
        &mut self,
        _ctx: &mut dyn NetCtx<GcMsg<String>>,
        _from: NodeId,
        _call: u64,
        payload: &String,
    ) -> Option<String> {
        Some(format!("ok:{payload}"))
    }
    fn on_execute(&mut self, ctx: &mut dyn NetCtx<GcMsg<String>>, _call: u64, _payload: String) {
        self.executed_at.push(ctx.now());
        let at = ctx.now().as_micros().to_string();
        ctx.trace("camera.started", at);
    }
    fn on_rpc_outcome(&mut self, _ctx: &mut dyn NetCtx<GcMsg<String>>, o: CallOutcome<String>) {
        match o.status {
            CallStatus::Completed => self.completed += 1,
            CallStatus::TimedOut => self.timed_out += 1,
        }
    }
}

impl Actor<GcMsg<String>> for RpcDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
        Actor::on_start(&mut self.inner, ctx);
        ctx.set_timer(SimDuration::from_millis(100), 77);
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, from: NodeId, msg: GcMsg<String>) {
        Actor::on_message(&mut self.inner, ctx, from, msg);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, t: TimerId, tag: u64) {
        if tag == 77 {
            if self.calls > 0 {
                self.calls -= 1;
                self.inner.invoke_rpc_now(
                    ctx,
                    "status?".to_owned(),
                    RpcConfig {
                        timeout: self.deadline,
                        quorum: Quorum::All,
                        execute_at: None,
                    },
                );
                ctx.set_timer(SimDuration::from_millis(300), 77);
            }
        } else {
            Actor::on_timer(&mut self.inner, ctx, t, tag);
        }
    }
}

fn rpc_run(deadline_ms: u64, seed: u64) -> (u32, u32) {
    let n = 8u32;
    let view = View::initial(GroupId(0), (0..n).map(NodeId));
    let link = LinkSpec::wan(SimDuration::from_millis(20));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<String>> = SimBuilder::new(seed).network(net).build();
    sim.add_actor(
        NodeId(0),
        RpcDriver {
            inner: GroupActor::new(
                NodeId(0),
                view.clone(),
                Ordering::Unordered,
                Reliability::BestEffort,
                Outcomes::default(),
            ),
            deadline: SimDuration::from_millis(deadline_ms),
            calls: 10,
        },
    );
    for i in 1..n {
        sim.add_actor(
            NodeId(i),
            GroupActor::new(
                NodeId(i),
                view.clone(),
                Ordering::Unordered,
                Reliability::BestEffort,
                Outcomes::default(),
            ),
        );
    }
    sim.run(Until::For(SimDuration::from_secs(20)));
    let driver: &RpcDriver = sim.get(ActorHandle::of(NodeId(0))).expect("driver");
    (driver.inner.app().completed, driver.inner.app().timed_out)
}

fn invocation_skew(seed: u64) -> u64 {
    let n = 8u32;
    let view = View::initial(GroupId(0), (0..n).map(NodeId));
    let link = LinkSpec::wan(SimDuration::from_millis(20));
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim: Sim<GcMsg<String>> = SimBuilder::new(seed).network(net).build();
    struct Invoker {
        inner: GroupActor<String, Outcomes>,
    }
    impl Actor<GcMsg<String>> for Invoker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
            Actor::on_start(&mut self.inner, ctx);
            self.inner.invoke_rpc_now(
                ctx,
                "camera-on".to_owned(),
                RpcConfig {
                    timeout: SimDuration::from_secs(1),
                    quorum: Quorum::All,
                    execute_at: Some(SimTime::from_millis(500)),
                },
            );
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, from: NodeId, m: GcMsg<String>) {
            Actor::on_message(&mut self.inner, ctx, from, m);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, t: TimerId, tag: u64) {
            Actor::on_timer(&mut self.inner, ctx, t, tag);
        }
    }
    sim.add_actor(
        NodeId(0),
        Invoker {
            inner: GroupActor::new(
                NodeId(0),
                view.clone(),
                Ordering::Unordered,
                Reliability::BestEffort,
                Outcomes::default(),
            ),
        },
    );
    for i in 1..n {
        sim.add_actor(
            NodeId(i),
            GroupActor::new(
                NodeId(i),
                view.clone(),
                Ordering::Unordered,
                Reliability::BestEffort,
                Outcomes::default(),
            ),
        );
    }
    sim.run(Until::For(SimDuration::from_secs(2)));
    let starts: Vec<u64> = sim
        .trace()
        .with_label("camera.started")
        .map(|e| e.time.as_micros())
        .collect();
    if starts.is_empty() {
        return u64::MAX;
    }
    starts.iter().max().unwrap() - starts.iter().min().unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_shape_ordering_strength_costs_latency() {
        let tables = e8_group_comm(13);
        let t = &tables[0];
        let unordered = t.cell_f64("Unordered/n=16", "mean_latency_ms").unwrap();
        let total = t.cell_f64("Total/n=16", "mean_latency_ms").unwrap();
        assert!(
            total > unordered * 1.3,
            "total order pays the sequencer hop: {total} vs {unordered}"
        );
        // Reliable multicast delivered everything everywhere despite loss.
        for ordering in ["Unordered", "Fifo", "Causal", "Total"] {
            for n in [4, 16] {
                let c = t
                    .cell_f64(&format!("{ordering}/n={n}"), "coverage")
                    .unwrap();
                assert_eq!(c, 1.0, "{ordering}/n={n} coverage");
            }
        }
    }

    #[test]
    fn e8b_shape_deadlines_below_rtt_time_out() {
        let tables = e8_group_comm(13);
        let rpc = &tables[1];
        let tight_completed = rpc.cell_f64("10", "completed").unwrap();
        let tight_timeouts = rpc.cell_f64("10", "timed_out").unwrap();
        let loose_completed = rpc.cell_f64("200", "completed").unwrap();
        assert_eq!(
            tight_completed, 0.0,
            "10ms deadline under a 40ms RTT cannot complete"
        );
        assert_eq!(tight_timeouts, 10.0);
        assert!(
            loose_completed >= 9.0,
            "a generous deadline completes (modulo rare loss): {loose_completed}"
        );
    }

    #[test]
    fn e8c_shape_agreed_execution_time_gives_zero_skew() {
        let tables = e8_group_comm(13);
        let skew_table = tables.iter().find(|t| t.id == "E8c").expect("E8c exists");
        let skew = skew_table.cell_f64("max_start_skew", "value_us").unwrap();
        assert_eq!(skew, 0.0, "simulated clocks agree exactly");
    }

    #[test]
    fn e8d_shape_reliability_buys_coverage_under_loss() {
        let tables = e8_group_comm(13);
        let a = tables.iter().find(|t| t.id == "E8d").expect("E8d exists");
        // At zero loss both modes cover fully.
        assert_eq!(a.cell_f64("loss=0%", "best_effort_coverage"), Some(1.0));
        assert_eq!(a.cell_f64("loss=0%", "reliable_coverage"), Some(1.0));
        // Under heavy loss only the reliable layer holds coverage.
        let be = a.cell_f64("loss=15%", "best_effort_coverage").unwrap();
        let rel = a.cell_f64("loss=15%", "reliable_coverage").unwrap();
        assert!(be < 0.7, "best effort collapses under loss: {be}");
        assert_eq!(rel, 1.0, "retransmission holds full coverage");
    }
}
