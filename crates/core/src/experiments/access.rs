//! Experiment E5: static access-matrix mechanisms versus Shen–Dewan
//! role-based dynamic fine-grained control.
//!
//! Two measures: (a) the *administration cost* of a dynamic role change
//! mid-collaboration — the paper's core complaint about static schemes —
//! and (b) the negotiation protocol's cost in round trips.

use odp_access::matrix::{AccessMatrix, Protected, Subject};
use odp_access::negotiation::Negotiator;
use odp_access::rbac::{Effect, ObjectPath, RbacPolicy, RoleId};
use odp_access::rights::Rights;
use odp_sim::time::SimTime;

use super::Table;

/// **E5 — access control.** A collaboration over `n_objects` shared
/// artefacts; mid-way, a participant's role changes from reviewer to
/// author. Static mechanisms must touch one matrix cell per object;
/// the role-based policy changes one assignment.
pub fn e5_access_control(seed: u64) -> Vec<Table> {
    let _ = seed; // fully deterministic
    let mut table = Table::new(
        "E5",
        "Dynamic role change: administration operations and check results",
        [
            "mechanism",
            "objects",
            "admin_ops_for_role_change",
            "checks_correct_after_change",
        ],
    );
    for &n_objects in &[10usize, 100, 1000] {
        // --- Static matrix ------------------------------------------------
        let mut matrix = AccessMatrix::new();
        let user = Subject(5);
        for o in 0..n_objects {
            matrix.grant(user, Protected(o as u64), Rights::READ | Rights::ANNOTATE);
        }
        // Role change: reviewer -> author. Every object's cell must be
        // re-administered.
        let mut matrix_admin_ops = 0u64;
        for o in 0..n_objects {
            matrix.grant(user, Protected(o as u64), Rights::WRITE);
            matrix_admin_ops += 1;
        }
        let matrix_ok =
            (0..n_objects).all(|o| matrix.check(user, Protected(o as u64), Rights::WRITE));
        table.push_row([
            format!("access-matrix(n={n_objects})"),
            n_objects.to_string(),
            matrix_admin_ops.to_string(),
            matrix_ok.to_string(),
        ]);

        // --- Role-based ----------------------------------------------------
        let mut policy = RbacPolicy::new();
        let reviewer = RoleId(1);
        let author = RoleId(2);
        policy.add_rule(
            reviewer,
            "project".into(),
            Rights::READ | Rights::ANNOTATE,
            Effect::Allow,
        );
        policy.add_rule(
            author,
            "project".into(),
            Rights::READ | Rights::WRITE,
            Effect::Allow,
        );
        policy.assign(user, reviewer);
        // Role change: one unassign + one assign, regardless of n.
        policy.unassign(user, reviewer);
        policy.assign(user, author);
        let rbac_admin_ops = 2u64;
        let rbac_ok = (0..n_objects).all(|o| {
            policy
                .check(
                    user,
                    &ObjectPath::new(format!("project/doc{o}")),
                    Rights::WRITE,
                )
                .allowed
        });
        table.push_row([
            format!("role-based(n={n_objects})"),
            n_objects.to_string(),
            rbac_admin_ops.to_string(),
            rbac_ok.to_string(),
        ]);
    }

    // Negotiation cost table.
    let mut nego = Table::new(
        "E5b",
        "Rights negotiation: round trips to agreement",
        ["path", "requested", "agreed", "round_trips"],
    );
    let mut negotiator = Negotiator::new();
    // Direct grant.
    let id = negotiator.request(
        Subject(1),
        Subject(0),
        "project/sec2".into(),
        Rights::WRITE,
        SimTime::ZERO,
    );
    let direct = negotiator
        .accept(Subject(0), id, SimTime::ZERO)
        .expect("owner accepts");
    nego.push_row([
        "direct".to_owned(),
        Rights::WRITE.to_string(),
        direct.rights.to_string(),
        direct.round_trips.to_string(),
    ]);
    // Countered: ask for write+delete, get write only.
    let id2 = negotiator.request(
        Subject(1),
        Subject(0),
        "project/sec3".into(),
        Rights::WRITE | Rights::DELETE,
        SimTime::ZERO,
    );
    negotiator
        .counter(Subject(0), id2, Rights::WRITE)
        .expect("narrowing counter");
    let countered = negotiator
        .accept(Subject(1), id2, SimTime::ZERO)
        .expect("requester accepts the counter");
    nego.push_row([
        "countered".to_owned(),
        (Rights::WRITE | Rights::DELETE).to_string(),
        countered.rights.to_string(),
        countered.round_trips.to_string(),
    ]);

    vec![table, nego]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_shape_static_admin_cost_scales_and_rbac_is_constant() {
        let tables = e5_access_control(0);
        let t = &tables[0];
        let m10 = t
            .cell_f64("access-matrix(n=10)", "admin_ops_for_role_change")
            .unwrap();
        let m1000 = t
            .cell_f64("access-matrix(n=1000)", "admin_ops_for_role_change")
            .unwrap();
        let r10 = t
            .cell_f64("role-based(n=10)", "admin_ops_for_role_change")
            .unwrap();
        let r1000 = t
            .cell_f64("role-based(n=1000)", "admin_ops_for_role_change")
            .unwrap();
        assert_eq!(m10, 10.0);
        assert_eq!(m1000, 1000.0, "matrix admin cost is O(objects)");
        assert_eq!(r10, r1000, "role change is O(1)");
        assert_eq!(r10, 2.0);
        // Both end up correct.
        for key in ["access-matrix(n=100)", "role-based(n=100)"] {
            assert_eq!(
                tables[0].cell(key, "checks_correct_after_change"),
                Some("true")
            );
        }
    }

    #[test]
    fn e5b_counters_cost_an_extra_round_trip() {
        let tables = e5_access_control(0);
        let nego = &tables[1];
        let direct = nego.cell_f64("direct", "round_trips").unwrap();
        let countered = nego.cell_f64("countered", "round_trips").unwrap();
        assert!(countered > direct);
        assert_eq!(nego.cell("countered", "agreed"), Some("write"));
    }
}
