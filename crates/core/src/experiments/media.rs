//! Experiments E6–E7: continuous-media QoS management and real-time
//! synchronisation.

use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::rng::DetRng;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::actors::{SinkActor, SourceActor, StreamMsg};
use odp_streams::media::{Frame, MediaKind, MediaSink, MediaSource, StreamId};
use odp_streams::monitor::QosMonitor;
use odp_streams::qos::QosSpec;
use odp_streams::sync::{EventSync, LipSync};

use super::Table;

fn degrading_link() -> LinkSpec {
    LinkSpec {
        latency: SimDuration::from_millis(350),
        jitter: SimDuration::from_millis(90),
        bytes_per_sec: Some(35_000),
        loss: 0.05,
    }
}

/// **E6 — QoS negotiation, monitoring and renegotiation.** A 25 fps
/// video stream over a link that degrades at t=5 s, with and without
/// dynamic renegotiation. Expected shape: without renegotiation the
/// contract stays broken and integrity stays low; with it the source
/// adapts and the (renegotiated) contract is met again.
pub fn e6_qos_streams(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E6",
        "QoS management on a degrading link (degrades at t=5s, 40s run)",
        [
            "configuration",
            "violations",
            "renegotiations",
            "final_fps",
            "integrity_pct",
            "mean_delay_ms",
        ],
    );
    for adaptive in [true, false] {
        let mut sim: Sim<StreamMsg> = {
            let mut net = Network::new(LinkSpec::lan());
            net.set_default_link(LinkSpec::lan());
            SimBuilder::new(seed).network(net).build()
        };
        let contract = QosSpec::video();
        let source = MediaSource::new(StreamId(0), MediaKind::Video, 25, 4_000);
        let mut src_actor = SourceActor::new(source, vec![NodeId(1)], contract);
        if !adaptive {
            src_actor.disable_adaptation();
        }
        sim.add_actor(NodeId(0), src_actor);
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(120));
        let monitor = QosMonitor::new(contract, SimDuration::from_secs(1));
        sim.add_actor(NodeId(1), SinkActor::new(sink, monitor, NodeId(0)));
        sim.schedule_net_change(SimTime::from_secs(5), |net| {
            net.set_link(NodeId(0), NodeId(1), degrading_link());
        });
        sim.run(Until::For(SimDuration::from_secs(40)));

        let sink: &SinkActor = sim.get(ActorHandle::of(NodeId(1))).expect("sink present");
        let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).expect("source present");
        let mean_delay = sim
            .metrics()
            .histogram("stream.frame_delay")
            .map(|h| {
                let mut h = h.clone();
                h.summary().mean.as_micros() as f64 / 1_000.0
            })
            .unwrap_or(0.0);
        table.push_row([
            if adaptive {
                "with-renegotiation"
            } else {
                "no-renegotiation"
            }
            .to_owned(),
            sim.metrics()
                .counter("stream.violation_reports")
                .to_string(),
            source.renegotiations().to_string(),
            source.contract().throughput_fps.to_string(),
            format!("{:.1}", sink.sink().integrity() * 100.0),
            format!("{mean_delay:.1}"),
        ]);
    }

    // Recovery: the outage ends at t=30s; upward renegotiation climbs the
    // contract back to the original.
    let mut recovery = Table::new(
        "E6b",
        "Upward renegotiation after link recovery (outage 5s-30s, 120s run)",
        ["phase", "renegotiations_down", "upgrades", "final_fps"],
    );
    {
        let mut sim: Sim<StreamMsg> = {
            let mut net = Network::new(LinkSpec::lan());
            net.set_default_link(LinkSpec::lan());
            SimBuilder::new(seed).network(net).build()
        };
        let contract = QosSpec::video();
        let source = MediaSource::new(StreamId(0), MediaKind::Video, 25, 4_000);
        sim.add_actor(
            NodeId(0),
            SourceActor::new(source, vec![NodeId(1)], contract),
        );
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(120));
        let monitor = QosMonitor::new(contract, SimDuration::from_secs(1));
        sim.add_actor(NodeId(1), SinkActor::new(sink, monitor, NodeId(0)));
        sim.schedule_net_change(SimTime::from_secs(5), |net| {
            net.set_link(NodeId(0), NodeId(1), degrading_link());
        });
        sim.schedule_net_change(SimTime::from_secs(30), |net| {
            net.set_link(NodeId(0), NodeId(1), LinkSpec::lan());
        });
        sim.run(Until::For(SimDuration::from_secs(120)));
        let source: &SourceActor = sim.get(ActorHandle::of(NodeId(0))).expect("source present");
        recovery.push_row([
            "outage-then-recovery".to_owned(),
            source.renegotiations().to_string(),
            source.upgrades().to_string(),
            source.contract().throughput_fps.to_string(),
        ]);
    }
    vec![table, recovery]
}

/// **E7 — real-time synchronisation.** (a) Lip-sync: audio master +
/// video slave whose network path is slower and jittered, with and
/// without the continuous-synchronisation controller. (b) Event-driven:
/// caption firing skew under a 20 ms scheduler tick.
pub fn e7_media_sync(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E7",
        "Lip-sync skew with and without continuous synchronisation",
        [
            "configuration",
            "frames",
            "max_abs_skew_ms",
            "tail_max_skew_ms",
            "corrections",
        ],
    );
    for correct in [false, true] {
        let ls = run_lipsync(seed, correct);
        let samples = ls.skew_samples();
        let tail_max = samples
            .iter()
            .rev()
            .take(20)
            .map(|s| s.unsigned_abs())
            .max()
            .unwrap_or(0);
        table.push_row([
            if correct {
                "continuous-sync"
            } else {
                "no-sync"
            }
            .to_owned(),
            samples.len().to_string(),
            format!("{:.1}", ls.max_abs_skew() as f64 / 1_000.0),
            format!("{:.1}", tail_max as f64 / 1_000.0),
            ls.corrections().to_string(),
        ]);
    }

    // Event-driven sync: captions scheduled on a 20 ms-tick scheduler.
    let mut events = Table::new(
        "E7b",
        "Event-driven synchronisation: caption firing skew (20 ms tick)",
        ["metric", "value_ms"],
    );
    let mut es = EventSync::new();
    let mut rng = DetRng::seed_from(seed);
    for k in 0..50u64 {
        // Captions at arbitrary (non-tick-aligned) instants.
        es.schedule(
            format!("caption-{k}"),
            SimTime::from_micros(k * 333_337 + rng.range_u64(0, 20_000)),
        );
    }
    let mut fired = 0;
    let mut now = SimTime::ZERO;
    while fired < 50 {
        now += SimDuration::from_millis(20);
        fired += es.fire_due(now).len();
    }
    let skews = es.skews();
    let max_ms = skews.iter().map(|d| d.as_micros()).max().unwrap_or(0) as f64 / 1_000.0;
    let mean_ms =
        skews.iter().map(|d| d.as_micros()).sum::<u64>() as f64 / skews.len() as f64 / 1_000.0;
    events.push_row(["mean_skew".to_owned(), format!("{mean_ms:.2}")]);
    events.push_row(["max_skew".to_owned(), format!("{max_ms:.2}")]);

    vec![table, events]
}

/// Drives a 25 fps audio/video pair for 40 s where the video path has
/// +180 ms base delay and ±40 ms jitter.
fn run_lipsync(seed: u64, correct: bool) -> LipSync {
    let audio = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
    let video = MediaSink::new(StreamId(1), SimDuration::from_millis(100));
    let mut ls = LipSync::new(audio, video, SimDuration::from_millis(80));
    if !correct {
        ls.disable_correction();
    }
    let mut rng = DetRng::seed_from(seed);
    let total_frames = 1_000u64;
    // Precompute arrival schedules.
    let mut arrivals: Vec<(u64, bool, u64)> = Vec::new(); // (arrival_us, is_master, seq)
    for seq in 0..total_frames {
        let cap = seq * 40_000;
        let a_delay = rng.jittered(SimDuration::from_millis(20), SimDuration::from_millis(5));
        let v_delay = rng.jittered(SimDuration::from_millis(200), SimDuration::from_millis(40));
        arrivals.push((cap + a_delay.as_micros(), true, seq));
        arrivals.push((cap + v_delay.as_micros(), false, seq));
    }
    arrivals.sort_unstable();
    let mut idx = 0usize;
    let mut now_us = 0u64;
    let end = total_frames * 40_000 + 2_000_000;
    while now_us < end {
        now_us += 10_000; // 10 ms ticks
        while idx < arrivals.len() && arrivals[idx].0 <= now_us {
            let (at, is_master, seq) = arrivals[idx];
            idx += 1;
            let frame = Frame {
                stream: StreamId(if is_master { 0 } else { 1 }),
                seq,
                kind: if is_master {
                    MediaKind::Audio
                } else {
                    MediaKind::Video
                },
                captured: SimTime::from_micros(seq * 40_000),
                bytes: 1_000,
                span: None,
            };
            if is_master {
                ls.master_mut().arrive(frame, SimTime::from_micros(at));
            } else {
                ls.slave_mut().arrive(frame, SimTime::from_micros(at));
            }
        }
        ls.tick(SimTime::from_micros(now_us));
    }
    ls
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_shape_renegotiation_restores_the_contract() {
        let tables = e6_qos_streams(11);
        let t = &tables[0];
        let adaptive_renegs = t.cell_f64("with-renegotiation", "renegotiations").unwrap();
        let fixed_renegs = t.cell_f64("no-renegotiation", "renegotiations").unwrap();
        assert!(adaptive_renegs >= 1.0, "the source adapted");
        assert_eq!(fixed_renegs, 0.0);
        let adaptive_fps = t.cell_f64("with-renegotiation", "final_fps").unwrap();
        assert!(adaptive_fps < 25.0, "rate was negotiated down");
        let fixed_integrity = t.cell_f64("no-renegotiation", "integrity_pct").unwrap();
        assert!(
            fixed_integrity < 90.0,
            "unmanaged stream integrity collapses: {fixed_integrity}"
        );
    }

    #[test]
    fn e6b_shape_recovery_restores_the_original_contract() {
        let tables = e6_qos_streams(11);
        let r = &tables[1];
        assert_eq!(r.id, "E6b");
        let downs = r
            .cell_f64("outage-then-recovery", "renegotiations_down")
            .unwrap();
        let ups = r.cell_f64("outage-then-recovery", "upgrades").unwrap();
        let final_fps = r.cell_f64("outage-then-recovery", "final_fps").unwrap();
        assert!(downs >= 1.0, "degraded during the outage");
        assert!(ups >= 1.0, "climbed after recovery");
        assert_eq!(final_fps, 25.0, "original contract restored");
    }

    #[test]
    fn e7_shape_continuous_sync_bounds_skew() {
        let tables = e7_media_sync(11);
        let t = &tables[0];
        let raw_tail = t.cell_f64("no-sync", "tail_max_skew_ms").unwrap();
        let sync_tail = t.cell_f64("continuous-sync", "tail_max_skew_ms").unwrap();
        assert!(
            raw_tail > 80.0,
            "uncorrected skew exceeds the lip-sync budget: {raw_tail}"
        );
        assert!(
            sync_tail <= 80.0,
            "controller keeps skew inside budget: {sync_tail}"
        );
        let corrections = t.cell_f64("continuous-sync", "corrections").unwrap();
        assert!(corrections >= 1.0);
        // Event-driven skew is bounded by the tick.
        let eb = &tables[1];
        let max = eb.cell_f64("max_skew", "value_ms").unwrap();
        assert!(max <= 20.0 + 1e-9);
    }
}
