//! Experiment E13 (extension): the replicated shared workspace — the
//! paper's "collaboration aware" infrastructure (§3.2.2) realised over
//! the group-communication substrate, measured for convergence and
//! awareness flow.

use odp_access::rbac::{Effect, RoleId};
use odp_access::rights::Rights;
use odp_groupcomm::actors::GroupActor;
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::GcMsg;
use odp_sim::net::{LinkSpec, Network, NodeId};
use odp_sim::prelude::{ActorHandle, Sim, SimBuilder, Until};
use odp_sim::time::{SimDuration, SimTime};

use crate::replicated::{replica_actor, WorkspaceReplica, WsOp};
use crate::workspace::{ObjectId, SharedWorkspace};

use super::Table;

fn configured_workspace(n: u32) -> SharedWorkspace {
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
    for i in 0..n {
        ws.policy_mut()
            .assign(odp_access::matrix::Subject(i), RoleId(1));
        ws.register_observer(NodeId(i), 0.0);
    }
    ws.create_artefact(ObjectId(1), "shared/1", "v0");
    ws
}

/// **E13 — replicated shared workspace.** N replicas over a 15 ms WAN,
/// each submitting `writes_each` concurrent edits through totally-ordered
/// reliable multicast. Expected shape: all replicas apply all edits in
/// one identical order; convergence time grows gently with group size
/// (sequencer fan-out), and every replica raises full local awareness.
pub fn e13_replicated_workspace(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E13",
        "Replicated workspace: convergence and awareness vs group size (15 ms WAN)",
        [
            "replicas",
            "total_writes",
            "converged",
            "identical_order",
            "convergence_ms",
            "awareness_per_replica",
        ],
    );
    let writes_each = 4u32;
    for &n in &[2u32, 4, 8] {
        let view = View::initial(GroupId(0), (0..n).map(NodeId));
        let link = LinkSpec::wan(SimDuration::from_millis(15));
        let mut net = Network::new(link);
        net.set_default_link(link);
        let mut sim: Sim<GcMsg<WsOp>> = SimBuilder::new(seed).network(net).build();
        for i in 0..n {
            sim.add_actor(
                NodeId(i),
                replica_actor(NodeId(i), view.clone(), configured_workspace(n)),
            );
        }
        for i in 0..n {
            for w in 0..writes_each {
                sim.inject(
                    SimTime::from_millis(10 + w as u64 * 50),
                    NodeId(i),
                    NodeId(i),
                    GcMsg::AppCmd(WsOp {
                        actor: i,
                        object: 1,
                        value: format!("edit-{i}-{w}"),
                    }),
                );
            }
        }
        sim.run(Until::For(SimDuration::from_secs(30)));
        let total = (n * writes_each) as u64;
        let histories: Vec<Vec<(u32, SimTime)>> = (0..n)
            .map(|i| {
                let a: &GroupActor<WsOp, WorkspaceReplica> =
                    sim.get(ActorHandle::of(NodeId(i))).expect("replica");
                a.app()
                    .workspace()
                    .history()
                    .iter()
                    .map(|h| (h.who, h.at))
                    .collect()
            })
            .collect();
        let converged = histories.iter().all(|h| h.len() as u64 == total);
        let orders: Vec<Vec<u32>> = histories
            .iter()
            .map(|h| h.iter().map(|&(who, _)| who).collect())
            .collect();
        let identical = orders.windows(2).all(|w| w[0] == w[1]);
        let convergence_ms = sim
            .trace()
            .last("ws.applied")
            .map(|e| e.time.as_micros() as f64 / 1_000.0)
            .unwrap_or(f64::NAN);
        let awareness: u64 = {
            let a: &GroupActor<WsOp, WorkspaceReplica> =
                sim.get(ActorHandle::of(NodeId(0))).expect("replica");
            a.app().awareness_delivered()
        };
        table.push_row([
            n.to_string(),
            total.to_string(),
            converged.to_string(),
            identical.to_string(),
            format!("{convergence_ms:.1}"),
            awareness.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_shape_replicas_converge_identically() {
        let tables = e13_replicated_workspace(29);
        let t = &tables[0];
        for n in ["2", "4", "8"] {
            assert_eq!(t.cell(n, "converged"), Some("true"), "n={n} converged");
            assert_eq!(t.cell(n, "identical_order"), Some("true"), "n={n} order");
        }
        // Awareness per replica = total_writes × (n − 1) observers.
        let aware8 = t.cell_f64("8", "awareness_per_replica").unwrap();
        assert_eq!(
            aware8,
            (8.0 * 4.0) * 7.0,
            "every edit notifies every non-actor"
        );
        // Convergence time is finite and grows (weakly) with group size.
        let c2 = t.cell_f64("2", "convergence_ms").unwrap();
        let c8 = t.cell_f64("8", "convergence_ms").unwrap();
        assert!(c2.is_finite() && c8.is_finite());
        assert!(c8 >= c2 * 0.5, "no pathological speedup: {c2} vs {c8}");
    }
}
