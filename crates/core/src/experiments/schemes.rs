//! The unified concurrency-scheme test rig used by experiments E2 and
//! E3: one server actor and one client actor that speak a common
//! protocol, with the scheme under test plugged in behind the server.
//!
//! Schemes and their information-flow behaviour (the Figure 2 contrast):
//!
//! | Scheme | Blocking | Awareness push | Peers learn of edits by |
//! |---|---|---|---|
//! | `TwoPhase` | yes (walls) | none | polling reads |
//! | `Tickle` | yes, bounded by idle transfer | tickle/revoke only | polling reads |
//! | `Soft` | never | conflict warnings + content notices | push |
//! | `Notification` | on exclusive conflicts | access + content notices | push |
//! | `TxGroup` | never (cooperative rule) | rule-driven notices | push |
//! | `Ot` | never (local apply) | the relayed operation itself | push |
//! | `Floor` | until the floor is granted | multicast output (WYSIWIS) | push |

// This rig deliberately stays on the direct-notice engine path
// (`*_direct`): it forwards raw notices as simulation messages and is
// the pre-bus baseline the awareness_fanout bench compares the
// cooperation-event bus against.
use std::collections::HashMap;

use odp_concurrency::floor::{FloorControl, FloorEvent, FloorPolicy};
use odp_concurrency::granularity::Granularity;
use odp_concurrency::jupiter::{OpMsg, OtClient, OtServer};
use odp_concurrency::locks::{
    ClientId, LockMode, LockReply, LockScheme, LockTable, NoticeKind, ResourceId,
};
use odp_concurrency::ot::CharOp;
use odp_concurrency::store::{ObjectId, ObjectStore};
use odp_concurrency::twophase::{OpKind, SubmitReply, TxnEvent, TxnId, TxnManager, TxnOp};
use odp_concurrency::txgroup::{CooperativeRule, TransactionGroup};
use odp_sim::actor::{Actor, Ctx, TimerId};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

/// The document every scheme edits.
pub const DOC: ObjectId = ObjectId(1);
const INITIAL_TEXT: &str = "Shared document body. Edit me cooperatively.";

/// The concurrency-control scheme under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Strict 2PL transactions (Figure 2a baseline).
    TwoPhase,
    /// Tickle locks (Greif & Sarin).
    Tickle,
    /// Soft locks (Colab).
    Soft,
    /// Notification locks (Hornick & Zdonik).
    Notification,
    /// Skarra–Zdonik transaction group, cooperative rule.
    TxGroup,
    /// Operational transformation (client–server).
    Ot,
    /// Floor control (reservation).
    Floor,
}

impl Scheme {
    /// All schemes, in the E3 reporting order.
    pub const ALL: [Scheme; 7] = [
        Scheme::TwoPhase,
        Scheme::Tickle,
        Scheme::Soft,
        Scheme::Notification,
        Scheme::TxGroup,
        Scheme::Ot,
        Scheme::Floor,
    ];

    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Scheme::TwoPhase => "2pl-transactions",
            Scheme::Tickle => "tickle-locks",
            Scheme::Soft => "soft-locks",
            Scheme::Notification => "notification-locks",
            Scheme::TxGroup => "transaction-group",
            Scheme::Ot => "operation-transform",
            Scheme::Floor => "floor-control",
        }
    }

    /// True if the scheme pushes awareness of edits to peers.
    pub fn pushes(&self) -> bool {
        !matches!(self, Scheme::TwoPhase | Scheme::Tickle)
    }
}

/// The common wire protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum CcMsg {
    /// Client → server: start an edit burst with a first insert.
    BurstBegin {
        /// Client-local op tag.
        op: u64,
        /// Cursor position.
        pos: usize,
        /// Text to insert.
        text: String,
    },
    /// Client → server: another insert within the burst.
    BurstEdit {
        /// Client-local op tag.
        op: u64,
        /// Cursor position.
        pos: usize,
        /// Text to insert.
        text: String,
    },
    /// Client → server: finish the burst (commit / release).
    BurstEnd {
        /// Client-local op tag.
        op: u64,
    },
    /// Client → server: poll for changes (pull-based schemes).
    Poll {
        /// The last version this client has seen.
        since: u64,
    },
    /// Client → server: an OT operation.
    OtOp {
        /// Correlation tag `"c<id>-<k>"`.
        tag: String,
        /// The Jupiter message.
        msg: OpMsg,
    },
    /// Server → client: an operation completed.
    Ack {
        /// Echoed op tag.
        op: u64,
    },
    /// Server → client: push notification of a peer's edit.
    Notice {
        /// Correlation tag of the edit.
        tag: String,
        /// Acting client.
        by: u32,
    },
    /// Server → client: poll answer with the tags created since `since`.
    PollReply {
        /// Current version.
        version: u64,
        /// `(version, tag)` entries newer than the poll's `since`.
        entries: Vec<(u64, String)>,
    },
    /// Server → client: OT relay.
    OtRelay {
        /// Correlation tag of the original edit.
        tag: String,
        /// The Jupiter message.
        msg: OpMsg,
    },
}

enum ServerState {
    TwoPhase {
        tm: TxnManager,
        sessions: HashMap<NodeId, TxnId>,
        /// txn -> (client, op tag) awaiting a lock.
        blocked: HashMap<TxnId, (NodeId, u64)>,
    },
    Locks {
        table: LockTable,
        store: ObjectStore,
        /// client -> (op, pos, text) awaiting the lock grant.
        blocked: HashMap<ClientId, (u64, usize, String)>,
    },
    TxGroup {
        group: TransactionGroup<CooperativeRule>,
    },
    Ot {
        server: OtServer,
    },
    Floor {
        floor: FloorControl,
        store: ObjectStore,
        /// client -> first (op, pos, text) awaiting the floor.
        blocked: HashMap<ClientId, (u64, usize, String)>,
    },
}

/// The scheme server actor.
pub struct SchemeServer {
    scheme: Scheme,
    state: ServerState,
    clients: Vec<NodeId>,
    version: u64,
    version_log: Vec<(u64, String)>,
}

impl SchemeServer {
    /// Creates a server for `scheme`, serving `clients`.
    pub fn new(scheme: Scheme, clients: Vec<NodeId>) -> Self {
        let mut store = ObjectStore::new();
        store.create(DOC, INITIAL_TEXT);
        let state = match scheme {
            Scheme::TwoPhase => {
                let mut tm = TxnManager::new(Granularity::Document);
                tm.store_mut().create(DOC, INITIAL_TEXT);
                ServerState::TwoPhase {
                    tm,
                    sessions: HashMap::new(),
                    blocked: HashMap::new(),
                }
            }
            Scheme::Tickle => ServerState::Locks {
                table: LockTable::new(LockScheme::Tickle {
                    idle_timeout: SimDuration::from_millis(500),
                }),
                store,
                blocked: HashMap::new(),
            },
            Scheme::Soft => ServerState::Locks {
                table: LockTable::new(LockScheme::Soft),
                store,
                blocked: HashMap::new(),
            },
            Scheme::Notification => ServerState::Locks {
                table: LockTable::new(LockScheme::Notification),
                store,
                blocked: HashMap::new(),
            },
            Scheme::TxGroup => {
                let members = clients.iter().map(|n| ClientId(n.0));
                ServerState::TxGroup {
                    group: TransactionGroup::new(store, members, CooperativeRule),
                }
            }
            Scheme::Ot => {
                let mut server = OtServer::new(INITIAL_TEXT);
                for c in &clients {
                    server.add_client(c.0);
                }
                ServerState::Ot { server }
            }
            Scheme::Floor => ServerState::Floor {
                floor: FloorControl::new(FloorPolicy::RequestQueue),
                store,
                blocked: HashMap::new(),
            },
        };
        SchemeServer {
            scheme,
            state,
            clients,
            version: 0,
            version_log: Vec::new(),
        }
    }

    fn tag(client: NodeId, op: u64) -> String {
        format!("c{}-{}", client.0, op)
    }

    /// Records an applied edit: bumps the version, traces creation, and
    /// pushes notices for push-schemes.
    fn applied(&mut self, ctx: &mut Ctx<'_, CcMsg>, by: NodeId, op: u64) {
        self.version += 1;
        let tag = Self::tag(by, op);
        self.version_log.push((self.version, tag.clone()));
        ctx.trace("op.created", tag.clone());
        ctx.metrics().incr("cc.edits_applied");
        if self.scheme.pushes() && self.scheme != Scheme::Ot {
            for &peer in &self.clients {
                if peer != by {
                    ctx.metrics().incr("cc.notices_sent");
                    ctx.send(
                        peer,
                        CcMsg::Notice {
                            tag: tag.clone(),
                            by: by.0,
                        },
                    );
                }
            }
        }
    }

    fn unit_resource() -> ResourceId {
        ResourceId::with_unit(DOC, odp_concurrency::granularity::UnitId(0))
    }

    fn handle_burst(
        &mut self,
        ctx: &mut Ctx<'_, CcMsg>,
        from: NodeId,
        op: u64,
        pos: usize,
        text: String,
        begin: bool,
    ) {
        // Each arm computes deferred actions under a scoped borrow of the
        // state, then the shared tail performs them (applied/ack/notice).
        let mut applied: Vec<(NodeId, u64)> = Vec::new();
        let mut acks: Vec<(NodeId, u64)> = Vec::new();
        let mut txn_events: Vec<TxnEvent> = Vec::new();
        match &mut self.state {
            ServerState::TwoPhase {
                tm,
                sessions,
                blocked,
            } => {
                let txn = if begin {
                    let t = tm.begin();
                    sessions.insert(from, t);
                    t
                } else {
                    match sessions.get(&from) {
                        Some(&t) => t,
                        None => return, // burst was aborted; drop the edit
                    }
                };
                let txn_op = TxnOp {
                    object: DOC,
                    pos,
                    kind: OpKind::Insert(text),
                };
                match tm.submit_with_events(txn, txn_op, ctx.now()) {
                    Ok((SubmitReply::Done(_), events)) => {
                        txn_events = events;
                        applied.push((from, op));
                        acks.push((from, op));
                    }
                    Ok((SubmitReply::Blocked, events)) => {
                        blocked.insert(txn, (from, op));
                        ctx.metrics().incr("cc.blocked");
                        txn_events = events;
                    }
                    Err(e) => ctx.trace("cc.error", e.to_string()),
                }
            }
            ServerState::Locks {
                table,
                store,
                blocked,
            } => {
                let resource = Self::unit_resource();
                let client = ClientId(from.0);
                let insert_at = |store: &ObjectStore, pos: usize| {
                    pos.min(
                        store
                            .read(DOC)
                            .map(|v| v.value.chars().count())
                            .unwrap_or(0),
                    )
                };
                if begin {
                    let (reply, notices) =
                        table.request_direct(client, resource, LockMode::Exclusive, ctx.now());
                    for n in &notices {
                        ctx.metrics().incr("cc.lock_notices");
                        ctx.send(
                            NodeId(n.to.0),
                            CcMsg::Notice {
                                tag: format!("lock:{:?}", n.kind),
                                by: from.0,
                            },
                        );
                    }
                    match reply {
                        LockReply::Granted | LockReply::GrantedConflict(_) => {
                            let at = insert_at(store, pos);
                            let _ = store.insert(DOC, at, &text);
                            applied.push((from, op));
                            acks.push((from, op));
                        }
                        LockReply::Queued => {
                            blocked.insert(client, (op, pos, text));
                            ctx.metrics().incr("cc.blocked");
                        }
                    }
                } else {
                    table.touch(client, resource, ctx.now());
                    let at = insert_at(store, pos);
                    let _ = store.insert(DOC, at, &text);
                    applied.push((from, op));
                    acks.push((from, op));
                }
            }
            ServerState::TxGroup { group } => {
                let member = ClientId(from.0);
                let current = group
                    .read_direct(member, DOC, ctx.now())
                    .map(|(v, _)| v)
                    .unwrap_or_default();
                let mut chars: Vec<char> = current.chars().collect();
                let at = pos.min(chars.len());
                for (i, ch) in text.chars().enumerate() {
                    chars.insert(at + i, ch);
                }
                let new_value: String = chars.into_iter().collect();
                match group.write_direct(member, DOC, new_value, ctx.now()) {
                    Ok((_, notices)) => {
                        ctx.metrics().add("cc.group_notices", notices.len() as u64);
                        applied.push((from, op));
                        acks.push((from, op));
                    }
                    Err(e) => ctx.trace("cc.error", e.to_string()),
                }
            }
            ServerState::Ot { .. } => {
                // OT clients edit locally and use CcMsg::OtOp instead.
                ctx.trace("cc.error", "burst message to OT server".to_owned());
            }
            ServerState::Floor {
                floor,
                store,
                blocked,
            } => {
                let client = ClientId(from.0);
                let len = store
                    .read(DOC)
                    .map(|v| v.value.chars().count())
                    .unwrap_or(0);
                if begin && floor.holder() != Some(client) {
                    let events = floor.request_direct(client, ctx.now());
                    let granted_now = events
                        .iter()
                        .any(|e| matches!(e, FloorEvent::Granted { who, .. } if *who == client));
                    if granted_now {
                        let _ = store.insert(DOC, pos.min(len), &text);
                        applied.push((from, op));
                        acks.push((from, op));
                    } else {
                        blocked.insert(client, (op, pos, text));
                        ctx.metrics().incr("cc.blocked");
                    }
                } else if floor.holder() != Some(client) {
                    ctx.trace("cc.error", format!("{from} edited without the floor"));
                } else {
                    let _ = store.insert(DOC, pos.min(len), &text);
                    applied.push((from, op));
                    acks.push((from, op));
                }
            }
        }
        self.drain_txn_events(ctx, txn_events);
        for (client, op) in applied {
            self.applied(ctx, client, op);
        }
        for (client, op) in acks {
            ctx.send(client, CcMsg::Ack { op });
        }
    }

    fn drain_txn_events(&mut self, ctx: &mut Ctx<'_, CcMsg>, events: Vec<TxnEvent>) {
        for ev in events {
            match ev {
                TxnEvent::OpCompleted { txn, .. } => {
                    let entry = if let ServerState::TwoPhase { blocked, .. } = &mut self.state {
                        blocked.remove(&txn)
                    } else {
                        None
                    };
                    if let Some((client, op)) = entry {
                        self.applied(ctx, client, op);
                        ctx.send(client, CcMsg::Ack { op });
                    }
                }
                TxnEvent::TxnAborted { txn, .. } => {
                    ctx.metrics().incr("cc.aborts");
                    if let ServerState::TwoPhase {
                        blocked, sessions, ..
                    } = &mut self.state
                    {
                        blocked.remove(&txn);
                        // Order-independent: the predicate only tests values.
                        // odp-check: allow(hashmap-iter)
                        sessions.retain(|_, &mut t| t != txn);
                    }
                }
            }
        }
    }

    fn handle_end(&mut self, ctx: &mut Ctx<'_, CcMsg>, from: NodeId, op: u64) {
        ctx.send(from, CcMsg::Ack { op });
        let mut txn_events: Vec<TxnEvent> = Vec::new();
        // (client, pending op, pos, text) whose deferred first insert can
        // now run.
        let mut unblocked: Vec<(NodeId, u64, usize, String)> = Vec::new();
        match &mut self.state {
            ServerState::TwoPhase { tm, sessions, .. } => {
                if let Some(txn) = sessions.remove(&from) {
                    match tm.commit(txn, ctx.now()) {
                        Ok(events) => txn_events = events,
                        Err(e) => ctx.trace("cc.error", e.to_string()),
                    }
                }
            }
            ServerState::Locks { table, blocked, .. } => {
                let client = ClientId(from.0);
                for n in table.release_all_direct(client, ctx.now()) {
                    if let NoticeKind::Granted { .. } = n.kind {
                        if let Some((pending_op, pos, text)) = blocked.remove(&n.to) {
                            unblocked.push((NodeId(n.to.0), pending_op, pos, text));
                        }
                    }
                }
            }
            ServerState::TxGroup { .. } | ServerState::Ot { .. } => {}
            ServerState::Floor { floor, blocked, .. } => {
                let client = ClientId(from.0);
                for ev in floor.release_direct(client, ctx.now()).unwrap_or_default() {
                    if let FloorEvent::Granted { who, .. } = ev {
                        if let Some((pending_op, pos, text)) = blocked.remove(&who) {
                            unblocked.push((NodeId(who.0), pending_op, pos, text));
                        }
                    }
                }
            }
        }
        self.drain_txn_events(ctx, txn_events);
        for (client, pending_op, pos, text) in unblocked {
            self.apply_deferred(ctx, client, pending_op, pos, &text);
        }
    }

    /// Applies a previously blocked first insert now that its lock/floor
    /// arrived.
    fn apply_deferred(
        &mut self,
        ctx: &mut Ctx<'_, CcMsg>,
        client: NodeId,
        op: u64,
        pos: usize,
        text: &str,
    ) {
        match &mut self.state {
            ServerState::Locks { store, .. } | ServerState::Floor { store, .. } => {
                let len = store
                    .read(DOC)
                    .map(|v| v.value.chars().count())
                    .unwrap_or(0);
                let _ = store.insert(DOC, pos.min(len), text);
            }
            _ => {}
        }
        self.applied(ctx, client, op);
        ctx.send(client, CcMsg::Ack { op });
    }
}

impl Actor<CcMsg> for SchemeServer {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CcMsg>) {
        // Tickle maintenance tick.
        if self.scheme == Scheme::Tickle {
            ctx.set_timer(SimDuration::from_millis(100), 1);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CcMsg>, from: NodeId, msg: CcMsg) {
        match msg {
            CcMsg::BurstBegin { op, pos, text } => {
                self.handle_burst(ctx, from, op, pos, text, true)
            }
            CcMsg::BurstEdit { op, pos, text } => {
                self.handle_burst(ctx, from, op, pos, text, false)
            }
            CcMsg::BurstEnd { op } => self.handle_end(ctx, from, op),
            CcMsg::Poll { since } => {
                let entries: Vec<(u64, String)> = self
                    .version_log
                    .iter()
                    .filter(|(v, _)| *v > since)
                    .cloned()
                    .collect();
                ctx.send(
                    from,
                    CcMsg::PollReply {
                        version: self.version,
                        entries,
                    },
                );
            }
            CcMsg::OtOp { tag, msg } => {
                if let ServerState::Ot { server } = &mut self.state {
                    match server.client_message(from.0, msg) {
                        Ok(fanout) => {
                            self.applied(ctx, from, 0);
                            // `applied` already bumped version; rewrite the
                            // tag in the log to the OT tag for correlation.
                            if let Some(last) = self.version_log.last_mut() {
                                last.1 = tag.clone();
                            }
                            for (client, relay) in fanout {
                                ctx.metrics().incr("cc.notices_sent");
                                ctx.send(
                                    NodeId(client),
                                    CcMsg::OtRelay {
                                        tag: tag.clone(),
                                        msg: relay,
                                    },
                                );
                            }
                        }
                        Err(e) => ctx.trace("cc.error", e.to_string()),
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CcMsg>, _timer: TimerId, _tag: u64) {
        let mut unblocked: Vec<(NodeId, u64, usize, String)> = Vec::new();
        if let ServerState::Locks { table, blocked, .. } = &mut self.state {
            for n in table.tick_direct(ctx.now()) {
                match n.kind {
                    NoticeKind::Granted { .. } => {
                        if let Some((op, pos, text)) = blocked.remove(&n.to) {
                            unblocked.push((NodeId(n.to.0), op, pos, text));
                        }
                    }
                    NoticeKind::Revoked { .. } => {
                        ctx.send(
                            NodeId(n.to.0),
                            CcMsg::Notice {
                                tag: "lock:revoked".to_owned(),
                                by: 0,
                            },
                        );
                    }
                    _ => {}
                }
            }
        }
        for (client, op, pos, text) in unblocked {
            self.apply_deferred(ctx, client, op, pos, &text);
        }
        ctx.set_timer(SimDuration::from_millis(100), 1);
    }
}

/// Per-client workload configuration.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The scheme (must match the server's).
    pub scheme: Scheme,
    /// The server node.
    pub server: NodeId,
    /// Edit bursts to perform.
    pub bursts: u32,
    /// Inserts per burst (including the opening one).
    pub ops_per_burst: u32,
    /// Think time between inserts.
    pub think: SimDuration,
    /// Pause between bursts.
    pub between_bursts: SimDuration,
    /// Poll interval for pull-schemes.
    pub poll_every: SimDuration,
    /// Offset before the first burst (staggers clients).
    pub start_delay: SimDuration,
}

impl ClientConfig {
    /// A reasonable default workload.
    pub fn new(scheme: Scheme, server: NodeId) -> Self {
        ClientConfig {
            scheme,
            server,
            bursts: 5,
            ops_per_burst: 4,
            think: SimDuration::from_millis(150),
            between_bursts: SimDuration::from_millis(300),
            poll_every: SimDuration::from_millis(500),
            start_delay: SimDuration::ZERO,
        }
    }
}

const T_NEXT: u64 = 1;
const T_POLL: u64 = 2;

/// The scheme client actor: runs the scripted editing workload and
/// measures response and notification.
pub struct SchemeClient {
    config: ClientConfig,
    next_op: u64,
    sent: HashMap<u64, SimTime>,
    bursts_done: u32,
    ops_in_burst: u32,
    in_burst: bool,
    last_version_seen: u64,
    ot: Option<OtClient>,
    /// `(response sample count, total us)` for quick inspection.
    pub responses: Vec<SimDuration>,
}

impl SchemeClient {
    /// Creates a client with the given workload.
    pub fn new(config: ClientConfig) -> Self {
        SchemeClient {
            ot: None, // created at start with our node id
            config,
            next_op: 0,
            sent: HashMap::new(),
            bursts_done: 0,
            ops_in_burst: 0,
            in_burst: false,
            last_version_seen: 0,
            responses: Vec::new(),
        }
    }

    fn issue_edit(&mut self, ctx: &mut Ctx<'_, CcMsg>) {
        let op = self.next_op;
        self.next_op += 1;
        let pos = ctx.rng().index(8);
        let text = "x".to_owned();
        let tag = format!("c{}-{}", ctx.id().0, op);
        ctx.trace("op.issued", tag.clone());
        self.sent.insert(op, ctx.now());
        if self.config.scheme == Scheme::Ot {
            let ot = self.ot.as_mut().expect("ot client initialised");
            let len = ot.text().chars().count();
            let char_op = CharOp::Insert {
                pos: pos.min(len),
                ch: 'x',
            };
            let msg = ot.local_edit(char_op).expect("valid local edit");
            // Local apply is immediate: response time is zero.
            self.responses.push(SimDuration::ZERO);
            ctx.metrics().observe("cc.response", SimDuration::ZERO);
            ctx.trace("op.applied_locally", tag.clone());
            ctx.send(self.config.server, CcMsg::OtOp { tag, msg });
            self.after_op(ctx);
        } else if !self.in_burst {
            self.in_burst = true;
            ctx.send(self.config.server, CcMsg::BurstBegin { op, pos, text });
        } else {
            ctx.send(self.config.server, CcMsg::BurstEdit { op, pos, text });
        }
    }

    fn after_op(&mut self, ctx: &mut Ctx<'_, CcMsg>) {
        self.ops_in_burst += 1;
        if self.ops_in_burst >= self.config.ops_per_burst {
            // Close the burst.
            if self.config.scheme != Scheme::Ot {
                let op = self.next_op;
                self.next_op += 1;
                ctx.send(self.config.server, CcMsg::BurstEnd { op });
            }
            self.in_burst = false;
            self.ops_in_burst = 0;
            self.bursts_done += 1;
            if self.bursts_done < self.config.bursts {
                ctx.set_timer(self.config.between_bursts, T_NEXT);
            }
        } else {
            ctx.set_timer(self.config.think, T_NEXT);
        }
    }
}

impl Actor<CcMsg> for SchemeClient {
    fn on_start(&mut self, ctx: &mut Ctx<'_, CcMsg>) {
        if self.config.scheme == Scheme::Ot {
            self.ot = Some(OtClient::new(ctx.id().0, INITIAL_TEXT));
        }
        ctx.set_timer(self.config.start_delay, T_NEXT);
        if !self.config.scheme.pushes() {
            ctx.set_timer(self.config.poll_every, T_POLL);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, CcMsg>, _from: NodeId, msg: CcMsg) {
        match msg {
            CcMsg::Ack { op } => {
                if let Some(sent_at) = self.sent.remove(&op) {
                    let response = ctx.now().saturating_since(sent_at);
                    self.responses.push(response);
                    ctx.metrics().observe("cc.response", response);
                    self.after_op(ctx);
                }
                // Acks for BurstEnd ops are not in `sent`; ignore them.
            }
            CcMsg::Notice { tag, .. } => {
                ctx.metrics().incr("cc.notices_received");
                if tag.starts_with('c') {
                    ctx.trace("op.seen", tag);
                } else {
                    ctx.trace("lock.notice", tag);
                }
            }
            CcMsg::PollReply { version, entries } => {
                for (_, tag) in entries {
                    ctx.trace("op.seen", tag);
                }
                self.last_version_seen = version;
            }
            CcMsg::OtRelay { tag, msg } => {
                if let Some(ot) = self.ot.as_mut() {
                    ot.server_message(msg);
                    ctx.metrics().incr("cc.notices_received");
                    ctx.trace("op.seen", tag);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, CcMsg>, _timer: TimerId, tag: u64) {
        match tag {
            T_NEXT if self.bursts_done < self.config.bursts => {
                self.issue_edit(ctx);
            }
            T_POLL => {
                ctx.send(
                    self.config.server,
                    CcMsg::Poll {
                        since: self.last_version_seen,
                    },
                );
                ctx.set_timer(self.config.poll_every, T_POLL);
            }
            _ => {}
        }
    }
}

/// Builds a sim with one server (node 0) and `n` clients at the given
/// one-way latency, runs the standard workload to completion, and
/// returns the finished simulation for inspection. Used by experiments
/// E2 and E3.
pub fn run_scheme(scheme: Scheme, n: u32, latency_ms: u64, seed: u64) -> odp_sim::sim::Sim<CcMsg> {
    use odp_sim::prelude::*;
    let link = LinkSpec {
        latency: SimDuration::from_millis(latency_ms),
        jitter: SimDuration::from_micros(latency_ms * 50),
        bytes_per_sec: None,
        loss: 0.0,
    };
    let mut net = Network::new(link);
    net.set_default_link(link);
    let mut sim = SimBuilder::new(seed).network(net).build();
    let server_node = NodeId(0);
    let clients: Vec<NodeId> = (1..=n).map(NodeId).collect();
    sim.add_actor(server_node, SchemeServer::new(scheme, clients.clone()));
    for (i, &c) in clients.iter().enumerate() {
        let mut cfg = ClientConfig::new(scheme, server_node);
        cfg.start_delay = SimDuration::from_millis(20 * i as u64);
        sim.add_actor(c, SchemeClient::new(cfg));
    }
    sim.run(Until::For(SimDuration::from_secs(60)));
    sim
}

#[cfg(test)]
mod tests {
    use super::*;
    use odp_sim::prelude::*;

    fn issued_and_acked(sim: &Sim<CcMsg>, n: u32) -> (usize, usize) {
        let issued = sim.trace().with_label("op.issued").count();
        let expected = (n * 5 * 4) as usize;
        (issued, expected)
    }

    #[test]
    fn every_scheme_completes_the_workload() {
        for scheme in Scheme::ALL {
            let sim = run_scheme(scheme, 3, 10, 7);
            let (issued, expected) = issued_and_acked(&sim, 3);
            assert_eq!(issued, expected, "{scheme:?} issued");
            assert_eq!(
                sim.metrics().histogram("cc.response").map(|h| h.len()),
                Some(expected),
                "{scheme:?} responses"
            );
        }
    }

    #[test]
    fn ot_response_is_zero_and_twophase_is_not() {
        let ot = run_scheme(Scheme::Ot, 3, 50, 7);
        let ot_mean = {
            let mut h = ot.metrics().histogram("cc.response").unwrap().clone();
            h.summary().mean
        };
        assert_eq!(ot_mean, SimDuration::ZERO);
        let tp = run_scheme(Scheme::TwoPhase, 3, 50, 7);
        let tp_mean = {
            let mut h = tp.metrics().histogram("cc.response").unwrap().clone();
            h.summary().mean
        };
        assert!(
            tp_mean >= SimDuration::from_millis(90),
            "2PL pays RTTs: {tp_mean}"
        );
    }

    #[test]
    fn push_schemes_notify_and_pull_schemes_poll() {
        let soft = run_scheme(Scheme::Soft, 3, 10, 7);
        assert!(soft.metrics().counter("cc.notices_sent") > 0);
        let pairs = soft.trace().cause_effect_pairs("op.issued", "op.seen");
        assert!(!pairs.is_empty(), "soft locks flow awareness");
        let tp = run_scheme(Scheme::TwoPhase, 3, 10, 7);
        assert_eq!(
            tp.metrics().counter("cc.notices_sent"),
            0,
            "walls: no awareness push"
        );
        // ...but polling eventually reveals the edits.
        let poll_pairs = tp.trace().cause_effect_pairs("op.issued", "op.seen");
        assert!(
            !poll_pairs.is_empty(),
            "polling still reveals changes eventually"
        );
    }

    #[test]
    fn twophase_blocks_under_contention() {
        let sim = run_scheme(Scheme::TwoPhase, 4, 10, 9);
        assert!(
            sim.metrics().counter("cc.blocked") > 0,
            "bursts collide on the document lock"
        );
    }

    #[test]
    fn txgroup_never_blocks() {
        let sim = run_scheme(Scheme::TxGroup, 4, 10, 9);
        assert_eq!(sim.metrics().counter("cc.blocked"), 0);
        assert!(sim.metrics().counter("cc.group_notices") > 0);
    }
}
