//! Experiment E11: the prescriptiveness ladder — quantifying the §4.1
//! critique of overly prescriptive coordination models.

use odp_workflow::models::{
    CoordinationModel, FreeFormModel, ProcedureModel, ProcedureStep, SpeechActModel, WorkAction,
    WorkItem,
};
use odp_workflow::speechact::Party;

use super::Table;

/// The shared 8-item task: two authors and a reviewer produce a report.
/// The script contains a few *natural deviations* — helping a colleague
/// with their item, finishing something early — of the kind ethnography
/// shows real work is full of ("the process of allocating tasks amongst
/// individuals can be very flexible", §2.2).
fn script() -> Vec<(Party, WorkAction)> {
    use WorkAction::*;
    vec![
        (Party(1), Start(WorkItem(0))),
        (Party(1), Finish(WorkItem(0))),
        (Party(2), Start(WorkItem(1))),
        // Deviation: party 1 helps finish party 2's item.
        (Party(1), Finish(WorkItem(1))),
        (Party(2), Finish(WorkItem(1))),
        // Deviation: party 3 starts reviewing before drafting item 2 done.
        (Party(3), Start(WorkItem(3))),
        (Party(2), Start(WorkItem(2))),
        (Party(2), Finish(WorkItem(2))),
        (Party(3), Finish(WorkItem(3))),
        (Party(1), Start(WorkItem(4))),
        (Party(1), Finish(WorkItem(4))),
        (Party(2), Start(WorkItem(5))),
        (Party(2), Finish(WorkItem(5))),
        (Party(3), Start(WorkItem(6))),
        (Party(3), Finish(WorkItem(6))),
        (Party(1), Start(WorkItem(7))),
        (Party(1), Finish(WorkItem(7))),
    ]
}

fn run(model: &mut dyn CoordinationModel) -> (u64, u64, u64, bool) {
    let mut retried = 0u64;
    for (who, action) in script() {
        if model.attempt(who, action).is_err() {
            // The participant conforms: the right party retries the item
            // in protocol order where possible.
            retried += 1;
            let item = match action {
                WorkAction::Start(i) | WorkAction::Finish(i) => i,
            };
            // Designated performers: item k belongs to party (k % 3) + 1.
            let designated = Party(item.0 % 3 + 1);
            let _ = model.attempt(designated, WorkAction::Start(item));
            let _ = model.attempt(designated, WorkAction::Finish(item));
        }
    }
    // Mop up: ensure completion by letting designated performers finish
    // anything outstanding.
    for k in 0..8u32 {
        if !model.is_complete() {
            let designated = Party(k % 3 + 1);
            let _ = model.attempt(designated, WorkAction::Start(WorkItem(k)));
            let _ = model.attempt(designated, WorkAction::Finish(WorkItem(k)));
        }
    }
    let s = model.stats();
    (s.forced_acts, s.rejections, retried, model.is_complete())
}

/// **E11 — prescriptiveness.** Expected shape: free-form forces nothing
/// and rejects nothing; the office procedure rejects out-of-order and
/// wrong-role deviations; the speech-act model maximises both forced
/// explicit acts (4 per item) and rejected deviations — the Coordinator
/// critique made measurable.
pub fn e11_prescriptiveness() -> Vec<Table> {
    let mut table = Table::new(
        "E11",
        "Prescriptiveness of coordination models on the same 8-item task",
        ["model", "forced_acts", "rejections", "retries", "completed"],
    );
    let items: Vec<WorkItem> = (0..8).map(WorkItem).collect();

    let mut free = FreeFormModel::new(items.clone());
    let (fa, rj, rt, done) = run(&mut free);
    table.push_row([
        "free-form".to_owned(),
        fa.to_string(),
        rj.to_string(),
        rt.to_string(),
        done.to_string(),
    ]);

    let steps: Vec<ProcedureStep> = (0..8)
        .map(|k| ProcedureStep {
            item: WorkItem(k),
            role: Party(k % 3 + 1),
        })
        .collect();
    let mut proc = ProcedureModel::new(steps);
    let (fa, rj, rt, done) = run(&mut proc);
    table.push_row([
        "office-procedure".to_owned(),
        fa.to_string(),
        rj.to_string(),
        rt.to_string(),
        done.to_string(),
    ]);

    let mut speech = SpeechActModel::new(Party(0), (0..8).map(|k| (WorkItem(k), Party(k % 3 + 1))));
    let (fa, rj, rt, done) = run(&mut speech);
    table.push_row([
        "speech-act".to_owned(),
        fa.to_string(),
        rj.to_string(),
        rt.to_string(),
        done.to_string(),
    ]);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_shape_the_prescriptiveness_ladder() {
        let tables = e11_prescriptiveness();
        let t = &tables[0];
        for model in ["free-form", "office-procedure", "speech-act"] {
            assert_eq!(
                t.cell(model, "completed"),
                Some("true"),
                "{model} completed"
            );
        }
        let free_forced = t.cell_f64("free-form", "forced_acts").unwrap();
        let proc_forced = t.cell_f64("office-procedure", "forced_acts").unwrap();
        let speech_forced = t.cell_f64("speech-act", "forced_acts").unwrap();
        assert_eq!(free_forced, 0.0, "informal coordination forces nothing");
        assert!(
            speech_forced >= 32.0,
            "4 speech acts per item minimum: {speech_forced}"
        );
        assert!(speech_forced > proc_forced);
        let free_rej = t.cell_f64("free-form", "rejections").unwrap();
        let speech_rej = t.cell_f64("speech-act", "rejections").unwrap();
        assert_eq!(free_rej, 0.0);
        assert!(
            speech_rej > 0.0,
            "deviations are rejected by the formal model"
        );
    }
}
