//! Experiment E9: group-aware object placement and migration.

use odp_mgmt::migration::MigrationManager;
use odp_mgmt::model::{EngRegistry, ManagedObjectId};
use odp_mgmt::placement::{place, PlacementPolicy, UsagePattern};
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};

use super::Table;

/// Three sites with asymmetric latencies: London (0) — Lancaster (1) —
/// Paris (2); the paper's "geographically dispersed sites".
fn latency(a: NodeId, b: NodeId) -> SimDuration {
    let ms = match (a.0.min(b.0), a.0.max(b.0)) {
        (0, 1) => 8,  // London–Lancaster
        (0, 2) => 25, // London–Paris
        (1, 2) => 15, // Lancaster–Paris (direct peering)
        _ => 0,
    };
    SimDuration::from_millis(ms)
}

/// Per-site mean/max response time (2 × latency to the object's node)
/// weighted by the usage pattern.
fn response_stats(usage: &UsagePattern, node: NodeId) -> (f64, f64) {
    let total = usage.total().max(1);
    let mut weighted = 0.0;
    let mut worst: f64 = 0.0;
    for (site, count) in usage.iter() {
        let rtt_ms = 2.0 * latency(site, node).as_micros() as f64 / 1_000.0;
        weighted += rtt_ms * count as f64;
        if count > 0 {
            worst = worst.max(rtt_ms);
        }
    }
    (weighted / total as f64, worst)
}

/// **E9 — placement.** A shared object created at London used mostly
/// from Lancaster and Paris. Expected shape: the static-home baseline
/// leaves the worst site with the worst response; group-mean improves
/// the mean; group-minmax bounds the worst case. A usage shift then
/// triggers a migration under the manager.
pub fn e9_placement(seed: u64) -> Vec<Table> {
    let _ = seed; // deterministic
    let mut usage = UsagePattern::new();
    usage.record(NodeId(1), 60); // Lancaster is the heavy user
    usage.record(NodeId(2), 30); // Paris is active; London only hosts

    let candidates = [NodeId(0), NodeId(1), NodeId(2)];
    let mut table = Table::new(
        "E9",
        "Placement policies: response across 3 sites (object home = London)",
        ["policy", "chosen_node", "mean_rtt_ms", "worst_rtt_ms"],
    );
    for policy in [
        PlacementPolicy::StaticHome,
        PlacementPolicy::GroupMean,
        PlacementPolicy::GroupMinMax,
    ] {
        let p = place(policy, &usage, &candidates, NodeId(0), &latency);
        let (mean, worst) = response_stats(&usage, p.node);
        table.push_row([
            format!("{policy:?}"),
            p.node.to_string(),
            format!("{mean:.2}"),
            format!("{worst:.2}"),
        ]);
    }

    // Migration after a usage shift.
    let mut migration = Table::new(
        "E9b",
        "Migration after usage shift (Lancaster team hands over to Paris)",
        ["phase", "object_node", "migrations", "mean_rtt_ms"],
    );
    let mut reg = EngRegistry::new();
    for n in 0..3 {
        reg.create_capsule(NodeId(n));
    }
    let cluster = reg
        .create_cluster(odp_mgmt::model::CapsuleId(0))
        .expect("capsule exists");
    reg.create_object(ManagedObjectId(1), cluster, 2_000_000)
        .expect("cluster exists");
    let mut mgr = MigrationManager::new(PlacementPolicy::GroupMean, 0.2, 1_000_000);
    mgr.set_home(cluster, NodeId(0));
    // Phase 1: Lancaster-heavy usage.
    mgr.record_access(cluster, NodeId(1), 80);
    mgr.record_access(cluster, NodeId(2), 10);
    mgr.evaluate(cluster, &mut reg, &latency, SimTime::from_secs(10))
        .expect("registry consistent");
    let node1 = reg.node_of(ManagedObjectId(1)).expect("object exists");
    let mut usage1 = UsagePattern::new();
    usage1.record(NodeId(1), 80);
    usage1.record(NodeId(2), 10);
    let (mean1, _) = response_stats(&usage1, node1);
    migration.push_row([
        "lancaster-heavy".to_owned(),
        node1.to_string(),
        mgr.events().len().to_string(),
        format!("{mean1:.2}"),
    ]);
    // Phase 2: work shifts to Paris; old usage ages away.
    for _ in 0..6 {
        mgr.age_usage();
    }
    mgr.record_access(cluster, NodeId(2), 100);
    mgr.evaluate(cluster, &mut reg, &latency, SimTime::from_secs(100))
        .expect("registry consistent");
    let node2 = reg.node_of(ManagedObjectId(1)).expect("object exists");
    let mut usage2 = UsagePattern::new();
    usage2.record(NodeId(2), 100);
    let (mean2, _) = response_stats(&usage2, node2);
    migration.push_row([
        "paris-heavy".to_owned(),
        node2.to_string(),
        mgr.events().len().to_string(),
        format!("{mean2:.2}"),
    ]);

    vec![table, migration]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_shape_group_aware_beats_static_home() {
        let tables = e9_placement(0);
        let t = &tables[0];
        let static_mean = t.cell_f64("StaticHome", "mean_rtt_ms").unwrap();
        let mean_mean = t.cell_f64("GroupMean", "mean_rtt_ms").unwrap();
        let minmax_worst = t.cell_f64("GroupMinMax", "worst_rtt_ms").unwrap();
        let static_worst = t.cell_f64("StaticHome", "worst_rtt_ms").unwrap();
        assert!(mean_mean < static_mean, "group-mean lowers mean response");
        assert!(
            minmax_worst < static_worst,
            "group-minmax bounds the worst site"
        );
        assert_eq!(t.cell("StaticHome", "chosen_node"), Some("n0"));
        assert_eq!(
            t.cell("GroupMean", "chosen_node"),
            Some("n1"),
            "follow the users"
        );
    }

    #[test]
    fn e9b_shape_usage_shift_migrates_the_object() {
        let tables = e9_placement(0);
        let m = &tables[1];
        assert_eq!(m.cell("lancaster-heavy", "object_node"), Some("n1"));
        assert_eq!(m.cell("paris-heavy", "object_node"), Some("n2"));
        let migrations = m.cell_f64("paris-heavy", "migrations").unwrap();
        assert_eq!(migrations, 2.0, "one migration per phase");
    }
}
