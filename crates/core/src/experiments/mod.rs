//! The derived experiment suite (see DESIGN.md §5): the paper is a
//! position paper with no quantitative evaluation, so each experiment
//! here operationalises one of its figures or claims. Every experiment
//! is a plain function returning [`Table`]s, so integration tests can
//! assert the qualitative *shapes* and the bench harness can print the
//! rows.

pub mod access;
pub mod concurrency;
pub mod groups;
pub mod media;
pub mod mobility;
pub mod placement;
pub mod replication;
pub mod schemes;
pub mod sessions;
pub mod workflow;

use std::fmt;

use serde::{Deserialize, Serialize};

/// A rectangular result table (one per figure/table we regenerate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Experiment id, e.g. `"E3"`.
    pub id: String,
    /// What the table shows.
    pub title: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        columns: impl IntoIterator<Item = impl Into<String>>,
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: impl IntoIterator<Item = impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Finds the cell at `(row_key, column)` where `row_key` matches the
    /// first cell of a row.
    pub fn cell(&self, row_key: &str, column: &str) -> Option<&str> {
        let col = self.columns.iter().position(|c| c == column)?;
        self.rows
            .iter()
            .find(|r| r.first().map(String::as_str) == Some(row_key))
            .and_then(|r| r.get(col))
            .map(String::as_str)
    }

    /// Parses a cell as f64 (for shape assertions in tests).
    pub fn cell_f64(&self, row_key: &str, column: &str) -> Option<f64> {
        self.cell(row_key, column)?.parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map(|s| s.len()).unwrap_or(0))
                    .chain([c.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, cell) in cells.iter().enumerate() {
                write!(f, " {:<width$} |", cell, width = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.columns)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Runs every experiment at its default (fast) parameters and returns
/// all tables — the entry point for `EXPERIMENTS.md` regeneration.
pub fn run_all(seed: u64) -> Vec<Table> {
    let mut out = Vec::new();
    out.extend(sessions::e1_space_time_matrix(seed));
    out.extend(concurrency::e2_walls_vs_awareness(seed));
    out.extend(concurrency::e3_response_notification(seed));
    out.extend(concurrency::e4_lock_granularity(seed));
    out.extend(access::e5_access_control(seed));
    out.extend(media::e6_qos_streams(seed));
    out.extend(media::e7_media_sync(seed));
    out.extend(groups::e8_group_comm(seed));
    out.extend(placement::e9_placement(seed));
    out.extend(mobility::e10_mobility(seed));
    out.extend(workflow::e11_prescriptiveness());
    out.extend(sessions::e12_transitions(seed));
    out.extend(replication::e13_replicated_workspace(seed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("EX", "demo", ["k", "v"]);
        t.push_row(["a", "1.5"]);
        t.push_row(["b", "2"]);
        assert_eq!(t.cell("a", "v"), Some("1.5"));
        assert_eq!(t.cell_f64("b", "v"), Some(2.0));
        assert_eq!(t.cell("c", "v"), None);
        assert_eq!(t.cell("a", "nope"), None);
        let rendered = t.to_string();
        assert!(rendered.contains("demo"));
        assert!(rendered.contains("| a"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_panic() {
        let mut t = Table::new("EX", "demo", ["a", "b"]);
        t.push_row(["only one"]);
    }
}
