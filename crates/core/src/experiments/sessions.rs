//! Experiments E1 and E12: the space–time matrix and seamless
//! transitions.

use odp_access::rbac::{Effect, RoleId};
use odp_access::rights::Rights;
use odp_sim::net::{LinkSpec, NodeId};
use odp_sim::time::{SimDuration, SimTime};

use crate::session::{Session, SessionId, SessionMode, TimeMode};
use crate::workspace::{ObjectId, SharedWorkspace};

use super::Table;

fn workspace_for(participants: &[NodeId]) -> SharedWorkspace {
    let mut ws = SharedWorkspace::new();
    ws.policy_mut()
        .add_rule(RoleId(1), "shared".into(), Rights::ALL, Effect::Allow);
    for &p in participants {
        ws.policy_mut()
            .assign(odp_access::matrix::Subject(p.0), RoleId(1));
        ws.register_observer(p, 0.0);
    }
    ws.create_artefact(ObjectId(1), "shared/draft", "outline");
    ws
}

/// **E1 — Figure 1, the space–time matrix.** The same two-author
/// co-editing task in all four quadrants. Place determines the link
/// (co-located = LAN, remote = 80 ms WAN); time determines whether the
/// second author is present during the first author's edits (sync) or
/// joins two hours later (async). Reported: response time (local edit
/// acknowledgement) and notification time (edit → partner sees it).
pub fn e1_space_time_matrix(seed: u64) -> Vec<Table> {
    let _ = seed; // deterministic
    let mut table = Table::new(
        "E1",
        "The groupware space-time matrix (Figure 1): one task, four quadrants",
        [
            "quadrant",
            "time",
            "place",
            "response_ms",
            "notification_ms",
            "awareness_deliveries",
        ],
    );
    let a = NodeId(0);
    let b = NodeId(1);
    for mode in SessionMode::QUADRANTS {
        let mut session = Session::new(SessionId(1), mode);
        session.join(a, SimTime::ZERO).expect("fresh session");
        let link = match mode.place {
            crate::session::PlaceMode::CoLocated => LinkSpec::lan(),
            crate::session::PlaceMode::Remote => LinkSpec::wan(SimDuration::from_millis(80)),
        };
        let one_way_ms = link.latency.as_micros() as f64 / 1_000.0;
        // Response: an edit round-trips to the shared workspace host
        // (co-located ≈ LAN RTT; remote ≈ WAN RTT).
        let response_ms = 2.0 * one_way_ms;

        let mut ws = workspace_for(&[a, b]);
        session.share("shared/draft");
        // Author A edits at t = 10 s.
        let edit_time = SimTime::from_secs(10);
        let deliveries = ws
            .write(a, ObjectId(1), "outline + section 1", edit_time)
            .expect("author may write");
        let (join_time, notification_ms) = match mode.time {
            TimeMode::Synchronous => {
                // B is present: the awareness delivery crosses the link.
                session.join(b, SimTime::ZERO).expect("b joins");
                (SimTime::ZERO, one_way_ms)
            }
            TimeMode::Asynchronous => {
                // B joins two hours later and catches up from the public
                // history: notification time is dominated by absence.
                let join = edit_time + SimDuration::from_secs(2 * 3600);
                session.join(b, join).expect("b joins later");
                let catch_up = join.saturating_since(edit_time).as_micros() as f64 / 1_000.0;
                (join, catch_up + one_way_ms)
            }
        };
        let _ = join_time;
        // In the async quadrants the live awareness deliveries reached an
        // absent participant's queue; what matters is that the history
        // preserved the edit for catch-up.
        assert_eq!(ws.history().len(), 1);
        table.push_row([
            mode.label().to_owned(),
            format!("{:?}", mode.time),
            format!("{:?}", mode.place),
            format!("{response_ms:.2}"),
            format!("{notification_ms:.2}"),
            deliveries.len().to_string(),
        ]);
    }
    vec![table]
}

/// **E12 — seamless transitions.** A session moves sync → async → sync.
/// Expected shape: shared state and membership survive every switch; the
/// transition cost is the mode-rebind time, not a data migration.
pub fn e12_transitions(seed: u64) -> Vec<Table> {
    let _ = seed;
    let mut table = Table::new(
        "E12",
        "Seamless sync/async transitions: continuity and cost",
        [
            "transition",
            "cost_ms",
            "participants_kept",
            "artefacts_kept",
            "history_kept",
        ],
    );
    let a = NodeId(0);
    let b = NodeId(1);
    let mut session = Session::new(SessionId(9), SessionMode::SYNC_DISTRIBUTED);
    session.join(a, SimTime::ZERO).expect("join a");
    session.join(b, SimTime::ZERO).expect("join b");
    session.share("shared/draft");
    let mut ws = workspace_for(&[a, b]);

    // Work synchronously.
    ws.write(a, ObjectId(1), "draft v1", SimTime::from_secs(1))
        .expect("write");
    ws.write(b, ObjectId(1), "draft v2", SimTime::from_secs(2))
        .expect("write");
    let history_before = ws.history().len();

    // Switch to asynchronous working overnight. The transition is
    // announced on the workspace's cooperation-event bus, so the other
    // author's awareness display shows the seam.
    ws.policy_mut()
        .add_rule(RoleId(1), "session".into(), Rights::READ, Effect::Allow);
    let (t1, announced) = session.switch_mode_via(
        ws.bus_mut(),
        a,
        SessionMode::ASYNC_DISTRIBUTED,
        SimTime::from_secs(3600),
    );
    assert_eq!(announced.len(), 1, "the co-author hears the switch");
    ws.write(
        a,
        ObjectId(1),
        "draft v3 (overnight)",
        SimTime::from_secs(30_000),
    )
    .expect("write");

    // Reconvene synchronously next morning.
    let (t2, _) = session.switch_mode_via(
        ws.bus_mut(),
        b,
        SessionMode::SYNC_DISTRIBUTED,
        SimTime::from_secs(60_000),
    );
    ws.write(
        b,
        ObjectId(1),
        "draft v4 (reconvened)",
        SimTime::from_secs(60_100),
    )
    .expect("write");

    for (label, t) in [("sync->async", &t1), ("async->sync", &t2)] {
        table.push_row([
            label.to_owned(),
            format!("{:.0}", t.cost.as_micros() as f64 / 1_000.0),
            (session.participants().len() == 2).to_string(),
            (session.artefacts().len() == 1).to_string(),
            (ws.history().len() > history_before).to_string(),
        ]);
    }
    // Continuity: the document carried every phase's work.
    let (value, _) = ws
        .read(a, ObjectId(1), SimTime::from_secs(61_000))
        .expect("read");
    assert!(value.contains("v4"));
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_quadrants_differ_in_the_expected_directions() {
        let tables = e1_space_time_matrix(0);
        let t = &tables[0];
        let f2f_notif = t
            .cell_f64("face-to-face interaction", "notification_ms")
            .unwrap();
        let sync_dist_notif = t
            .cell_f64("synchronous distributed interaction", "notification_ms")
            .unwrap();
        let async_dist_notif = t
            .cell_f64("asynchronous distributed interaction", "notification_ms")
            .unwrap();
        assert!(f2f_notif < sync_dist_notif, "distance adds latency");
        assert!(
            async_dist_notif > 1_000_000.0,
            "absence dominates asynchronous notification (hours)"
        );
        let f2f_resp = t
            .cell_f64("face-to-face interaction", "response_ms")
            .unwrap();
        let remote_resp = t
            .cell_f64("synchronous distributed interaction", "response_ms")
            .unwrap();
        assert!(remote_resp > f2f_resp * 10.0, "WAN response dwarfs LAN");
    }

    #[test]
    fn e12_shape_transitions_preserve_everything() {
        let tables = e12_transitions(0);
        let t = &tables[0];
        for row in ["sync->async", "async->sync"] {
            assert_eq!(t.cell(row, "participants_kept"), Some("true"));
            assert_eq!(t.cell(row, "artefacts_kept"), Some("true"));
            assert_eq!(t.cell(row, "history_kept"), Some("true"));
            let cost = t.cell_f64(row, "cost_ms").unwrap();
            assert!(
                cost > 0.0 && cost < 1_000.0,
                "rebind cost is bounded: {cost}"
            );
        }
    }
}
