//! Experiments E2–E4: the concurrency-transparency-versus-awareness
//! trade-off (Figure 2 and the Ellis real-time requirements).

use odp_concurrency::granularity::{unit_count, Granularity};
use odp_concurrency::store::ObjectId;
use odp_concurrency::twophase::{OpKind, SubmitReply, TxnEvent, TxnManager, TxnOp};
use odp_sim::rng::DetRng;
use odp_sim::time::SimTime;

use super::schemes::{run_scheme, Scheme};
use super::Table;

/// Mean of trace-derived notification latencies (issue → first peer
/// sees), in milliseconds; `None` if no pairs were observed.
fn notification_ms(sim: &odp_sim::sim::Sim<super::schemes::CcMsg>) -> Option<f64> {
    let pairs = sim.trace().cause_effect_pairs("op.issued", "op.seen");
    if pairs.is_empty() {
        return None;
    }
    let total_us: u64 = pairs
        .iter()
        .map(|(c, e)| e.time.saturating_since(c.time).as_micros())
        .sum();
    Some(total_us as f64 / pairs.len() as f64 / 1_000.0)
}

fn response_ms(sim: &odp_sim::sim::Sim<super::schemes::CcMsg>) -> f64 {
    sim.metrics()
        .histogram("cc.response")
        .map(|h| {
            let mut h = h.clone();
            h.summary().mean.as_micros() as f64 / 1_000.0
        })
        .unwrap_or(0.0)
}

/// **E2 — Figure 2a vs 2b.** N authors edit one shared document under
/// strict 2PL transactions versus a cooperative transaction group.
/// Expected shape: transactions block and push zero awareness; the group
/// never blocks and floods awareness.
pub fn e2_walls_vs_awareness(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E2",
        "Walls vs information flow: 2PL transactions vs transaction group (Figure 2)",
        [
            "scheme",
            "writers",
            "blocked_ops",
            "aborts",
            "awareness_notices",
            "mean_response_ms",
        ],
    );
    for &n in &[2u32, 4, 8] {
        for scheme in [Scheme::TwoPhase, Scheme::TxGroup] {
            let sim = run_scheme(scheme, n, 10, seed);
            table.push_row([
                format!("{}(n={n})", scheme.label()),
                n.to_string(),
                sim.metrics().counter("cc.blocked").to_string(),
                sim.metrics().counter("cc.aborts").to_string(),
                (sim.metrics().counter("cc.notices_sent")
                    + sim.metrics().counter("cc.group_notices"))
                .to_string(),
                format!("{:.2}", response_ms(&sim)),
            ]);
        }
    }
    vec![table]
}

/// **E3 — Ellis response & notification times.** Every scheme across a
/// latency sweep. Expected shape: OT's response time is flat (~0); the
/// lock-based schemes grow with latency; pull schemes have notification
/// times dominated by the polling interval.
pub fn e3_response_notification(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E3",
        "Response and notification time per scheme (3 users, latency sweep)",
        [
            "scheme",
            "latency_ms",
            "response_ms",
            "notification_ms",
            "blocked_ops",
        ],
    );
    for scheme in Scheme::ALL {
        for &latency in &[1u64, 25, 100] {
            let sim = run_scheme(scheme, 3, latency, seed);
            let notif = notification_ms(&sim)
                .map(|v| format!("{v:.2}"))
                .unwrap_or_else(|| "-".to_owned());
            table.push_row([
                format!("{}@{latency}", scheme.label()),
                latency.to_string(),
                format!("{:.2}", response_ms(&sim)),
                notif,
                sim.metrics().counter("cc.blocked").to_string(),
            ]);
        }
    }
    vec![table]
}

/// **E4 — lock granularity.** The same interleaved edit workload under
/// the five granularities the paper names. Expected shape: finer
/// granularity lowers blocking but raises locking overhead (distinct
/// lock units touched).
pub fn e4_lock_granularity(seed: u64) -> Vec<Table> {
    const DOC_TEXT: &str = "Alpha beta gamma delta. Epsilon zeta eta theta! Iota kappa.\n\
                            Lambda mu nu xi. Omicron pi rho sigma?\n\n\
                            Tau upsilon phi chi. Psi omega alpha beta. Gamma delta epsilon.\n\
                            Zeta eta theta iota! Kappa lambda mu nu.";
    let mut table = Table::new(
        "E4",
        "Lock granularity: blocking vs overhead (4 writers, 40 rounds)",
        [
            "granularity",
            "units",
            "blocked_ops",
            "completed_ops",
            "lock_requests",
        ],
    );
    for g in Granularity::ALL {
        let mut rng = DetRng::seed_from(seed);
        let mut tm = TxnManager::new(g);
        tm.store_mut().create(ObjectId(1), DOC_TEXT);
        let users = 4usize;
        let rounds = 40usize;
        let mut blocked = 0u64;
        let mut completed = 0u64;
        let mut lock_requests = 0u64;
        // Interleave: each round every user begins a txn and edits; all
        // txns commit at round end — so within a round locks collide.
        for _round in 0..rounds {
            let mut txns = Vec::new();
            let mut round_blocked = Vec::new();
            for _u in 0..users {
                let txn = tm.begin();
                let len = tm.store().read(ObjectId(1)).unwrap().value.chars().count();
                let pos = rng.index(len);
                let op = TxnOp {
                    object: ObjectId(1),
                    pos,
                    kind: OpKind::Insert("x".to_owned()),
                };
                lock_requests += 1;
                match tm.submit(txn, op, SimTime::ZERO) {
                    Ok(SubmitReply::Done(_)) => {
                        completed += 1;
                        txns.push(txn);
                    }
                    Ok(SubmitReply::Blocked) => {
                        blocked += 1;
                        round_blocked.push(txn);
                        txns.push(txn);
                    }
                    Err(e) => panic!("unexpected txn error: {e}"),
                }
            }
            // Commit everyone; resumed ops count as completed.
            let mut done = std::collections::HashSet::new();
            let mut worklist: Vec<_> = txns
                .iter()
                .copied()
                .filter(|t| !round_blocked.contains(t))
                .collect();
            while let Some(t) = worklist.pop() {
                if !done.insert(t) {
                    continue;
                }
                for ev in tm.commit(t, SimTime::ZERO).unwrap_or_default() {
                    match ev {
                        TxnEvent::OpCompleted { txn, .. } => {
                            completed += 1;
                            worklist.push(txn);
                        }
                        TxnEvent::TxnAborted { .. } => {}
                    }
                }
            }
            // Any still-blocked txns (shouldn't remain) get aborted.
            for t in txns {
                if !done.contains(&t) {
                    let _ = tm.abort(t, SimTime::ZERO);
                }
            }
        }
        let text_now = tm.store().read(ObjectId(1)).unwrap().value.clone();
        table.push_row([
            g.to_string(),
            unit_count(&text_now, g).to_string(),
            blocked.to_string(),
            completed.to_string(),
            lock_requests.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_shape_transactions_block_and_groups_flow() {
        let tables = e2_walls_vs_awareness(3);
        let t = &tables[0];
        // 8-writer rows make the contrast starkest.
        let tp_blocked = t.cell_f64("2pl-transactions(n=8)", "blocked_ops").unwrap();
        let tg_blocked = t.cell_f64("transaction-group(n=8)", "blocked_ops").unwrap();
        let tp_aware = t
            .cell_f64("2pl-transactions(n=8)", "awareness_notices")
            .unwrap();
        let tg_aware = t
            .cell_f64("transaction-group(n=8)", "awareness_notices")
            .unwrap();
        assert!(tp_blocked > 0.0, "transactions build walls (block)");
        assert_eq!(tg_blocked, 0.0, "the cooperative group never blocks");
        assert_eq!(tp_aware, 0.0, "transactions mask other users");
        assert!(tg_aware > 0.0, "the group floods awareness");
    }

    #[test]
    fn e3_shape_ot_response_is_latency_independent() {
        let tables = e3_response_notification(3);
        let t = &tables[0];
        let ot_1 = t.cell_f64("operation-transform@1", "response_ms").unwrap();
        let ot_100 = t
            .cell_f64("operation-transform@100", "response_ms")
            .unwrap();
        assert_eq!(ot_1, 0.0);
        assert_eq!(ot_100, 0.0, "local apply is free of network latency");
        let tp_1 = t.cell_f64("2pl-transactions@1", "response_ms").unwrap();
        let tp_100 = t.cell_f64("2pl-transactions@100", "response_ms").unwrap();
        assert!(
            tp_100 > tp_1 + 100.0,
            "lock-based response grows with latency"
        );
    }

    #[test]
    fn e4_shape_finer_granularity_blocks_less_with_more_units() {
        let tables = e4_lock_granularity(5);
        let t = &tables[0];
        let doc_blocked = t.cell_f64("document", "blocked_ops").unwrap();
        let word_blocked = t.cell_f64("word", "blocked_ops").unwrap();
        assert!(
            doc_blocked > word_blocked,
            "coarse locks collide more: {doc_blocked} vs {word_blocked}"
        );
        let doc_units = t.cell_f64("document", "units").unwrap();
        let word_units = t.cell_f64("word", "units").unwrap();
        assert!(
            word_units > doc_units * 10.0,
            "word locking manages far more units"
        );
    }
}
