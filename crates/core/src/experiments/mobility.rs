//! Experiment E10: the mobile field engineer across connectivity levels.

use odp_awareness::bus::EventBus;
use odp_concurrency::store::{ObjectId, ObjectStore};
use odp_mobility::host::{MobileHost, Served};
use odp_mobility::reintegration::ConflictPolicy;
use odp_sim::net::{Connectivity, NodeId};
use odp_sim::rng::DetRng;
use odp_sim::time::SimTime;

use super::Table;

/// **E10 — mobility.** A field engineer works a shift: fully connected
/// at the depot, partially connected on the road, disconnected on site.
/// The office edits some of the same objects meanwhile. Expected shape:
/// availability degrades gracefully with the connectivity level (thanks
/// to hoarding), reintegration conflicts grow with disconnection
/// duration, and reconnection performs a measurable bulk update.
pub fn e10_mobility(seed: u64) -> Vec<Table> {
    let mut table = Table::new(
        "E10",
        "Field shift across connectivity levels (ops every minute)",
        [
            "disconnected_minutes",
            "availability_pct",
            "cache_hit_rate_pct",
            "conflicts",
            "bulk_update_bytes",
        ],
    );
    for &offline_minutes in &[10u64, 30, 60, 120] {
        let mut rng = DetRng::seed_from(seed);
        let mut server = ObjectStore::new();
        let n_objects = 20u64;
        for o in 0..n_objects {
            server.create(ObjectId(o), format!("work order {o}: survey the site"));
        }
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        // The office (node 0) observes the engineer's (node 1)
        // reintegration conflicts on the cooperation-event bus.
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        // Hoard the first 15 work orders at the depot.
        for o in 0..15 {
            host.cache_mut().hoard(ObjectId(o));
        }
        host.reconnect_via(&mut bus, NodeId(1), &mut server, SimTime::ZERO)
            .expect("initial hoard fetch");

        let mut minute = 0u64;
        let mut conflicts = 0usize;
        let mut bulk_bytes = 0usize;
        // Phase 1: 20 minutes partially connected on the road.
        for _ in 0..20 {
            minute += 1;
            let obj = ObjectId(rng.range_u64(0, n_objects));
            let _ = host.read(obj, &mut server);
        }
        // Phase 2: disconnected on site; edits logged locally. The
        // office concurrently edits every 20 minutes.
        host.set_connectivity(Connectivity::Disconnected);
        for m in 0..offline_minutes {
            minute += 1;
            let obj = ObjectId(rng.range_u64(0, n_objects));
            if rng.chance(0.4) {
                let _ = host.write(
                    obj,
                    format!("field update at minute {minute}"),
                    &mut server,
                    SimTime::from_secs(minute * 60),
                );
            } else {
                let _ = host.read(obj, &mut server);
            }
            if m % 20 == 19 {
                let office_obj = ObjectId(rng.range_u64(0, n_objects));
                let _ = server.write(office_obj, format!("office edit at minute {minute}"));
            }
        }
        // Phase 3: back at the depot — reconnect, reintegrate, bulk
        // update.
        let (report, announced) = host
            .reconnect_via(
                &mut bus,
                NodeId(1),
                &mut server,
                SimTime::from_secs(minute * 60),
            )
            .expect("reintegration");
        assert_eq!(
            announced.len(),
            report.conflicts(),
            "every settled conflict reaches the office"
        );
        conflicts += report.conflicts();
        bulk_bytes += report.bulk_bytes;

        let (available, unavailable) = host.availability();
        let availability = available as f64 / (available + unavailable).max(1) as f64 * 100.0;
        table.push_row([
            offline_minutes.to_string(),
            format!("{availability:.1}"),
            format!("{:.1}", host.cache().hit_rate() * 100.0),
            conflicts.to_string(),
            bulk_bytes.to_string(),
        ]);
    }

    // Availability per connectivity level (fixed short scenario).
    let mut levels = Table::new(
        "E10b",
        "Operation service source by connectivity level (30 ops each)",
        [
            "level",
            "served_by_server",
            "served_by_cache",
            "logged",
            "unavailable",
        ],
    );
    for level in [
        Connectivity::Full,
        Connectivity::Partial,
        Connectivity::Disconnected,
    ] {
        let mut rng = DetRng::seed_from(seed ^ 0xbeef);
        let mut server = ObjectStore::new();
        for o in 0..10u64 {
            server.create(ObjectId(o), format!("doc {o}"));
        }
        let mut host = MobileHost::new(ConflictPolicy::ServerWins);
        for o in 0..6 {
            host.cache_mut().hoard(ObjectId(o));
        }
        let mut bus = EventBus::new();
        host.reconnect_via(&mut bus, NodeId(1), &mut server, SimTime::ZERO)
            .expect("hoard");
        host.set_connectivity(level);
        let (mut by_server, mut by_cache, mut logged, mut unavailable) = (0u32, 0u32, 0u32, 0u32);
        for i in 0..30u64 {
            let obj = ObjectId(rng.range_u64(0, 10));
            let outcome = if rng.chance(0.5) {
                host.write(obj, format!("edit {i}"), &mut server, SimTime::from_secs(i))
            } else {
                host.read(obj, &mut server).map(|(_, s)| s)
            };
            match outcome {
                Ok(Served::Server) => by_server += 1,
                Ok(Served::Cache) => by_cache += 1,
                Ok(Served::Logged) => logged += 1,
                Err(_) => unavailable += 1,
            }
        }
        levels.push_row([
            format!("{level:?}"),
            by_server.to_string(),
            by_cache.to_string(),
            logged.to_string(),
            unavailable.to_string(),
        ]);
    }

    vec![table, levels]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_shape_conflicts_grow_with_disconnection() {
        let tables = e10_mobility(21);
        let t = &tables[0];
        let short = t.cell_f64("10", "conflicts").unwrap();
        let long = t.cell_f64("120", "conflicts").unwrap();
        assert!(
            long > short,
            "longer disconnection accumulates more conflicts: {long} vs {short}"
        );
        // Availability stays high thanks to hoarding, but below 100%.
        let avail = t.cell_f64("60", "availability_pct").unwrap();
        assert!(
            avail > 60.0 && avail <= 100.0,
            "graceful degradation: {avail}"
        );
        let bulk = t.cell_f64("120", "bulk_update_bytes").unwrap();
        assert!(bulk > 0.0, "reconnection performs a bulk update");
    }

    #[test]
    fn e10b_shape_service_source_follows_the_level() {
        let tables = e10_mobility(21);
        let t = &tables[1];
        assert_eq!(t.cell_f64("Full", "unavailable").unwrap(), 0.0);
        assert_eq!(
            t.cell_f64("Full", "logged").unwrap(),
            0.0,
            "full writes through"
        );
        assert!(
            t.cell_f64("Partial", "logged").unwrap() > 0.0,
            "partial logs writes"
        );
        assert!(
            t.cell_f64("Disconnected", "unavailable").unwrap() > 0.0,
            "unhoarded objects are unreachable offline"
        );
        assert!(
            t.cell_f64("Disconnected", "served_by_cache").unwrap() > 0.0,
            "hoarded objects survive"
        );
    }
}
