//! The rooms metaphor (§3.3.2): "the concept of rooms is used extensively
//! in user interfaces as a means of partitioning and organising work ...
//! providing facilities such as personal spaces (offices), shared spaces
//! (meeting rooms) and doors to move between such spaces."
//!
//! Doors carry a state (open / ajar / closed) that regulates entry — a
//! social-protocol privacy mechanism, like the media-space acceptance
//! policies.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

/// Names a room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RoomId(pub u32);

/// Personal office or shared meeting room.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoomKind {
    /// A personal space with an owner.
    Office(u32),
    /// A shared space.
    MeetingRoom,
}

/// Door states, most to least welcoming.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DoorState {
    /// Anyone may enter.
    #[default]
    Open,
    /// Entry requires a knock accepted by an occupant (modelled as: entry
    /// allowed only if the room is occupied).
    Ajar,
    /// Nobody enters (except an office's owner).
    Closed,
}

/// Errors from room operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoomError {
    /// Unknown room.
    UnknownRoom(RoomId),
    /// The door refused entry.
    DoorRefused(RoomId),
    /// The person is not in the room.
    NotPresent(NodeId),
}

impl fmt::Display for RoomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoomError::UnknownRoom(r) => write!(f, "unknown room {}", r.0),
            RoomError::DoorRefused(r) => write!(f, "the door of room {} refused entry", r.0),
            RoomError::NotPresent(n) => write!(f, "{n} is not in that room"),
        }
    }
}

impl std::error::Error for RoomError {}

struct Room {
    kind: RoomKind,
    door: DoorState,
    occupants: BTreeSet<NodeId>,
    artefacts: BTreeSet<String>,
}

/// A building of rooms.
///
/// # Examples
///
/// ```
/// use cscw_core::rooms::{Building, DoorState, RoomId, RoomKind};
/// use odp_sim::net::NodeId;
///
/// let mut b = Building::new();
/// b.create(RoomId(1), RoomKind::MeetingRoom);
/// b.enter(NodeId(0), RoomId(1))?;
/// assert_eq!(b.occupants(RoomId(1))?, vec![NodeId(0)]);
/// # Ok::<(), cscw_core::rooms::RoomError>(())
/// ```
#[derive(Default)]
pub struct Building {
    rooms: BTreeMap<RoomId, Room>,
    whereabouts: BTreeMap<NodeId, RoomId>,
}

impl Building {
    /// Creates an empty building.
    pub fn new() -> Self {
        Building::default()
    }

    /// Creates a room (door open).
    pub fn create(&mut self, id: RoomId, kind: RoomKind) {
        self.rooms.insert(
            id,
            Room {
                kind,
                door: DoorState::Open,
                occupants: BTreeSet::new(),
                artefacts: BTreeSet::new(),
            },
        );
    }

    /// Sets a room's door state.
    ///
    /// # Errors
    ///
    /// [`RoomError::UnknownRoom`] if absent.
    pub fn set_door(&mut self, id: RoomId, state: DoorState) -> Result<(), RoomError> {
        self.rooms
            .get_mut(&id)
            .map(|r| r.door = state)
            .ok_or(RoomError::UnknownRoom(id))
    }

    /// Enters a room (leaving the previous one), subject to the door.
    ///
    /// # Errors
    ///
    /// Unknown rooms or refusing doors fail.
    pub fn enter(&mut self, who: NodeId, id: RoomId) -> Result<(), RoomError> {
        let room = self.rooms.get(&id).ok_or(RoomError::UnknownRoom(id))?;
        let owner_entering = matches!(room.kind, RoomKind::Office(owner) if owner == who.0);
        let admitted = owner_entering
            || match room.door {
                DoorState::Open => true,
                DoorState::Ajar => !room.occupants.is_empty(),
                DoorState::Closed => false,
            };
        if !admitted {
            return Err(RoomError::DoorRefused(id));
        }
        if let Some(prev) = self.whereabouts.insert(who, id) {
            if let Some(prev_room) = self.rooms.get_mut(&prev) {
                prev_room.occupants.remove(&who);
            }
        }
        self.rooms
            .get_mut(&id)
            .expect("checked above")
            .occupants
            .insert(who);
        Ok(())
    }

    /// Leaves whatever room one is in.
    pub fn leave(&mut self, who: NodeId) {
        if let Some(room_id) = self.whereabouts.remove(&who) {
            if let Some(room) = self.rooms.get_mut(&room_id) {
                room.occupants.remove(&who);
            }
        }
    }

    /// Where someone is.
    pub fn location_of(&self, who: NodeId) -> Option<RoomId> {
        self.whereabouts.get(&who).copied()
    }

    /// Who is in a room.
    ///
    /// # Errors
    ///
    /// [`RoomError::UnknownRoom`] if absent.
    pub fn occupants(&self, id: RoomId) -> Result<Vec<NodeId>, RoomError> {
        Ok(self
            .rooms
            .get(&id)
            .ok_or(RoomError::UnknownRoom(id))?
            .occupants
            .iter()
            .copied()
            .collect())
    }

    /// Brings an artefact into a room (shared work materials).
    ///
    /// # Errors
    ///
    /// [`RoomError::UnknownRoom`] if absent.
    pub fn place_artefact(
        &mut self,
        id: RoomId,
        artefact: impl Into<String>,
    ) -> Result<(), RoomError> {
        self.rooms
            .get_mut(&id)
            .map(|r| {
                r.artefacts.insert(artefact.into());
            })
            .ok_or(RoomError::UnknownRoom(id))
    }

    /// The artefacts visible to `who` — those in their current room.
    pub fn visible_artefacts(&self, who: NodeId) -> Vec<&str> {
        match self.whereabouts.get(&who).and_then(|r| self.rooms.get(r)) {
            Some(room) => room.artefacts.iter().map(|s| s.as_str()).collect(),
            None => Vec::new(),
        }
    }
}

impl fmt::Debug for Building {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Building")
            .field("rooms", &self.rooms.len())
            .field("people", &self.whereabouts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_between_rooms_updates_occupancy() {
        let mut b = Building::new();
        b.create(RoomId(1), RoomKind::MeetingRoom);
        b.create(RoomId(2), RoomKind::MeetingRoom);
        b.enter(NodeId(0), RoomId(1)).unwrap();
        b.enter(NodeId(0), RoomId(2)).unwrap();
        assert_eq!(b.occupants(RoomId(1)).unwrap(), vec![]);
        assert_eq!(b.occupants(RoomId(2)).unwrap(), vec![NodeId(0)]);
        assert_eq!(b.location_of(NodeId(0)), Some(RoomId(2)));
        b.leave(NodeId(0));
        assert_eq!(b.location_of(NodeId(0)), None);
    }

    #[test]
    fn closed_doors_refuse_everyone_but_the_owner() {
        let mut b = Building::new();
        b.create(RoomId(1), RoomKind::Office(7));
        b.set_door(RoomId(1), DoorState::Closed).unwrap();
        assert_eq!(
            b.enter(NodeId(0), RoomId(1)).unwrap_err(),
            RoomError::DoorRefused(RoomId(1))
        );
        b.enter(NodeId(7), RoomId(1)).unwrap();
        assert_eq!(b.occupants(RoomId(1)).unwrap(), vec![NodeId(7)]);
    }

    #[test]
    fn ajar_doors_admit_only_when_occupied() {
        let mut b = Building::new();
        b.create(RoomId(1), RoomKind::Office(0));
        b.set_door(RoomId(1), DoorState::Ajar).unwrap();
        assert!(
            b.enter(NodeId(5), RoomId(1)).is_err(),
            "empty room, nobody to admit you"
        );
        b.enter(NodeId(0), RoomId(1)).unwrap(); // owner walks in
        b.enter(NodeId(5), RoomId(1)).unwrap(); // now the knock is answered
        assert_eq!(b.occupants(RoomId(1)).unwrap().len(), 2);
    }

    #[test]
    fn artefacts_are_visible_only_inside() {
        let mut b = Building::new();
        b.create(RoomId(1), RoomKind::MeetingRoom);
        b.place_artefact(RoomId(1), "whiteboard").unwrap();
        assert!(b.visible_artefacts(NodeId(0)).is_empty());
        b.enter(NodeId(0), RoomId(1)).unwrap();
        assert_eq!(b.visible_artefacts(NodeId(0)), vec!["whiteboard"]);
    }

    #[test]
    fn unknown_rooms_error() {
        let mut b = Building::new();
        assert!(b.enter(NodeId(0), RoomId(9)).is_err());
        assert!(b.set_door(RoomId(9), DoorState::Open).is_err());
        assert!(b.occupants(RoomId(9)).is_err());
        assert!(b.place_artefact(RoomId(9), "x").is_err());
    }
}
