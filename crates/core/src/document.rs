//! Quilt-style co-authoring documents (§3.2.3): "a document in Quilt
//! consists of a base and nodes linked to the base using hypertext
//! techniques ... these nodes act in a similar way to paper notes,
//! post-its, and margin comments ... At any time a Quilt comment network
//! will consist of a current base document, some revision suggestions,
//! and a set of comments."

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// The kinds of annotation Quilt distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnnotationKind {
    /// A margin comment.
    Comment,
    /// A concrete revision suggestion (replacement text).
    Suggestion,
    /// A private note visible only to its author.
    PrivateNote,
}

/// Names an annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AnnotationId(pub u64);

/// An annotation anchored to a char range of the base document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Annotation {
    /// Its id.
    pub id: AnnotationId,
    /// Who wrote it.
    pub author: NodeId,
    /// What kind it is.
    pub kind: AnnotationKind,
    /// Anchor range `[start, end)` in the base text.
    pub range: (usize, usize),
    /// The annotation body (for suggestions: the replacement text).
    pub body: String,
    /// When it was added.
    pub at: SimTime,
    /// Replies, in order.
    pub replies: Vec<(NodeId, String)>,
}

/// Errors from document operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocumentError {
    /// Unknown annotation.
    UnknownAnnotation(AnnotationId),
    /// An anchor range outside the base text.
    BadRange {
        /// The offending range.
        range: (usize, usize),
        /// Base length.
        len: usize,
    },
    /// Only suggestions can be accepted.
    NotASuggestion(AnnotationId),
}

impl fmt::Display for DocumentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DocumentError::UnknownAnnotation(a) => write!(f, "unknown annotation {}", a.0),
            DocumentError::BadRange { range, len } => {
                write!(f, "range {range:?} outside base of length {len}")
            }
            DocumentError::NotASuggestion(a) => write!(f, "annotation {} is not a suggestion", a.0),
        }
    }
}

impl std::error::Error for DocumentError {}

/// A co-authored document: base text plus an annotation network.
///
/// # Examples
///
/// ```
/// use cscw_core::document::{AnnotationKind, QuiltDocument};
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut doc = QuiltDocument::new("The quick brown fox.");
/// let note = doc.annotate(
///     NodeId(1), AnnotationKind::Suggestion, (4, 9), "slow", SimTime::ZERO,
/// )?;
/// doc.accept_suggestion(note)?;
/// assert_eq!(doc.base(), "The slow brown fox.");
/// # Ok::<(), cscw_core::document::DocumentError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct QuiltDocument {
    base: String,
    annotations: BTreeMap<AnnotationId, Annotation>,
    next: u64,
    /// Base revisions applied (accepted suggestions).
    revisions: u64,
}

impl QuiltDocument {
    /// Creates a document with the given base text.
    pub fn new(base: impl Into<String>) -> Self {
        QuiltDocument {
            base: base.into(),
            annotations: BTreeMap::new(),
            next: 0,
            revisions: 0,
        }
    }

    /// The current base text.
    pub fn base(&self) -> &str {
        &self.base
    }

    /// Base revisions applied so far.
    pub fn revisions(&self) -> u64 {
        self.revisions
    }

    /// Adds an annotation anchored at `range` (char indices).
    ///
    /// # Errors
    ///
    /// [`DocumentError::BadRange`] if the anchor falls outside the base.
    pub fn annotate(
        &mut self,
        author: NodeId,
        kind: AnnotationKind,
        range: (usize, usize),
        body: impl Into<String>,
        at: SimTime,
    ) -> Result<AnnotationId, DocumentError> {
        let len = self.base.chars().count();
        if range.0 > range.1 || range.1 > len {
            return Err(DocumentError::BadRange { range, len });
        }
        let id = AnnotationId(self.next);
        self.next += 1;
        self.annotations.insert(
            id,
            Annotation {
                id,
                author,
                kind,
                range,
                body: body.into(),
                at,
                replies: Vec::new(),
            },
        );
        Ok(id)
    }

    /// Replies to an annotation (threaded discussion).
    ///
    /// # Errors
    ///
    /// [`DocumentError::UnknownAnnotation`] if absent.
    pub fn reply(
        &mut self,
        id: AnnotationId,
        who: NodeId,
        text: impl Into<String>,
    ) -> Result<(), DocumentError> {
        let ann = self
            .annotations
            .get_mut(&id)
            .ok_or(DocumentError::UnknownAnnotation(id))?;
        ann.replies.push((who, text.into()));
        Ok(())
    }

    /// Accepts a suggestion: splices its body over its anchor range,
    /// removes it, and re-anchors the other annotations around the edit.
    ///
    /// # Errors
    ///
    /// Fails for unknown ids or non-suggestions.
    pub fn accept_suggestion(&mut self, id: AnnotationId) -> Result<(), DocumentError> {
        let ann = self
            .annotations
            .get(&id)
            .ok_or(DocumentError::UnknownAnnotation(id))?;
        if ann.kind != AnnotationKind::Suggestion {
            return Err(DocumentError::NotASuggestion(id));
        }
        let (start, end) = ann.range;
        let replacement = ann.body.clone();
        let chars: Vec<char> = self.base.chars().collect();
        let mut new_base: String = chars[..start].iter().collect();
        new_base.push_str(&replacement);
        new_base.extend(&chars[end..]);
        self.base = new_base;
        self.revisions += 1;
        let delta = replacement.chars().count() as i64 - (end - start) as i64;
        self.annotations.remove(&id);
        // Re-anchor annotations after the splice point.
        for ann in self.annotations.values_mut() {
            if ann.range.0 >= end {
                ann.range.0 = (ann.range.0 as i64 + delta) as usize;
                ann.range.1 = (ann.range.1 as i64 + delta) as usize;
            } else if ann.range.1 > start {
                // Overlapping anchors collapse onto the splice point.
                ann.range = (start, start + replacement.chars().count());
            }
        }
        Ok(())
    }

    /// Rejects (removes) an annotation.
    ///
    /// # Errors
    ///
    /// [`DocumentError::UnknownAnnotation`] if absent.
    pub fn dismiss(&mut self, id: AnnotationId) -> Result<Annotation, DocumentError> {
        self.annotations
            .remove(&id)
            .ok_or(DocumentError::UnknownAnnotation(id))
    }

    /// Annotations visible to `reader` (private notes only to their
    /// authors), in id order.
    pub fn visible_to(&self, reader: NodeId) -> Vec<&Annotation> {
        self.annotations
            .values()
            .filter(|a| a.kind != AnnotationKind::PrivateNote || a.author == reader)
            .collect()
    }

    /// All annotations (trusted access).
    pub fn annotations(&self) -> impl Iterator<Item = &Annotation> {
        self.annotations.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn annotate_and_thread() {
        let mut doc = QuiltDocument::new("hello world");
        let id = doc
            .annotate(
                NodeId(1),
                AnnotationKind::Comment,
                (0, 5),
                "too informal?",
                NOW,
            )
            .unwrap();
        doc.reply(id, NodeId(2), "it's fine").unwrap();
        let anns = doc.visible_to(NodeId(3));
        assert_eq!(anns.len(), 1);
        assert_eq!(anns[0].replies.len(), 1);
    }

    #[test]
    fn bad_anchors_are_rejected() {
        let mut doc = QuiltDocument::new("short");
        assert!(matches!(
            doc.annotate(NodeId(1), AnnotationKind::Comment, (2, 99), "x", NOW),
            Err(DocumentError::BadRange { .. })
        ));
        assert!(doc
            .annotate(NodeId(1), AnnotationKind::Comment, (3, 2), "x", NOW)
            .is_err());
    }

    #[test]
    fn accepting_a_suggestion_revises_the_base() {
        let mut doc = QuiltDocument::new("the quick fox");
        let s = doc
            .annotate(NodeId(1), AnnotationKind::Suggestion, (4, 9), "sly", NOW)
            .unwrap();
        doc.accept_suggestion(s).unwrap();
        assert_eq!(doc.base(), "the sly fox");
        assert_eq!(doc.revisions(), 1);
        assert!(doc.visible_to(NodeId(1)).is_empty(), "suggestion consumed");
    }

    #[test]
    fn later_annotations_reanchor_after_a_splice() {
        let mut doc = QuiltDocument::new("aaa bbb ccc");
        let s = doc
            .annotate(NodeId(1), AnnotationKind::Suggestion, (0, 3), "x", NOW)
            .unwrap();
        let c = doc
            .annotate(
                NodeId(2),
                AnnotationKind::Comment,
                (8, 11),
                "about ccc",
                NOW,
            )
            .unwrap();
        doc.accept_suggestion(s).unwrap();
        assert_eq!(doc.base(), "x bbb ccc");
        let ann = doc
            .visible_to(NodeId(2))
            .into_iter()
            .find(|a| a.id == c)
            .unwrap();
        assert_eq!(ann.range, (6, 9), "comment still anchors 'ccc'");
    }

    #[test]
    fn overlapping_annotations_collapse_to_the_splice() {
        let mut doc = QuiltDocument::new("abcdef");
        let s = doc
            .annotate(NodeId(1), AnnotationKind::Suggestion, (1, 4), "XY", NOW)
            .unwrap();
        let overlapping = doc
            .annotate(
                NodeId(2),
                AnnotationKind::Comment,
                (2, 5),
                "spans the edit",
                NOW,
            )
            .unwrap();
        doc.accept_suggestion(s).unwrap();
        assert_eq!(doc.base(), "aXYef");
        let ann = doc
            .visible_to(NodeId(2))
            .into_iter()
            .find(|a| a.id == overlapping)
            .unwrap();
        assert_eq!(ann.range, (1, 3));
    }

    #[test]
    fn private_notes_are_private() {
        let mut doc = QuiltDocument::new("draft");
        doc.annotate(NodeId(1), AnnotationKind::PrivateNote, (0, 5), "ugh", NOW)
            .unwrap();
        assert_eq!(doc.visible_to(NodeId(1)).len(), 1);
        assert!(doc.visible_to(NodeId(2)).is_empty());
    }

    #[test]
    fn only_suggestions_can_be_accepted() {
        let mut doc = QuiltDocument::new("text");
        let c = doc
            .annotate(NodeId(1), AnnotationKind::Comment, (0, 4), "note", NOW)
            .unwrap();
        assert_eq!(
            doc.accept_suggestion(c).unwrap_err(),
            DocumentError::NotASuggestion(c)
        );
        doc.dismiss(c).unwrap();
        assert!(doc.dismiss(c).is_err());
    }
}
