//! Desktop conferencing (§3.2.2): the two architectures the paper
//! contrasts.
//!
//! **Collaboration-transparent** conferencing wraps an unmodified
//! single-user application: output is multicast, input is multiplexed
//! through floor control so the application sees one event stream
//! ("users must take turns in interacting with the application").
//!
//! **Collaboration-aware** conferencing manages sharing explicitly: every
//! participant holds a view with its own viewport/telepointer (relaxed
//! WYSIWIS) and inputs interleave freely.

use std::collections::BTreeMap;
use std::fmt;

use odp_awareness::bus::{BusDelivery, EventBus};
use odp_concurrency::floor::{FloorControl, FloorPolicy};
use odp_concurrency::locks::ClientId;
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use serde::{Deserialize, Serialize};

/// An input event a participant wants the shared application to process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InputEvent {
    /// Who issued it.
    pub from: u32,
    /// Opaque payload (keystroke, pointer action...).
    pub payload: String,
}

/// Why an input was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConferenceError {
    /// The participant does not hold the floor.
    NoFloor(NodeId),
    /// Unknown participant.
    UnknownParticipant(NodeId),
}

impl fmt::Display for ConferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConferenceError::NoFloor(n) => write!(f, "{n} does not hold the floor"),
            ConferenceError::UnknownParticipant(n) => write!(f, "{n} is not in the conference"),
        }
    }
}

impl std::error::Error for ConferenceError {}

/// Collaboration-transparent conference: one application state, floor
/// control, full WYSIWIS output multicast.
///
/// # Examples
///
/// ```
/// use cscw_core::conference::TransparentConference;
/// use odp_awareness::bus::EventBus;
/// use odp_concurrency::floor::FloorPolicy;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut bus = EventBus::new();
/// let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
/// conf.join(NodeId(0));
/// conf.join(NodeId(1));
/// conf.request_floor_via(&mut bus, NodeId(0), SimTime::ZERO);
/// let outputs = conf.input(NodeId(0), "type A", SimTime::ZERO)?;
/// assert_eq!(outputs.len(), 2, "both participants see the same output");
/// # Ok::<(), cscw_core::conference::ConferenceError>(())
/// ```
#[derive(Debug)]
pub struct TransparentConference {
    participants: Vec<NodeId>,
    floor: FloorControl,
    /// The single application's event log (what it has processed).
    app_log: Vec<InputEvent>,
}

impl TransparentConference {
    /// Creates a conference with the given floor policy.
    pub fn new(policy: FloorPolicy) -> Self {
        TransparentConference {
            participants: Vec::new(),
            floor: FloorControl::new(policy),
            app_log: Vec::new(),
        }
    }

    /// Adds a participant.
    pub fn join(&mut self, who: NodeId) {
        if !self.participants.contains(&who) {
            self.participants.push(who);
        }
    }

    /// Requests the floor, announcing grants on the cooperation-event
    /// bus (so every participant's awareness display can show whose turn
    /// it is).
    pub fn request_floor_via(
        &mut self,
        bus: &mut EventBus,
        who: NodeId,
        now: SimTime,
    ) -> Vec<BusDelivery> {
        self.floor.request_via(bus, ClientId(who.0), now)
    }

    /// Releases the floor, announcing the hand-over on the
    /// cooperation-event bus.
    pub fn release_floor_via(
        &mut self,
        bus: &mut EventBus,
        who: NodeId,
        now: SimTime,
    ) -> Vec<BusDelivery> {
        self.floor
            .release_via(bus, ClientId(who.0), now)
            .unwrap_or_default()
    }

    /// Current floor holder.
    pub fn floor_holder(&self) -> Option<NodeId> {
        self.floor.holder().map(|c| NodeId(c.0))
    }

    /// Submits input: only the floor holder may drive the application;
    /// output (the processed event) is multicast to everyone.
    ///
    /// # Errors
    ///
    /// [`ConferenceError::NoFloor`] for non-holders.
    pub fn input(
        &mut self,
        who: NodeId,
        payload: impl Into<String>,
        _now: SimTime,
    ) -> Result<Vec<(NodeId, InputEvent)>, ConferenceError> {
        if !self.participants.contains(&who) {
            return Err(ConferenceError::UnknownParticipant(who));
        }
        if self.floor_holder() != Some(who) {
            return Err(ConferenceError::NoFloor(who));
        }
        let event = InputEvent {
            from: who.0,
            payload: payload.into(),
        };
        self.app_log.push(event.clone());
        Ok(self
            .participants
            .iter()
            .map(|&p| (p, event.clone()))
            .collect())
    }

    /// What the single application has processed, in order.
    pub fn app_log(&self) -> &[InputEvent] {
        &self.app_log
    }
}

/// One participant's view in a collaboration-aware conference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// Scroll position (relaxed WYSIWIS: views may differ).
    pub viewport: u32,
    /// Telepointer position, visible to the others.
    pub telepointer: Option<(u32, u32)>,
}

/// Collaboration-aware conference: per-user views, free interleaving,
/// explicit sharing management.
#[derive(Debug, Default)]
pub struct AwareConference {
    views: BTreeMap<NodeId, View>,
    shared_log: Vec<InputEvent>,
}

impl AwareConference {
    /// Creates an empty conference.
    pub fn new() -> Self {
        AwareConference::default()
    }

    /// Adds a participant with a default view.
    pub fn join(&mut self, who: NodeId) {
        self.views.entry(who).or_insert(View {
            viewport: 0,
            telepointer: None,
        });
    }

    /// Scrolls a private viewport (no coordination needed — the paper's
    /// "sharing ... presented in a variety of different ways to different
    /// users").
    ///
    /// # Errors
    ///
    /// [`ConferenceError::UnknownParticipant`] if absent.
    pub fn scroll(&mut self, who: NodeId, viewport: u32) -> Result<(), ConferenceError> {
        self.views
            .get_mut(&who)
            .map(|v| v.viewport = viewport)
            .ok_or(ConferenceError::UnknownParticipant(who))
    }

    /// Moves a telepointer; returns the peers who should render it.
    ///
    /// # Errors
    ///
    /// [`ConferenceError::UnknownParticipant`] if absent.
    pub fn point(&mut self, who: NodeId, at: (u32, u32)) -> Result<Vec<NodeId>, ConferenceError> {
        let view = self
            .views
            .get_mut(&who)
            .ok_or(ConferenceError::UnknownParticipant(who))?;
        view.telepointer = Some(at);
        Ok(self.views.keys().copied().filter(|&n| n != who).collect())
    }

    /// Submits input — no floor, everyone interleaves.
    ///
    /// # Errors
    ///
    /// [`ConferenceError::UnknownParticipant`] if absent.
    pub fn input(
        &mut self,
        who: NodeId,
        payload: impl Into<String>,
    ) -> Result<(), ConferenceError> {
        if !self.views.contains_key(&who) {
            return Err(ConferenceError::UnknownParticipant(who));
        }
        self.shared_log.push(InputEvent {
            from: who.0,
            payload: payload.into(),
        });
        Ok(())
    }

    /// A participant's view.
    pub fn view(&self, who: NodeId) -> Option<&View> {
        self.views.get(&who)
    }

    /// The interleaved shared log.
    pub fn shared_log(&self) -> &[InputEvent] {
        &self.shared_log
    }
}

#[cfg(test)]
// the legacy Vec<FloorEvent> shims stay covered until removal
mod tests {
    use super::*;

    const NOW: SimTime = SimTime::ZERO;

    #[test]
    fn floor_grants_via_the_bus_reach_the_other_participants() {
        let mut bus = EventBus::new();
        bus.register(NodeId(0), 0.0);
        bus.register(NodeId(1), 0.0);
        let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
        conf.join(NodeId(0));
        conf.join(NodeId(1));
        let seen = conf.request_floor_via(&mut bus, NodeId(0), NOW);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].observer, NodeId(1));
        assert_eq!(seen[0].event.kind.label(), "floor.granted");
        // The hand-over announces idle (empty queue) to the non-actor.
        let seen = conf.release_floor_via(&mut bus, NodeId(0), NOW);
        assert_eq!(seen[0].event.kind.label(), "floor.idle");
    }

    #[test]
    fn transparent_conference_enforces_turn_taking() {
        let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
        conf.join(NodeId(0));
        conf.join(NodeId(1));
        conf.request_floor_via(&mut EventBus::new(), NodeId(0), NOW);
        conf.input(NodeId(0), "a", NOW).unwrap();
        assert_eq!(
            conf.input(NodeId(1), "b", NOW).unwrap_err(),
            ConferenceError::NoFloor(NodeId(1))
        );
        // Floor passes on release.
        conf.request_floor_via(&mut EventBus::new(), NodeId(1), NOW);
        conf.release_floor_via(&mut EventBus::new(), NodeId(0), NOW);
        conf.input(NodeId(1), "b", NOW).unwrap();
        assert_eq!(conf.app_log().len(), 2);
    }

    #[test]
    fn transparent_output_is_strict_wysiwis() {
        let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
        for n in 0..3 {
            conf.join(NodeId(n));
        }
        conf.request_floor_via(&mut EventBus::new(), NodeId(2), NOW);
        let out = conf.input(NodeId(2), "draw", NOW).unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, e)| e.payload == "draw"));
    }

    #[test]
    fn non_participants_are_rejected() {
        let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
        conf.join(NodeId(0));
        conf.request_floor_via(&mut EventBus::new(), NodeId(9), NOW); // floor even grants to strangers...
        assert_eq!(
            conf.input(NodeId(9), "x", NOW).unwrap_err(),
            ConferenceError::UnknownParticipant(NodeId(9))
        );
    }

    #[test]
    fn aware_conference_interleaves_freely() {
        let mut conf = AwareConference::new();
        conf.join(NodeId(0));
        conf.join(NodeId(1));
        conf.input(NodeId(0), "a").unwrap();
        conf.input(NodeId(1), "b").unwrap();
        conf.input(NodeId(0), "c").unwrap();
        assert_eq!(conf.shared_log().len(), 3);
    }

    #[test]
    fn aware_views_are_independent() {
        let mut conf = AwareConference::new();
        conf.join(NodeId(0));
        conf.join(NodeId(1));
        conf.scroll(NodeId(0), 10).unwrap();
        conf.scroll(NodeId(1), 99).unwrap();
        assert_eq!(conf.view(NodeId(0)).unwrap().viewport, 10);
        assert_eq!(conf.view(NodeId(1)).unwrap().viewport, 99);
    }

    #[test]
    fn telepointers_broadcast_to_peers() {
        let mut conf = AwareConference::new();
        conf.join(NodeId(0));
        conf.join(NodeId(1));
        conf.join(NodeId(2));
        let peers = conf.point(NodeId(1), (3, 4)).unwrap();
        assert_eq!(peers, vec![NodeId(0), NodeId(2)]);
        assert_eq!(conf.view(NodeId(1)).unwrap().telepointer, Some((3, 4)));
        assert!(conf.point(NodeId(9), (0, 0)).is_err());
    }
}
