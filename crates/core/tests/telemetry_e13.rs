//! Acceptance test for the telemetry tentpole: tracing a group RPC in
//! the e13-style replicated-workspace WAN yields a single well-formed
//! causal DAG, and its critical path — the longest virtual-time chain —
//! runs through the *slowest* member's reply chain, which is exactly
//! what an operator debugging tail latency needs the trace to show.

use odp_groupcomm::actors::{GroupActor, GroupApp, RpcConfig};
use odp_groupcomm::membership::{GroupId, View};
use odp_groupcomm::multicast::{Delivery, GcMsg, Ordering, Reliability};
use odp_net::ctx::NetCtx;
use odp_sim::prelude::*;
use odp_telemetry::collector::Collector;

/// The replica application: acknowledges the workspace sync RPC.
struct Ack;

impl GroupApp<String> for Ack {
    fn on_deliver(&mut self, _ctx: &mut dyn NetCtx<GcMsg<String>>, _delivery: Delivery<String>) {}

    fn on_rpc(
        &mut self,
        _ctx: &mut dyn NetCtx<GcMsg<String>>,
        _from: NodeId,
        _call: u64,
        payload: &String,
    ) -> Option<String> {
        Some(format!("ack:{payload}"))
    }
}

/// The coordinating replica: issues the group RPC at start.
struct CallAtStart {
    inner: GroupActor<String, Ack>,
}

impl Actor<GcMsg<String>> for CallAtStart {
    fn on_start(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>) {
        Actor::on_start(&mut self.inner, ctx);
        self.inner
            .invoke_rpc_now(ctx, "sync-workspace".to_owned(), RpcConfig::default());
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, from: NodeId, msg: GcMsg<String>) {
        Actor::on_message(&mut self.inner, ctx, from, msg);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, GcMsg<String>>, timer: TimerId, tag: u64) {
        self.inner.on_timer(ctx, timer, tag);
    }
}

fn telemetric(me: NodeId, view: View) -> GroupActor<String, Ack> {
    let mut actor = GroupActor::new(me, view, Ordering::Unordered, Reliability::BestEffort, Ack);
    actor.set_telemetry(true);
    actor
}

#[test]
fn group_rpc_critical_path_runs_through_the_slowest_member() {
    // Four workspace replicas on the e13 WAN (15 ms links), except the
    // caller↔replica-3 link, which is eight times slower. Loss and
    // jitter are zeroed so "slowest" is structural, not sampled.
    let fast = LinkSpec {
        latency: SimDuration::from_millis(15),
        jitter: SimDuration::ZERO,
        bytes_per_sec: None,
        loss: 0.0,
    };
    let slow = LinkSpec {
        latency: SimDuration::from_millis(120),
        ..fast
    };
    let caller = NodeId(0);
    let laggard = NodeId(3);
    let mut net = Network::new(fast);
    net.set_default_link(fast);
    net.set_link(caller, laggard, slow);

    let mut sim: Sim<GcMsg<String>> = SimBuilder::new(1913).network(net).build();
    let members: Vec<NodeId> = (0..4).map(NodeId).collect();
    let view = View::initial(GroupId(13), members.clone());
    sim.add_actor(
        caller,
        CallAtStart {
            inner: telemetric(caller, view.clone()),
        },
    );
    for &m in &members[1..] {
        sim.add_actor(m, telemetric(m, view.clone()));
    }
    sim.run(Until::For(SimDuration::from_secs(2)));

    let collector = Collector::from_trace(sim.trace());
    assert_eq!(collector.well_formed(), Ok(()), "span audit must pass");
    assert_eq!(collector.len(), 1, "one call, one causal trace");
    let (_, dag) = collector.traces().next().unwrap();
    assert_eq!(dag.len(), 7, "rpc.call root + 3 serves + 3 replies");

    let path = dag.critical_path();
    let kinds: Vec<&str> = path.iter().map(|s| s.kind.as_str()).collect();
    assert_eq!(kinds, ["rpc.call", "rpc.serve", "rpc.reply"]);
    assert_eq!(
        path[1].node, laggard,
        "the critical path's serve span sits on the slowest member"
    );
    assert_eq!(
        path[2].node, caller,
        "…and its reply span is observed back at the caller"
    );
    // Quorum::All: the call completes exactly when the slowest reply
    // lands, so the root closes with the critical reply.
    assert_eq!(path[0].closed, path[2].closed);
    // The whole chain costs at least the slow link's round trip.
    let root = path[0];
    let elapsed = root.closed.unwrap().saturating_since(root.opened);
    assert!(
        elapsed >= SimDuration::from_millis(240),
        "critical path {elapsed:?} must cover the 2×120 ms round trip"
    );
}
