//! Property tests for the flight-strip board and the Quilt document.

use cscw_core::document::{AnnotationKind, QuiltDocument};
use cscw_core::flightstrips::{Beacon, Callsign, FlightProgressBoard, FlightStrip, PlacementMode};
use odp_sim::net::NodeId;
use odp_sim::time::SimTime;
use proptest::prelude::*;

fn strip(idx: usize, eta_s: u64) -> FlightStrip {
    FlightStrip {
        callsign: Callsign(format!("FL{idx}")),
        eta: SimTime::from_secs(eta_s),
        level: 330,
        instructions: Vec::new(),
    }
}

proptest! {
    /// Automatic placement always keeps the rack sorted by ETA and never
    /// raises attention; manual placement raises exactly one attention
    /// event per action.
    #[test]
    fn automatic_racks_stay_eta_sorted(etas in prop::collection::vec(0u64..10_000, 1..20)) {
        let mut board = FlightProgressBoard::new();
        let rack = Beacon("POL".into());
        board.add_rack(rack.clone());
        for (i, &eta) in etas.iter().enumerate() {
            board
                .place(NodeId(0), rack.clone(), strip(i, eta), PlacementMode::Automatic, None, SimTime::ZERO)
                .expect("rack exists");
        }
        let strips = board.rack(&rack).expect("rack exists");
        prop_assert_eq!(strips.len(), etas.len());
        for w in strips.windows(2) {
            prop_assert!(w[0].eta <= w[1].eta, "ETA order violated");
        }
        prop_assert_eq!(board.attention().len(), 0, "automation is silent");
    }

    /// Manual reorders never lose strips and always raise attention.
    #[test]
    fn manual_reorders_preserve_strips(
        etas in prop::collection::vec(0u64..10_000, 2..12),
        moves in prop::collection::vec((0usize..12, 0usize..12), 0..10),
    ) {
        let mut board = FlightProgressBoard::new();
        let rack = Beacon("TLA".into());
        board.add_rack(rack.clone());
        for (i, &eta) in etas.iter().enumerate() {
            board
                .place(NodeId(0), rack.clone(), strip(i, eta), PlacementMode::Automatic, None, SimTime::ZERO)
                .expect("rack exists");
        }
        let n = etas.len();
        let mut expected_attention = 0;
        for &(from_idx, to_idx) in &moves {
            let callsign = Callsign(format!("FL{}", from_idx % n));
            if to_idx < n {
                board
                    .reorder(NodeId(1), &rack, &callsign, to_idx, SimTime::ZERO)
                    .expect("in-range move of an existing strip");
                expected_attention += 1;
            } else {
                prop_assert!(board.reorder(NodeId(1), &rack, &callsign, to_idx, SimTime::ZERO).is_err());
            }
        }
        prop_assert_eq!(board.rack(&rack).expect("rack exists").len(), n, "no strip lost");
        prop_assert_eq!(board.attention().len(), expected_attention);
    }

    /// Quilt: accepting any valid suggestion leaves every remaining
    /// annotation anchored inside the (new) base bounds.
    #[test]
    fn suggestion_acceptance_keeps_anchors_in_bounds(
        base in "[a-z ]{10,60}",
        s_start in 0usize..30,
        s_len in 1usize..10,
        replacement in "[a-z]{0,12}",
        others in prop::collection::vec((0usize..50, 1usize..10), 0..6),
    ) {
        let len = base.chars().count();
        let s_start = s_start.min(len.saturating_sub(1));
        let s_end = (s_start + s_len).min(len);
        let mut doc = QuiltDocument::new(base.as_str());
        let suggestion = doc
            .annotate(NodeId(1), AnnotationKind::Suggestion, (s_start, s_end), replacement.as_str(), SimTime::ZERO)
            .expect("valid anchor");
        let mut added = 0;
        for &(start, alen) in &others {
            let start = start.min(len.saturating_sub(1));
            let end = (start + alen).min(len);
            if start <= end {
                doc.annotate(NodeId(2), AnnotationKind::Comment, (start, end), "c", SimTime::ZERO)
                    .expect("valid anchor");
                added += 1;
            }
        }
        doc.accept_suggestion(suggestion).expect("is a suggestion");
        let new_len = doc.base().chars().count();
        let visible = doc.visible_to(NodeId(2));
        prop_assert_eq!(visible.len(), added, "comments survive");
        for ann in visible {
            prop_assert!(ann.range.0 <= ann.range.1, "range stays ordered: {:?}", ann.range);
            prop_assert!(
                ann.range.1 <= new_len,
                "anchor {:?} beyond new base length {new_len}",
                ann.range
            );
        }
    }
}
