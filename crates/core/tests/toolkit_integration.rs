//! Integration tests across the toolkit modules of `cscw-core`:
//! conferencing inside sessions, flight strips feeding awareness, and
//! documents flowing through workflow routes.

use cscw_core::conference::TransparentConference;
use cscw_core::document::{AnnotationKind, QuiltDocument};
use cscw_core::flightstrips::{Beacon, Callsign, FlightProgressBoard, FlightStrip, PlacementMode};
use cscw_core::session::{Session, SessionId, SessionMode};
use odp_awareness::bus::EventBus;
use odp_concurrency::floor::FloorPolicy;
use odp_sim::net::NodeId;
use odp_sim::time::{SimDuration, SimTime};
use odp_workflow::routes::{Next, RouteStep, RoutedProcedure, StepId};
use odp_workflow::speechact::Party;
use std::collections::BTreeMap;

/// A conference runs inside a session; the session's mode transition to
/// async ends the floor-controlled phase but preserves the artefacts.
#[test]
fn conference_lives_inside_a_session() {
    let mut bus = EventBus::new();
    let mut session = Session::new(SessionId(3), SessionMode::SYNC_DISTRIBUTED);
    let mut conf = TransparentConference::new(FloorPolicy::RequestQueue);
    for n in 0..3u32 {
        session
            .join(NodeId(n), SimTime::ZERO)
            .expect("fresh member");
        conf.join(NodeId(n));
        bus.register(NodeId(n), 0.0);
    }
    session.share("whiteboard");
    let grants = conf.request_floor_via(&mut bus, NodeId(0), SimTime::ZERO);
    assert_eq!(grants.len(), 2, "both other members see the floor grant");
    conf.input(NodeId(0), "sketch the design", SimTime::from_secs(1))
        .expect("floor holder");
    // The meeting ends; work continues asynchronously on the same session.
    let (t, announced) = session.switch_mode_via(
        &mut bus,
        NodeId(0),
        SessionMode::ASYNC_DISTRIBUTED,
        SimTime::from_secs(3_600),
    );
    assert!(t.cost > SimDuration::ZERO);
    assert_eq!(announced.len(), 2, "the seam is announced to the others");
    assert_eq!(
        session.artefacts(),
        vec!["whiteboard"],
        "artefact survives the mode switch"
    );
    assert_eq!(conf.app_log().len(), 1, "the synchronous work is on record");
}

/// The flight-strip board's manual actions behave like awareness events:
/// they accumulate, carry the actor, and order by time.
#[test]
fn flight_strip_attention_is_a_public_record() {
    let mut board = FlightProgressBoard::new();
    let pol = Beacon("POL".into());
    board.add_rack(pol.clone());
    for (i, (cs, eta)) in [("A1", 300u64), ("B2", 400), ("C3", 500)]
        .iter()
        .enumerate()
    {
        board
            .place(
                NodeId(i as u32),
                pol.clone(),
                FlightStrip {
                    callsign: Callsign((*cs).into()),
                    eta: SimTime::from_secs(*eta),
                    level: 330,
                    instructions: vec![],
                },
                PlacementMode::Manual,
                Some(i),
                SimTime::from_secs(i as u64),
            )
            .expect("rack exists");
    }
    let attention = board.attention();
    assert_eq!(attention.len(), 3);
    // Ordered and attributed: the team can reconstruct who did what when.
    for (i, ev) in attention.iter().enumerate() {
        assert_eq!(ev.by, NodeId(i as u32));
        assert_eq!(ev.at, SimTime::from_secs(i as u64));
    }
}

/// A document travels an editorial route: drafted, annotated, revised,
/// approved — the workflow gates the document operations.
#[test]
fn document_flows_through_an_editorial_route() {
    let author = Party(1);
    let editor = Party(2);
    let steps = vec![
        RouteStep {
            id: StepId(0),
            role: author,
            description: "draft".into(),
            routes: BTreeMap::from([("submitted".to_owned(), Next::Step(StepId(1)))]),
        },
        RouteStep {
            id: StepId(1),
            role: editor,
            description: "review".into(),
            routes: BTreeMap::from([
                ("approved".to_owned(), Next::Done),
                ("revise".to_owned(), Next::Step(StepId(0))),
            ]),
        },
    ];
    let mut route = RoutedProcedure::new(steps, StepId(0)).expect("valid route");
    let mut doc = QuiltDocument::new("The draft introducton.");

    // Draft submitted.
    route.perform(author, "submitted").expect("author's turn");
    // The editor spots the typo, attaches a suggestion, and routes back.
    let fix = doc
        .annotate(
            NodeId(2),
            AnnotationKind::Suggestion,
            (10, 21),
            "introduction",
            SimTime::ZERO,
        )
        .expect("anchor in range");
    route.perform(editor, "revise").expect("editor's turn");
    assert_eq!(route.current().expect("route continues").id, StepId(0));
    // The author accepts the fix and resubmits.
    doc.accept_suggestion(fix).expect("is a suggestion");
    assert_eq!(doc.base(), "The draft introduction.");
    route.perform(author, "submitted").expect("author's turn");
    route.perform(editor, "approved").expect("editor's turn");
    assert!(route.is_done());
    assert_eq!(route.times_performed(StepId(0)), 2, "one rework loop");
    assert_eq!(doc.revisions(), 1);
}
