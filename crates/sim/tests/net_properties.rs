//! Property tests for the network model: partitions, connectivity and
//! bandwidth queueing.

use odp_sim::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// Partition separation is symmetric, and healing restores traffic
    /// between every pair.
    #[test]
    fn partition_is_symmetric_and_heals(
        group_a in prop::collection::btree_set(0u32..8, 1..4),
        group_b in prop::collection::btree_set(8u32..16, 1..4),
        probe_a in 0u32..8,
        probe_b in 8u32..16,
    ) {
        let mut net = Network::new(LinkSpec::ideal());
        let a: HashSet<NodeId> = group_a.iter().map(|&n| NodeId(n)).collect();
        let b: HashSet<NodeId> = group_b.iter().map(|&n| NodeId(n)).collect();
        net.partition(vec![a.clone(), b.clone()]);
        for &x in &a {
            for &y in &b {
                prop_assert!(net.is_partitioned(x, y));
                prop_assert!(net.is_partitioned(y, x), "symmetry");
            }
        }
        // Within one side nothing is partitioned.
        for &x in &a {
            for &y in &a {
                prop_assert!(!net.is_partitioned(x, y));
            }
        }
        net.heal();
        prop_assert!(!net.is_partitioned(NodeId(probe_a), NodeId(probe_b)));
    }

    /// A disconnected node can neither send nor receive, whatever the
    /// link; restoring full connectivity restores both directions.
    #[test]
    fn disconnection_is_total_and_reversible(node in 0u32..8, peer in 8u32..16, seed in any::<u64>()) {
        let mut net = Network::new(LinkSpec::lan());
        let mut rng = DetRng::seed_from(seed);
        net.set_connectivity(NodeId(node), Connectivity::Disconnected);
        prop_assert!(matches!(
            net.submit(SimTime::ZERO, NodeId(node), NodeId(peer), 10, &mut rng),
            Verdict::Dropped(DropReason::Disconnected)
        ));
        prop_assert!(matches!(
            net.submit(SimTime::ZERO, NodeId(peer), NodeId(node), 10, &mut rng),
            Verdict::Dropped(DropReason::Disconnected)
        ));
        net.set_connectivity(NodeId(node), Connectivity::Full);
        prop_assert!(matches!(
            net.submit(SimTime::ZERO, NodeId(node), NodeId(peer), 10, &mut rng),
            Verdict::DeliverAt(_)
        ));
    }

    /// Bandwidth queueing: on a lossless, jitter-free link, delivery
    /// times of back-to-back messages are strictly increasing, spaced at
    /// least by each message's transmit time.
    #[test]
    fn bandwidth_queue_orders_deliveries(
        sizes in prop::collection::vec(1usize..10_000, 2..12),
        bw in 1_000u64..1_000_000,
    ) {
        let spec = LinkSpec {
            latency: SimDuration::from_millis(5),
            jitter: SimDuration::ZERO,
            bytes_per_sec: Some(bw),
            loss: 0.0,
        };
        let mut net = Network::new(spec);
        let mut rng = DetRng::seed_from(1);
        let mut last = SimTime::ZERO;
        for (i, &bytes) in sizes.iter().enumerate() {
            let verdict = net.submit(SimTime::ZERO, NodeId(0), NodeId(1), bytes, &mut rng);
            let Verdict::DeliverAt(at) = verdict else {
                prop_assert!(false, "lossless link dropped");
                unreachable!()
            };
            if i > 0 {
                prop_assert!(at > last, "deliveries in submit order");
                prop_assert!(
                    at.saturating_since(last) >= spec.transmit_time(bytes),
                    "spacing at least the transmit time"
                );
            }
            last = at;
        }
    }

    /// Partial connectivity never *improves* a link: latency and loss at
    /// Partial dominate the base link's.
    #[test]
    fn partial_connectivity_only_degrades(
        base_lat_ms in 0u64..500,
        base_loss in 0.0f64..0.5,
    ) {
        let base = LinkSpec {
            latency: SimDuration::from_millis(base_lat_ms),
            jitter: SimDuration::ZERO,
            bytes_per_sec: None,
            loss: base_loss,
        };
        let mut net = Network::new(base);
        net.set_default_link(base);
        net.set_connectivity(NodeId(0), Connectivity::Partial);
        let eff = net.link(NodeId(0), NodeId(1));
        prop_assert!(eff.latency >= base.latency);
        prop_assert!(eff.loss >= base.loss);
    }
}
