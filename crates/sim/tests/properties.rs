//! Property-based tests for the simulation substrate.

use odp_sim::prelude::*;
use proptest::prelude::*;

proptest! {
    /// Nearest-rank percentile must always return an actual sample, and
    /// quantiles must be monotone in q.
    #[test]
    fn histogram_percentiles_are_samples_and_monotone(
        mut values in prop::collection::vec(0u64..1_000_000, 1..200),
        q1 in 0.0f64..=1.0,
        q2 in 0.0f64..=1.0,
    ) {
        let mut h: Histogram = values.iter().map(|&v| SimDuration::from_micros(v)).collect();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let p_lo = h.percentile(lo);
        let p_hi = h.percentile(hi);
        prop_assert!(p_lo <= p_hi);
        values.sort_unstable();
        prop_assert!(values.contains(&p_lo.as_micros()));
        prop_assert!(values.contains(&p_hi.as_micros()));
        prop_assert_eq!(h.min(), SimDuration::from_micros(values[0]));
        prop_assert_eq!(h.max(), SimDuration::from_micros(*values.last().unwrap()));
    }

    /// The mean must lie between min and max.
    #[test]
    fn histogram_mean_is_bounded(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let mut h: Histogram = values.iter().map(|&v| SimDuration::from_micros(v)).collect();
        let mean = h.mean();
        prop_assert!(h.min() <= mean && mean <= h.max());
    }

    /// Jitter sampling stays within [base - j, base + j], saturating at 0.
    #[test]
    fn jitter_bounds(seed in any::<u64>(), base in 0u64..100_000, j in 0u64..50_000) {
        let mut rng = DetRng::seed_from(seed);
        let base_d = SimDuration::from_micros(base);
        let j_d = SimDuration::from_micros(j);
        for _ in 0..32 {
            let s = rng.jittered(base_d, j_d).as_micros();
            prop_assert!(s <= base + j);
            prop_assert!(s >= base.saturating_sub(j));
        }
    }

    /// Two simulations with the same seed and workload produce identical
    /// traces regardless of workload size.
    #[test]
    fn simulation_is_deterministic(seed in any::<u64>(), n_msgs in 1usize..20) {
        fn run(seed: u64, n: usize) -> Vec<TraceEvent> {
            struct Echo;
            impl Actor<u64> for Echo {
                fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
                    ctx.trace("echo", msg.to_string());
                    if msg > 0 {
                        ctx.send(from, msg - 1);
                    }
                }
            }
            let mut net = Network::new(LinkSpec::wan(SimDuration::from_millis(20)));
            net.set_default_link(LinkSpec::wan(SimDuration::from_millis(20)));
            let mut sim = SimBuilder::new(seed).network(net).build();
            sim.add_actor(NodeId(0), Echo);
            sim.add_actor(NodeId(1), Echo);
            for i in 0..n {
                sim.inject(SimTime::from_millis(i as u64), NodeId(1), NodeId(0), 3);
            }
            sim.run(Until::Idle);
            sim.trace().events().to_vec()
        }
        prop_assert_eq!(run(seed, n_msgs), run(seed, n_msgs));
    }

    /// transmit_time is monotone in message size and inversely related to
    /// bandwidth.
    #[test]
    fn transmit_time_monotone(bytes_a in 0usize..1_000_000, bytes_b in 0usize..1_000_000,
                              bw in 1u64..1_000_000_000) {
        let spec = LinkSpec { bytes_per_sec: Some(bw), ..LinkSpec::ideal() };
        let (small, large) = if bytes_a <= bytes_b { (bytes_a, bytes_b) } else { (bytes_b, bytes_a) };
        prop_assert!(spec.transmit_time(small) <= spec.transmit_time(large));
    }
}
