//! Differential suite: the calendar queue and the pre-refactor
//! `BTreeMap` queue drain every workload in the identical `(time, seq)`
//! order, with identical `ExecutedEvent` streams, RNG draws, traces and
//! metrics — the determinism contract DPOR exploration and trace replay
//! rely on.

use odp_sim::prelude::*;
use proptest::prelude::*;

/// A protocol actor that exercises every effect kind: fan-out sends,
/// re-armed timers, cancellations, RNG draws, sized sends and traces.
struct Churner {
    peers: Vec<NodeId>,
    live_timer: Option<TimerId>,
    handled: u64,
}

impl Churner {
    fn new(peers: Vec<NodeId>) -> Self {
        Churner {
            peers,
            live_timer: None,
            handled: 0,
        }
    }
}

impl Actor<u32> for Churner {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.set_timer(SimDuration::from_millis(3), 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        self.handled += 1;
        match msg % 4 {
            0 => {
                let peer = self.peers[(msg as usize / 4) % self.peers.len()];
                let jitter = ctx
                    .rng()
                    .jittered(SimDuration::from_micros(200), SimDuration::from_micros(150));
                ctx.send_sized(peer, msg / 2, 64 + (msg as usize % 700));
                ctx.set_timer(jitter, u64::from(msg));
            }
            1 => {
                if let Some(t) = self.live_timer.take() {
                    ctx.cancel_timer(t);
                }
                self.live_timer = Some(ctx.set_timer(SimDuration::from_millis(1), 1));
            }
            2 => ctx.send(from, msg.saturating_sub(3)),
            _ => ctx.trace("churn.sink", msg.to_string()),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, u32>, _timer: TimerId, tag: u64) {
        if tag > 0 && ctx.rng().chance(0.5) {
            let peer = self.peers[tag as usize % self.peers.len()];
            ctx.send(peer, (tag as u32).saturating_sub(5));
        }
        ctx.trace("churn.timer", tag.to_string());
    }
}

fn lossy_net() -> Network {
    let mut spec = LinkSpec::lan();
    spec.loss = 0.02;
    let mut net = Network::new(spec);
    net.set_default_link(spec);
    net
}

/// Builds the scenario on the given queue, injects `injections`
/// scripted `(at_us, from, to, msg)` stimuli, and drains it to
/// quiescence collecting every executed event.
fn drain_on(
    kind: QueueKind,
    seed: u64,
    nodes: u32,
    injections: &[(u64, u32, u32, u32)],
) -> (Vec<ExecutedEvent>, Sim<u32>) {
    let ids: Vec<NodeId> = (0..nodes).map(NodeId).collect();
    let mut sim = SimBuilder::new(seed)
        .network(lossy_net())
        .queue(kind)
        .max_events(500_000)
        .build();
    for &me in &ids {
        let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != me).collect();
        sim.add_actor(me, Churner::new(peers));
    }
    for &(at, from, to, msg) in injections {
        sim.inject(
            SimTime::from_micros(at),
            NodeId(from % nodes),
            NodeId(to % nodes),
            msg,
        );
    }
    let mut executed = Vec::new();
    while sim.step() {
        executed.extend(sim.last_executed());
    }
    (executed, sim)
}

fn assert_equivalent(seed: u64, nodes: u32, injections: &[(u64, u32, u32, u32)]) {
    let (cal_exec, cal) = drain_on(QueueKind::Calendar, seed, nodes, injections);
    let (leg_exec, leg) = drain_on(QueueKind::Legacy, seed, nodes, injections);
    assert_eq!(cal_exec.len(), leg_exec.len(), "event counts diverged");
    for (i, (a, b)) in cal_exec.iter().zip(&leg_exec).enumerate() {
        assert_eq!(a, b, "executed event #{i} diverged");
    }
    assert_eq!(cal.now(), leg.now());
    assert_eq!(cal.trace().events(), leg.trace().events());
    for name in [
        "sim.sent",
        "sim.sent_bytes",
        "sim.delivered",
        "sim.dropped.Loss",
        "sim.no_actor",
    ] {
        assert_eq!(
            cal.metrics().counter(name),
            leg.metrics().counter(name),
            "metric {name} diverged"
        );
    }
}

/// The headline satellite check: 10,000 randomly timed injections drain
/// in identical order through both queues — same seeds, same
/// `ExecutedEvent` streams.
#[test]
fn ten_thousand_random_injections_drain_identically() {
    let mut rng = DetRng::seed_from(0xCA1E_DA12);
    let mut injections = Vec::with_capacity(10_000);
    for _ in 0..10_000 {
        let at = rng.range_u64(0, 2_000_000); // anywhere in the first 2s
        let from = rng.index(8) as u32;
        let to = rng.index(8) as u32;
        let msg = rng.range_u64(0, 10_000) as u32;
        injections.push((at, from, to, msg));
    }
    assert_equivalent(0xDE5, 8, &injections);
}

/// Same-instant storms (many events on one tick) exercise the calendar
/// queue's batch staging and mid-batch same-tick appends.
#[test]
fn same_tick_storms_drain_identically() {
    let mut injections = Vec::new();
    for burst in 0..20u64 {
        for k in 0..50u32 {
            injections.push((burst * 1_000, k, (k + 1) % 6, k * 3));
        }
    }
    assert_equivalent(0xBEE, 6, &injections);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary smaller workloads: any injection schedule, any seed,
    /// both queues agree event-for-event.
    #[test]
    fn queues_agree_on_arbitrary_workloads(
        seed in any::<u64>(),
        injections in prop::collection::vec(
            (0u64..500_000, 0u32..5, 0u32..5, 0u32..1_000),
            1..120,
        ),
    ) {
        assert_equivalent(seed, 5, &injections);
    }
}
