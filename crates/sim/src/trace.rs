//! A structured trace of interesting events in a run.
//!
//! Experiments use the trace to measure *notification time* and other
//! cross-actor properties that no single actor can observe locally: an
//! actor records a labelled event, and the harness correlates records
//! afterwards.

use serde::{Deserialize, Serialize};

use crate::net::NodeId;
use crate::time::SimTime;

/// One labelled, timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node recorded it.
    pub node: NodeId,
    /// A stable, machine-matchable label (e.g. `"op.applied"`).
    pub label: String,
    /// Free-form payload (e.g. an operation id) used for correlation.
    pub data: String,
}

/// An append-only event log for one simulation run.
///
/// # Examples
///
/// ```
/// use odp_sim::trace::Trace;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut t = Trace::new();
/// t.record(SimTime::ZERO, NodeId(0), "op.issued", "op-1");
/// t.record(SimTime::from_millis(3), NodeId(1), "op.applied", "op-1");
/// assert_eq!(t.with_label("op.applied").count(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// Disables recording (records become no-ops); useful for large
    /// benchmark runs where only metrics matter.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Appends a record (no-op when disabled).
    pub fn record(
        &mut self,
        time: SimTime,
        node: NodeId,
        label: impl Into<String>,
        data: impl Into<String>,
    ) {
        if self.enabled {
            self.events.push(TraceEvent {
                time,
                node,
                label: label.into(),
                data: data.into(),
            });
        }
    }

    /// All records in time order (records are appended in event order,
    /// which the engine guarantees is non-decreasing in time).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates records with the given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.label == label)
    }

    /// Iterates records with the given label *and* data payload.
    pub fn matching<'a>(
        &'a self,
        label: &'a str,
        data: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events
            .iter()
            .filter(move |e| e.label == label && e.data == data)
    }

    /// The first record with this label, if any.
    pub fn first(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().find(|e| e.label == label)
    }

    /// The last record with this label, if any.
    pub fn last(&self, label: &str) -> Option<&TraceEvent> {
        self.events.iter().rev().find(|e| e.label == label)
    }

    /// For every record labelled `cause` with payload `d`, finds the first
    /// subsequent record labelled `effect` with the same payload and yields
    /// the pair. This is the primitive behind notification-time
    /// measurements: cause = "op issued", effect = "op seen by peer".
    pub fn cause_effect_pairs<'a>(
        &'a self,
        cause: &'a str,
        effect: &'a str,
    ) -> Vec<(&'a TraceEvent, &'a TraceEvent)> {
        let mut pairs = Vec::new();
        for (i, c) in self.events.iter().enumerate() {
            if c.label != cause {
                continue;
            }
            if let Some(e) = self.events[i + 1..]
                .iter()
                .find(|e| e.label == effect && e.data == c.data)
            {
                pairs.push((c, e));
            }
        }
        pairs
    }

    /// Clears all records.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn record_and_query() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "a", "x");
        tr.record(t(1), NodeId(1), "b", "x");
        tr.record(t(2), NodeId(1), "a", "y");
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.with_label("a").count(), 2);
        assert_eq!(tr.matching("a", "y").count(), 1);
        assert_eq!(tr.first("a").unwrap().data, "x");
        assert_eq!(tr.last("a").unwrap().data, "y");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        tr.disable();
        tr.record(t(0), NodeId(0), "a", "x");
        assert!(tr.is_empty());
        tr.enable();
        tr.record(t(1), NodeId(0), "a", "x");
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn cause_effect_pairs_match_payloads_in_order() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "issued", "op1");
        tr.record(t(5), NodeId(1), "seen", "op1");
        tr.record(t(6), NodeId(2), "seen", "op1"); // later duplicate ignored
        tr.record(t(7), NodeId(0), "issued", "op2");
        tr.record(t(9), NodeId(1), "seen", "op2");
        let pairs = tr.cause_effect_pairs("issued", "seen");
        assert_eq!(pairs.len(), 2);
        assert_eq!(
            pairs[0].1.time - pairs[0].0.time,
            SimDuration::from_millis(5)
        );
        assert_eq!(
            pairs[1].1.time - pairs[1].0.time,
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn cause_without_effect_is_skipped() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "issued", "op1");
        assert!(tr.cause_effect_pairs("issued", "seen").is_empty());
    }
}
