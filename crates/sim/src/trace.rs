//! A structured trace of interesting events in a run.
//!
//! Experiments use the trace to measure *notification time* and other
//! cross-actor properties that no single actor can observe locally: an
//! actor records a labelled event, and the harness correlates records
//! afterwards.

use odp_fabric::span::{SpanCarrier, SpanLog};
use serde::{Deserialize, Serialize};

use crate::net::NodeId;
use crate::time::SimTime;

/// One labelled, timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// Which node recorded it.
    pub node: NodeId,
    /// A stable, machine-matchable label (e.g. `"op.applied"`).
    pub label: String,
    /// Free-form payload (e.g. an operation id) used for correlation.
    pub data: String,
}

/// An event log for one simulation run, optionally bounded.
///
/// By default the log is append-only and unbounded. A *capacity* turns
/// it into a sliding window over the most recent records: older records
/// are evicted and counted in [`Trace::dropped`], so long
/// telemetry-instrumented runs cannot grow memory without bound.
/// Eviction is amortised — the backing storage holds at most twice the
/// capacity and compacts in one move, so `record` stays O(1) and
/// [`Trace::events`] stays a contiguous slice.
///
/// # Examples
///
/// ```
/// use odp_sim::trace::Trace;
/// use odp_sim::net::NodeId;
/// use odp_sim::time::SimTime;
///
/// let mut t = Trace::new();
/// t.record(SimTime::ZERO, NodeId(0), "op.issued", "op-1");
/// t.record(SimTime::from_millis(3), NodeId(1), "op.applied", "op-1");
/// assert_eq!(t.with_label("op.applied").count(), 1);
///
/// let mut bounded = Trace::with_capacity(2);
/// for i in 0..5 {
///     bounded.record(SimTime::from_millis(i), NodeId(0), "tick", i.to_string());
/// }
/// assert_eq!(bounded.len(), 2);
/// assert_eq!(bounded.dropped(), 3);
/// assert_eq!(bounded.events()[0].data, "3");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
    enabled: bool,
    capacity: Option<usize>,
    recorded: u64,
    spans: SpanLog,
}

impl Trace {
    /// Creates an enabled, empty, unbounded trace.
    pub fn new() -> Self {
        Trace {
            events: Vec::new(),
            enabled: true,
            capacity: None,
            recorded: 0,
            spans: SpanLog::new(),
        }
    }

    /// Creates an enabled, empty trace retaining only the most recent
    /// `capacity` records.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut t = Trace::new();
        t.capacity = Some(capacity);
        t
    }

    /// Disables recording (records become no-ops); useful for large
    /// benchmark runs where only metrics matter.
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// The retention bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Sets (or removes) the retention bound. Shrinking evicts the
    /// oldest surplus records immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        let len = self.events.len();
        if let Some(cap) = capacity {
            if len > cap {
                self.events.drain(..len - cap);
            }
        }
    }

    /// Number of records evicted by the capacity bound since the last
    /// [`Trace::clear`] (zero while unbounded).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.window().len() as u64
    }

    /// The retained window: the most recent `capacity` records (all of
    /// them while unbounded). Compaction is amortised, so the backing
    /// vector may briefly hold up to twice the capacity; every query
    /// goes through this view.
    fn window(&self) -> &[TraceEvent] {
        let len = self.events.len();
        let keep = len.min(self.capacity.unwrap_or(len));
        &self.events[len - keep..]
    }

    /// Appends a record (no-op when disabled). When the trace is at
    /// capacity the oldest retained record is evicted.
    pub fn record(
        &mut self,
        time: SimTime,
        node: NodeId,
        label: impl Into<String>,
        data: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            time,
            node,
            label: label.into(),
            data: data.into(),
        });
        self.recorded += 1;
        if let Some(cap) = self.capacity {
            // Compact once the overflow region equals the window: one
            // drain per `cap` records keeps eviction amortised O(1).
            if self.events.len() >= cap.saturating_mul(2).max(cap + 1) {
                self.events.drain(..self.events.len() - cap);
            }
        }
    }

    /// Retained records in time order (records are appended in event
    /// order, which the engine guarantees is non-decreasing in time).
    /// With a capacity set this is the most recent window only.
    pub fn events(&self) -> &[TraceEvent] {
        self.window()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.window().len()
    }

    /// True if the trace retains no records.
    pub fn is_empty(&self) -> bool {
        self.window().is_empty()
    }

    /// Iterates retained records with the given label.
    pub fn with_label<'a>(&'a self, label: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.window().iter().filter(move |e| e.label == label)
    }

    /// Iterates retained records with the given label *and* data payload.
    pub fn matching<'a>(
        &'a self,
        label: &'a str,
        data: &'a str,
    ) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.window()
            .iter()
            .filter(move |e| e.label == label && e.data == data)
    }

    /// The first retained record with this label, if any.
    pub fn first(&self, label: &str) -> Option<&TraceEvent> {
        self.window().iter().find(|e| e.label == label)
    }

    /// The last retained record with this label, if any.
    pub fn last(&self, label: &str) -> Option<&TraceEvent> {
        self.window().iter().rev().find(|e| e.label == label)
    }

    /// For every record labelled `cause` with payload `d`, finds the first
    /// subsequent record labelled `effect` with the same payload and yields
    /// the pair. This is the primitive behind notification-time
    /// measurements: cause = "op issued", effect = "op seen by peer".
    pub fn cause_effect_pairs<'a>(
        &'a self,
        cause: &'a str,
        effect: &'a str,
    ) -> Vec<(&'a TraceEvent, &'a TraceEvent)> {
        let window = self.window();
        let mut pairs = Vec::new();
        for (i, c) in window.iter().enumerate() {
            if c.label != cause {
                continue;
            }
            if let Some(e) = window[i + 1..]
                .iter()
                .find(|e| e.label == effect && e.data == c.data)
            {
                pairs.push((c, e));
            }
        }
        pairs
    }

    /// Records a telemetry span opening (no-op when disabled). Span
    /// records live in the binary [`SpanLog`] beside the string events:
    /// one fixed-size push with the kind interned, instead of two
    /// hex-formatted `String` allocations — the difference between
    /// ~9.8% and <2% instrumentation overhead on the E13 workload.
    pub fn span_open(&mut self, time: SimTime, node: NodeId, span: SpanCarrier, kind: &str) {
        if !self.enabled {
            return;
        }
        self.spans.open(time.as_micros(), node.0, span, kind);
    }

    /// Records a telemetry span closing (no-op when disabled).
    pub fn span_close(&mut self, time: SimTime, node: NodeId, span: SpanCarrier) {
        if !self.enabled {
            return;
        }
        self.spans
            .close(time.as_micros(), node.0, span.trace_id, span.span_id);
    }

    /// The binary span log (unbounded; span records are fixed-size and
    /// a run's span count is bounded by its instrumented message count,
    /// unlike free-form string records).
    pub fn spans(&self) -> &SpanLog {
        &self.spans
    }

    /// Mutable span log, for harnesses replaying buffered span events
    /// (e.g. session telemetry) into the run's trace.
    pub fn spans_mut(&mut self) -> &mut SpanLog {
        &mut self.spans
    }

    /// Clears all records and the dropped-events counter; the capacity
    /// bound (and enablement) are kept.
    pub fn clear(&mut self) {
        self.events.clear();
        self.recorded = 0;
        self.spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn record_and_query() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "a", "x");
        tr.record(t(1), NodeId(1), "b", "x");
        tr.record(t(2), NodeId(1), "a", "y");
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.with_label("a").count(), 2);
        assert_eq!(tr.matching("a", "y").count(), 1);
        assert_eq!(tr.first("a").unwrap().data, "x");
        assert_eq!(tr.last("a").unwrap().data, "y");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut tr = Trace::new();
        tr.disable();
        tr.record(t(0), NodeId(0), "a", "x");
        assert!(tr.is_empty());
        tr.enable();
        tr.record(t(1), NodeId(0), "a", "x");
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn cause_effect_pairs_match_payloads_in_order() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "issued", "op1");
        tr.record(t(5), NodeId(1), "seen", "op1");
        tr.record(t(6), NodeId(2), "seen", "op1"); // later duplicate ignored
        tr.record(t(7), NodeId(0), "issued", "op2");
        tr.record(t(9), NodeId(1), "seen", "op2");
        let pairs = tr.cause_effect_pairs("issued", "seen");
        assert_eq!(pairs.len(), 2);
        assert_eq!(
            pairs[0].1.time - pairs[0].0.time,
            SimDuration::from_millis(5)
        );
        assert_eq!(
            pairs[1].1.time - pairs[1].0.time,
            SimDuration::from_millis(2)
        );
    }

    #[test]
    fn cause_without_effect_is_skipped() {
        let mut tr = Trace::new();
        tr.record(t(0), NodeId(0), "issued", "op1");
        assert!(tr.cause_effect_pairs("issued", "seen").is_empty());
    }

    #[test]
    fn unbounded_trace_drops_nothing() {
        let mut tr = Trace::new();
        for i in 0..100 {
            tr.record(t(i), NodeId(0), "e", i.to_string());
        }
        assert_eq!(tr.len(), 100);
        assert_eq!(tr.dropped(), 0);
        assert_eq!(tr.capacity(), None);
    }

    #[test]
    fn bounded_trace_keeps_the_most_recent_window() {
        let mut tr = Trace::with_capacity(3);
        for i in 0..10 {
            tr.record(t(i), NodeId(0), "e", i.to_string());
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 7);
        let data: Vec<_> = tr.events().iter().map(|e| e.data.as_str()).collect();
        assert_eq!(data, ["7", "8", "9"]);
        // Queries see only the window.
        assert!(tr.matching("e", "0").next().is_none());
        assert_eq!(tr.first("e").unwrap().data, "7");
        assert_eq!(tr.last("e").unwrap().data, "9");
    }

    #[test]
    fn bounded_backing_storage_stays_under_twice_capacity() {
        let mut tr = Trace::with_capacity(4);
        for i in 0..1000 {
            tr.record(t(i), NodeId(0), "e", "x");
            assert!(tr.events.len() <= 8, "backing grew to {}", tr.events.len());
            assert_eq!(tr.len(), (i as usize + 1).min(4));
        }
        assert_eq!(tr.dropped(), 996);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut tr = Trace::new();
        for i in 0..6 {
            tr.record(t(i), NodeId(0), "e", i.to_string());
        }
        tr.set_capacity(Some(2));
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.dropped(), 4);
        assert_eq!(tr.events()[0].data, "4");
        tr.set_capacity(None);
        tr.record(t(9), NodeId(0), "e", "9");
        assert_eq!(tr.len(), 3, "unbounded again, nothing else evicted");
    }

    #[test]
    fn clear_keeps_capacity_and_resets_dropped() {
        let mut tr = Trace::with_capacity(2);
        for i in 0..5 {
            tr.record(t(i), NodeId(0), "e", "x");
        }
        assert!(tr.dropped() > 0);
        tr.clear();
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 0);
        assert_eq!(tr.capacity(), Some(2));
        for i in 0..5 {
            tr.record(t(i), NodeId(0), "e", i.to_string());
        }
        assert_eq!(tr.len(), 2, "bound survives clear()");
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut tr = Trace::with_capacity(0);
        tr.record(t(0), NodeId(0), "e", "x");
        assert!(tr.is_empty());
        assert_eq!(tr.dropped(), 1);
    }
}
