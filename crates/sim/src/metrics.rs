//! Measurement primitives: counters and latency histograms.
//!
//! Experiments read their results out of a [`MetricsRegistry`] after a run.
//! Histograms keep raw samples (simulations are small enough) so percentile
//! queries are exact rather than bucketed approximations.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// An exact-sample histogram of durations.
///
/// # Examples
///
/// ```
/// use odp_sim::metrics::Histogram;
/// use odp_sim::time::SimDuration;
///
/// let mut h = Histogram::new();
/// for ms in [1u64, 2, 3, 4, 5] {
///     h.record(SimDuration::from_millis(ms));
/// }
/// assert_eq!(h.percentile(0.5), SimDuration::from_millis(3));
/// assert_eq!(h.max(), SimDuration::from_millis(5));
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Histogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one duration sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns the exact `q`-quantile (`q` in `[0,1]`) using the
    /// nearest-rank method. Returns zero on an empty histogram.
    pub fn percentile(&mut self, q: f64) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        SimDuration::from_micros(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Arithmetic mean of the samples (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = self.samples.iter().map(|&s| s as u128).sum();
        SimDuration::from_micros((total / self.samples.len() as u128) as u64)
    }

    /// Smallest sample (zero if empty).
    pub fn min(&mut self) -> SimDuration {
        self.ensure_sorted();
        SimDuration::from_micros(self.samples.first().copied().unwrap_or(0))
    }

    /// Largest sample (zero if empty).
    pub fn max(&mut self) -> SimDuration {
        self.ensure_sorted();
        SimDuration::from_micros(self.samples.last().copied().unwrap_or(0))
    }

    /// Sample standard deviation in microseconds (zero if fewer than two
    /// samples). Used to report jitter.
    pub fn stddev_micros(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.samples.iter().map(|&s| s as f64).sum::<f64>() / n as f64;
        let var = self
            .samples
            .iter()
            .map(|&s| {
                let d = s as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / (n as f64 - 1.0);
        var.sqrt()
    }

    /// Produces a compact summary of the distribution.
    pub fn summary(&mut self) -> Summary {
        Summary {
            count: self.len() as u64,
            mean: self.mean(),
            min: self.min(),
            p50: self.percentile(0.50),
            p95: self.percentile(0.95),
            p99: self.percentile(0.99),
            max: self.max(),
            stddev_micros: self.stddev_micros(),
        }
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl Extend<SimDuration> for Histogram {
    fn extend<T: IntoIterator<Item = SimDuration>>(&mut self, iter: T) {
        for d in iter {
            self.record(d);
        }
    }
}

impl FromIterator<SimDuration> for Histogram {
    fn from_iter<T: IntoIterator<Item = SimDuration>>(iter: T) -> Self {
        let mut h = Histogram::new();
        h.extend(iter);
        h
    }
}

/// A compact statistical summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: SimDuration,
    /// Minimum.
    pub min: SimDuration,
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// Maximum.
    pub max: SimDuration,
    /// Sample standard deviation, in microseconds.
    pub stddev_micros: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} p50={} p95={} p99={} max={} sd={:.1}us",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max, self.stddev_micros
        )
    }
}

/// A named collection of counters and histograms for one simulation run.
///
/// # Examples
///
/// ```
/// use odp_sim::metrics::MetricsRegistry;
/// use odp_sim::time::SimDuration;
///
/// let mut m = MetricsRegistry::new();
/// m.incr("messages.sent");
/// m.add("bytes.sent", 512);
/// m.observe("latency", SimDuration::from_millis(3));
/// assert_eq!(m.counter("messages.sent"), 1);
/// assert_eq!(m.histogram("latency").unwrap().len(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Increments the named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `delta` to the named counter, creating it at zero if absent.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Reads the named counter (zero if it was never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records one duration sample into the named histogram.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(d);
    }

    /// Returns the named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Returns the named histogram mutably, creating it if absent.
    pub fn histogram_mut(&mut self, name: &str) -> &mut Histogram {
        self.histograms.entry(name.to_owned()).or_default()
    }

    /// Iterates over all counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates over all histogram names in name order.
    pub fn histogram_names(&self) -> impl Iterator<Item = &str> {
        self.histograms.keys().map(|k| k.as_str())
    }

    /// Merges `other` into `self` (counters add, histograms concatenate).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(values_us: &[u64]) -> Histogram {
        values_us
            .iter()
            .map(|&v| SimDuration::from_micros(v))
            .collect()
    }

    #[test]
    fn empty_histogram_is_safe() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.99), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
        assert_eq!(h.stddev_micros(), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let mut h = hist(&[10, 20, 30, 40, 50, 60, 70, 80, 90, 100]);
        assert_eq!(h.percentile(0.0), SimDuration::from_micros(10));
        assert_eq!(h.percentile(0.5), SimDuration::from_micros(50));
        assert_eq!(h.percentile(0.9), SimDuration::from_micros(90));
        assert_eq!(h.percentile(1.0), SimDuration::from_micros(100));
    }

    #[test]
    fn percentile_clamps_out_of_range_q() {
        let mut h = hist(&[5, 10]);
        assert_eq!(h.percentile(-1.0), SimDuration::from_micros(5));
        assert_eq!(h.percentile(2.0), SimDuration::from_micros(10));
    }

    #[test]
    fn mean_and_stddev() {
        let h = hist(&[10, 20, 30]);
        assert_eq!(h.mean(), SimDuration::from_micros(20));
        assert!((h.stddev_micros() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn summary_reports_all_fields() {
        let mut h = hist(&[1, 2, 3, 4]);
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min, SimDuration::from_micros(1));
        assert_eq!(s.max, SimDuration::from_micros(4));
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn merge_concatenates() {
        let mut a = hist(&[1, 2]);
        let b = hist(&[3]);
        a.merge(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.max(), SimDuration::from_micros(3));
    }

    #[test]
    fn registry_counters_and_histograms() {
        let mut m = MetricsRegistry::new();
        m.incr("x");
        m.add("x", 4);
        assert_eq!(m.counter("x"), 5);
        assert_eq!(m.counter("missing"), 0);
        m.observe("lat", SimDuration::from_micros(9));
        assert_eq!(m.histogram("lat").unwrap().len(), 1);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn registry_merge_adds_counters() {
        let mut a = MetricsRegistry::new();
        a.add("c", 2);
        a.observe("h", SimDuration::from_micros(1));
        let mut b = MetricsRegistry::new();
        b.add("c", 3);
        b.observe("h", SimDuration::from_micros(2));
        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.histogram("h").unwrap().len(), 2);
    }

    #[test]
    fn registry_iterates_in_name_order() {
        let mut m = MetricsRegistry::new();
        m.incr("b");
        m.incr("a");
        let names: Vec<_> = m.counters().map(|(k, _)| k.to_owned()).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
