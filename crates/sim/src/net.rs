//! The simulated network: links with latency, jitter, bandwidth and loss,
//! plus partitions and per-node connectivity levels.
//!
//! The network computes, for each message, either a delivery delay or a
//! drop decision. Time-varying behaviour (degradation, partitions, mobile
//! hosts moving between coverage levels) is expressed by mutating the
//! network mid-run via scheduled control events (see
//! [`Sim::schedule_net_change`](crate::sim::Sim::schedule_net_change)).

use std::collections::{HashMap, HashSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};

/// Identifies a simulated node (one per actor in the default topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// The characteristics of a directed link.
///
/// # Examples
///
/// ```
/// use odp_sim::net::LinkSpec;
/// use odp_sim::time::SimDuration;
///
/// let lan = LinkSpec::lan();
/// assert!(lan.latency < SimDuration::from_millis(5));
/// let wan = LinkSpec::wan(SimDuration::from_millis(80));
/// assert_eq!(wan.latency, SimDuration::from_millis(80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Base one-way propagation delay.
    pub latency: SimDuration,
    /// Maximum symmetric uniform jitter applied to the latency.
    pub jitter: SimDuration,
    /// Bandwidth in bytes per second; `None` models an uncongested link.
    pub bytes_per_sec: Option<u64>,
    /// Independent per-message loss probability in `[0, 1]`.
    pub loss: f64,
}

impl LinkSpec {
    /// A local-area link: 1 ms latency, 200 us jitter, 100 Mbit/s, lossless.
    pub fn lan() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(1),
            jitter: SimDuration::from_micros(200),
            bytes_per_sec: Some(12_500_000),
            loss: 0.0,
        }
    }

    /// A wide-area link with the given latency: 10% jitter, 10 Mbit/s,
    /// 0.1% loss.
    pub fn wan(latency: SimDuration) -> Self {
        LinkSpec {
            latency,
            jitter: latency.mul_f64(0.10),
            bytes_per_sec: Some(1_250_000),
            loss: 0.001,
        }
    }

    /// A 1990s mobile radio link: 150 ms latency, heavy jitter, 9600 baud
    /// class bandwidth, 2% loss. Models the paper's "partially connected"
    /// level.
    pub fn radio() -> Self {
        LinkSpec {
            latency: SimDuration::from_millis(150),
            jitter: SimDuration::from_millis(60),
            bytes_per_sec: Some(1_200),
            loss: 0.02,
        }
    }

    /// An ideal link: zero latency/jitter/loss, infinite bandwidth. Useful
    /// in unit tests that need exact timings.
    pub fn ideal() -> Self {
        LinkSpec {
            latency: SimDuration::ZERO,
            jitter: SimDuration::ZERO,
            bytes_per_sec: None,
            loss: 0.0,
        }
    }

    /// Returns the serialisation (transmission) time of `bytes` on this
    /// link, zero when bandwidth is unlimited.
    pub fn transmit_time(&self, bytes: usize) -> SimDuration {
        match self.bytes_per_sec {
            None => SimDuration::ZERO,
            Some(bps) => {
                let micros = (bytes as u128 * 1_000_000u128) / bps.max(1) as u128;
                SimDuration::from_micros(micros.min(u64::MAX as u128) as u64)
            }
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

/// The QoS degradation one traversed link charges end-to-end: added
/// latency, added jitter and compounded loss.
///
/// Overlay layers (e.g. trader federation links) annotate their edges
/// with a `LinkQos` drawn from the topology ([`LinkQos::from_spec`]) and
/// accumulate it along a path with [`LinkQos::then`], so that a remote
/// offer's QoS can be judged *as seen from here* rather than as
/// advertised at its home.
///
/// # Examples
///
/// ```
/// use odp_sim::net::{LinkQos, LinkSpec};
/// use odp_sim::time::SimDuration;
///
/// let hop = LinkQos::from_spec(&LinkSpec::wan(SimDuration::from_millis(40)));
/// let path = LinkQos::NONE.then(hop).then(hop);
/// assert_eq!(path.latency, SimDuration::from_millis(80));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkQos {
    /// Added one-way propagation delay.
    pub latency: SimDuration,
    /// Added delay variance.
    pub jitter: SimDuration,
    /// Independent loss probability contributed by this link, in `[0, 1]`.
    pub loss: f64,
}

impl LinkQos {
    /// The identity penalty: a free traversal (local resolution, or an
    /// un-annotated overlay edge).
    pub const NONE: LinkQos = LinkQos {
        latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.0,
    };

    /// A penalty with the given components; loss is clamped to `[0, 1]`.
    pub fn new(latency: SimDuration, jitter: SimDuration, loss: f64) -> Self {
        LinkQos {
            latency,
            jitter,
            loss: loss.clamp(0.0, 1.0),
        }
    }

    /// The penalty a message pays crossing a link of this spec
    /// (bandwidth is a capacity constraint, not a per-traversal charge,
    /// so it does not appear here).
    pub fn from_spec(spec: &LinkSpec) -> Self {
        LinkQos::new(spec.latency, spec.jitter, spec.loss)
    }

    /// Sequential composition: latency and jitter add; independent loss
    /// stages compound as `1 - (1-a)(1-b)`. A zero-loss side is the
    /// exact identity on the other (no floating-point drift), so
    /// composing with [`LinkQos::NONE`] changes nothing.
    pub fn then(self, next: LinkQos) -> LinkQos {
        let loss = if self.loss == 0.0 {
            next.loss
        } else if next.loss == 0.0 {
            self.loss
        } else {
            (1.0 - (1.0 - self.loss) * (1.0 - next.loss)).clamp(0.0, 1.0)
        };
        LinkQos {
            latency: self.latency + next.latency,
            jitter: self.jitter + next.jitter,
            loss,
        }
    }

    /// True for the identity penalty.
    pub fn is_none(&self) -> bool {
        *self == LinkQos::NONE
    }
}

impl Default for LinkQos {
    fn default() -> Self {
        LinkQos::NONE
    }
}

impl fmt::Display for LinkQos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "+{} lat, +{} jit, {:.2}% loss",
            self.latency,
            self.jitter,
            self.loss * 100.0
        )
    }
}

/// The paper's three connectivity levels for mobile hosts (§4.2.2:
/// "connection may vary from being disconnected to being partially
/// connected ... to being fully connected").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Connectivity {
    /// No traffic in or out of the node.
    Disconnected,
    /// Traffic flows over a degraded (radio-class) link regardless of the
    /// underlying topology.
    Partial,
    /// Normal topology-defined links.
    #[default]
    Full,
}

/// Outcome of submitting a message to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Message will arrive at the given time.
    DeliverAt(SimTime),
    /// Message was dropped (loss, partition, or disconnection).
    Dropped(DropReason),
}

/// Why a message was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DropReason {
    /// Random loss on the link.
    Loss,
    /// Source and destination are in different partitions.
    Partitioned,
    /// Source or destination is at [`Connectivity::Disconnected`].
    Disconnected,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DropReason::Loss => write!(f, "random loss"),
            DropReason::Partitioned => write!(f, "network partition"),
            DropReason::Disconnected => write!(f, "host disconnected"),
        }
    }
}

/// The mutable network state for a simulation.
///
/// Delivery delay for a message of `b` bytes on link `l` is
/// `queueing + transmit(b) + latency + jitter`, where queueing serialises
/// messages through the link's bandwidth (FIFO per directed pair).
#[derive(Debug, Clone)]
pub struct Network {
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    /// Earliest time each directed link is free to begin transmitting.
    link_free: HashMap<(NodeId, NodeId), SimTime>,
    partitions: Vec<HashSet<NodeId>>,
    connectivity: HashMap<NodeId, Connectivity>,
    partial_link: LinkSpec,
}

impl Default for Network {
    fn default() -> Self {
        Network::new(LinkSpec::default())
    }
}

impl Network {
    /// Creates a network in which every pair of nodes is joined by
    /// `default_link`.
    pub fn new(default_link: LinkSpec) -> Self {
        Network {
            default_link,
            overrides: HashMap::new(),
            link_free: HashMap::new(),
            partitions: Vec::new(),
            connectivity: HashMap::new(),
            partial_link: LinkSpec::radio(),
        }
    }

    /// Replaces the default link used for pairs without an override.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.default_link = spec;
    }

    /// Sets the link used in **both** directions between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, spec: LinkSpec) {
        self.overrides.insert((a, b), spec);
        self.overrides.insert((b, a), spec);
    }

    /// Sets a directed link from `from` to `to` only.
    pub fn set_link_directed(&mut self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.overrides.insert((from, to), spec);
    }

    /// Returns the spec currently in force from `from` to `to`, accounting
    /// for partial connectivity of either endpoint.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkSpec {
        let base = self
            .overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link);
        let partial = self.connectivity_of(from) == Connectivity::Partial
            || self.connectivity_of(to) == Connectivity::Partial;
        if partial {
            // A degraded endpoint dominates: take the worse of each field.
            LinkSpec {
                latency: base.latency.max(self.partial_link.latency),
                jitter: base.jitter.max(self.partial_link.jitter),
                bytes_per_sec: match (base.bytes_per_sec, self.partial_link.bytes_per_sec) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                },
                loss: base.loss.max(self.partial_link.loss),
            }
        } else {
            base
        }
    }

    /// The per-traversal QoS penalty currently charged from `from` to
    /// `to` (the [`LinkQos`] of the link in force, including partial
    /// connectivity degradation).
    pub fn link_qos(&self, from: NodeId, to: NodeId) -> LinkQos {
        LinkQos::from_spec(&self.link(from, to))
    }

    /// Sets the link characteristics used while a node is at
    /// [`Connectivity::Partial`].
    pub fn set_partial_link(&mut self, spec: LinkSpec) {
        self.partial_link = spec;
    }

    /// Splits the network into the given groups; traffic crosses group
    /// boundaries only if neither endpoint appears in any group. Replaces
    /// any previous partition.
    pub fn partition(&mut self, groups: Vec<HashSet<NodeId>>) {
        self.partitions = groups;
    }

    /// Removes all partitions.
    pub fn heal(&mut self) {
        self.partitions.clear();
    }

    /// True if a partition separates `a` from `b`.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        let ga = self.partitions.iter().position(|g| g.contains(&a));
        let gb = self.partitions.iter().position(|g| g.contains(&b));
        match (ga, gb) {
            (Some(x), Some(y)) => x != y,
            (None, None) => false,
            // A node listed in a partition group cannot talk to unlisted
            // nodes: the partition is total over listed membership.
            _ => true,
        }
    }

    /// Sets a node's connectivity level (mobile hosts).
    pub fn set_connectivity(&mut self, node: NodeId, level: Connectivity) {
        self.connectivity.insert(node, level);
    }

    /// Reads a node's connectivity level (defaults to `Full`).
    pub fn connectivity_of(&self, node: NodeId) -> Connectivity {
        self.connectivity.get(&node).copied().unwrap_or_default()
    }

    /// Decides the fate of a message submitted at `now`.
    ///
    /// Hot-path note: every skip below is behaviour-preserving. Empty
    /// connectivity/partition/override tables answer every query with
    /// their default, and the `link_free` bookkeeping is skipped only
    /// when `transmit == 0` — in that regime `*free = max(free, now)`,
    /// so by induction `free <= now` and the recorded value can never
    /// push a later `start` past `now`, exactly as if the entry were
    /// absent. The RNG draw order (one `chance`, then at most one
    /// `jittered`) is identical on every path, so runs are bit-equal to
    /// [`Network::submit_unoptimized`].
    pub fn submit(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut DetRng,
    ) -> Verdict {
        if !self.connectivity.is_empty()
            && (self.connectivity_of(from) == Connectivity::Disconnected
                || self.connectivity_of(to) == Connectivity::Disconnected)
        {
            return Verdict::Dropped(DropReason::Disconnected);
        }
        if !self.partitions.is_empty() && self.is_partitioned(from, to) {
            return Verdict::Dropped(DropReason::Partitioned);
        }
        let spec = if self.overrides.is_empty() && self.connectivity.is_empty() {
            self.default_link
        } else {
            self.link(from, to)
        };
        if rng.chance(spec.loss) {
            return Verdict::Dropped(DropReason::Loss);
        }
        // Local delivery bypasses the network entirely.
        if from == to {
            return Verdict::DeliverAt(now);
        }
        let transmit = spec.transmit_time(bytes);
        let delay = rng.jittered(spec.latency, spec.jitter);
        if transmit == SimDuration::ZERO && self.link_free.is_empty() {
            return Verdict::DeliverAt(now + delay);
        }
        let free = self.link_free.entry((from, to)).or_insert(SimTime::ZERO);
        let start = (*free).max(now);
        *free = start + transmit;
        Verdict::DeliverAt(start + transmit + delay)
    }

    /// The pre-refactor [`Network::submit`], kept verbatim as the
    /// baseline the legacy engine path runs (and differential tests
    /// compare against). Produces bit-identical verdicts and RNG draws
    /// to the optimized path.
    pub(crate) fn submit_unoptimized(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        rng: &mut DetRng,
    ) -> Verdict {
        if self.connectivity_of(from) == Connectivity::Disconnected
            || self.connectivity_of(to) == Connectivity::Disconnected
        {
            return Verdict::Dropped(DropReason::Disconnected);
        }
        if self.is_partitioned(from, to) {
            return Verdict::Dropped(DropReason::Partitioned);
        }
        let spec = self.link(from, to);
        if rng.chance(spec.loss) {
            return Verdict::Dropped(DropReason::Loss);
        }
        // Local delivery bypasses the network entirely.
        if from == to {
            return Verdict::DeliverAt(now);
        }
        let free = self.link_free.entry((from, to)).or_insert(SimTime::ZERO);
        let start = (*free).max(now);
        let transmit = spec.transmit_time(bytes);
        *free = start + transmit;
        let delay = rng.jittered(spec.latency, spec.jitter);
        Verdict::DeliverAt(start + transmit + delay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::seed_from(1)
    }

    #[test]
    fn ideal_link_delivers_instantly() {
        let mut net = Network::new(LinkSpec::ideal());
        let v = net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 100, &mut rng());
        assert_eq!(v, Verdict::DeliverAt(SimTime::ZERO));
    }

    #[test]
    fn latency_applies() {
        let mut spec = LinkSpec::ideal();
        spec.latency = SimDuration::from_millis(10);
        let mut net = Network::new(spec);
        let v = net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 0, &mut rng());
        assert_eq!(v, Verdict::DeliverAt(SimTime::from_millis(10)));
    }

    #[test]
    fn bandwidth_serialises_messages() {
        let mut spec = LinkSpec::ideal();
        spec.bytes_per_sec = Some(1_000_000); // 1 MB/s -> 1000 bytes per ms
        let mut net = Network::new(spec);
        let mut r = rng();
        let v1 = net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000, &mut r);
        let v2 = net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 1_000, &mut r);
        assert_eq!(v1, Verdict::DeliverAt(SimTime::from_millis(1)));
        assert_eq!(v2, Verdict::DeliverAt(SimTime::from_millis(2)));
        // Opposite direction has its own queue.
        let v3 = net.submit(SimTime::ZERO, NodeId(1), NodeId(0), 1_000, &mut r);
        assert_eq!(v3, Verdict::DeliverAt(SimTime::from_millis(1)));
    }

    #[test]
    fn lossy_link_eventually_drops() {
        let mut spec = LinkSpec::ideal();
        spec.loss = 0.5;
        let mut net = Network::new(spec);
        let mut r = rng();
        let drops = (0..200)
            .filter(|_| {
                matches!(
                    net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 1, &mut r),
                    Verdict::Dropped(DropReason::Loss)
                )
            })
            .count();
        assert!(drops > 50 && drops < 150, "drops={drops}");
    }

    #[test]
    fn partition_blocks_cross_traffic_and_heals() {
        let mut net = Network::new(LinkSpec::ideal());
        let a: HashSet<_> = [NodeId(0), NodeId(1)].into();
        let b: HashSet<_> = [NodeId(2)].into();
        net.partition(vec![a, b]);
        assert!(net.is_partitioned(NodeId(0), NodeId(2)));
        assert!(!net.is_partitioned(NodeId(0), NodeId(1)));
        // Listed vs unlisted node: treated as separated.
        assert!(net.is_partitioned(NodeId(0), NodeId(9)));
        let v = net.submit(SimTime::ZERO, NodeId(0), NodeId(2), 1, &mut rng());
        assert_eq!(v, Verdict::Dropped(DropReason::Partitioned));
        net.heal();
        assert!(!net.is_partitioned(NodeId(0), NodeId(2)));
    }

    #[test]
    fn disconnected_node_sends_and_receives_nothing() {
        let mut net = Network::new(LinkSpec::ideal());
        net.set_connectivity(NodeId(0), Connectivity::Disconnected);
        let mut r = rng();
        assert_eq!(
            net.submit(SimTime::ZERO, NodeId(0), NodeId(1), 1, &mut r),
            Verdict::Dropped(DropReason::Disconnected)
        );
        assert_eq!(
            net.submit(SimTime::ZERO, NodeId(1), NodeId(0), 1, &mut r),
            Verdict::Dropped(DropReason::Disconnected)
        );
    }

    #[test]
    fn partial_connectivity_degrades_the_link() {
        let mut net = Network::new(LinkSpec::ideal());
        net.set_connectivity(NodeId(0), Connectivity::Partial);
        let spec = net.link(NodeId(0), NodeId(1));
        assert_eq!(spec.latency, LinkSpec::radio().latency);
        assert_eq!(spec.bytes_per_sec, LinkSpec::radio().bytes_per_sec);
        net.set_connectivity(NodeId(0), Connectivity::Full);
        assert_eq!(net.link(NodeId(0), NodeId(1)), LinkSpec::ideal());
    }

    #[test]
    fn per_pair_override_wins_over_default() {
        let mut net = Network::new(LinkSpec::ideal());
        let wan = LinkSpec::wan(SimDuration::from_millis(50));
        net.set_link(NodeId(0), NodeId(1), wan);
        assert_eq!(net.link(NodeId(0), NodeId(1)).latency, wan.latency);
        assert_eq!(net.link(NodeId(1), NodeId(0)).latency, wan.latency);
        assert_eq!(net.link(NodeId(0), NodeId(2)), LinkSpec::ideal());
    }

    #[test]
    fn self_send_is_immediate() {
        let mut spec = LinkSpec::ideal();
        spec.latency = SimDuration::from_millis(50);
        let mut net = Network::new(spec);
        let v = net.submit(
            SimTime::from_millis(3),
            NodeId(4),
            NodeId(4),
            10,
            &mut rng(),
        );
        assert_eq!(v, Verdict::DeliverAt(SimTime::from_millis(3)));
    }

    #[test]
    fn link_qos_composes_additively_and_compounds_loss() {
        let a = LinkQos::new(
            SimDuration::from_millis(10),
            SimDuration::from_millis(2),
            0.1,
        );
        let b = LinkQos::new(
            SimDuration::from_millis(30),
            SimDuration::from_millis(5),
            0.1,
        );
        let path = a.then(b);
        assert_eq!(path.latency, SimDuration::from_millis(40));
        assert_eq!(path.jitter, SimDuration::from_millis(7));
        // 1 - 0.9 * 0.9
        assert!((path.loss - 0.19).abs() < 1e-12, "loss={}", path.loss);
    }

    #[test]
    fn link_qos_none_is_the_exact_identity() {
        let hop = LinkQos::new(
            SimDuration::from_millis(25),
            SimDuration::from_millis(3),
            0.01,
        );
        assert_eq!(hop.then(LinkQos::NONE), hop);
        assert_eq!(LinkQos::NONE.then(hop), hop);
        assert!(LinkQos::NONE.is_none());
        assert!(!hop.is_none());
    }

    #[test]
    fn link_qos_reads_off_the_network_topology() {
        let mut net = Network::new(LinkSpec::ideal());
        let wan = LinkSpec::wan(SimDuration::from_millis(50));
        net.set_link(NodeId(0), NodeId(1), wan);
        let qos = net.link_qos(NodeId(0), NodeId(1));
        assert_eq!(qos, LinkQos::from_spec(&wan));
        assert!(net.link_qos(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn transmit_time_math() {
        let mut spec = LinkSpec::ideal();
        spec.bytes_per_sec = Some(2_000_000);
        assert_eq!(spec.transmit_time(2_000_000), SimDuration::from_secs(1));
        assert_eq!(spec.transmit_time(0), SimDuration::ZERO);
        assert_eq!(LinkSpec::ideal().transmit_time(1 << 30), SimDuration::ZERO);
    }
}
