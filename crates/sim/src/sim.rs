//! The discrete-event engine.
//!
//! A [`Sim`] owns a set of actors (one per [`NodeId`]), a [`Network`], a
//! deterministic RNG, a [`MetricsRegistry`] and a [`Trace`]. Events are
//! processed in `(time, sequence)` order, so two runs with identical
//! configuration and seed produce identical traces.
//!
//! Sims are configured through [`SimBuilder`] and driven with
//! [`Sim::run`]; the scheduler underneath is a calendar-queue event
//! wheel with arena-allocated actor slots (see DESIGN.md §10), with the
//! pre-refactor `BTreeMap` engine retained behind
//! [`QueueKind::Legacy`] for differential testing.

use std::any::Any;
use std::collections::{BTreeMap, HashSet};
use std::marker::PhantomData;

use crate::actor::{Actor, Ctx, Effect, TimerId};
use crate::metrics::MetricsRegistry;
use crate::net::{DropReason, Network, NodeId, Verdict};
use crate::queue::{EvMeta, EventQueue, QueueEntry};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

pub use crate::queue::QueueKind;

/// Object-safe wrapper adding downcasting to [`Actor`].
trait ActorObj<M>: Actor<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Actor<M> + Any> ActorObj<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum EventKind<M> {
    Start(NodeId),
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    NetChange(Box<dyn FnOnce(&mut Network)>),
}

fn meta_of<M>(kind: &EventKind<M>) -> EvMeta {
    match kind {
        EventKind::Start(node) => EvMeta::Start(*node),
        EventKind::Deliver { from, to, .. } => EvMeta::Deliver {
            from: *from,
            to: *to,
        },
        EventKind::Timer { node, .. } => EvMeta::Timer(*node),
        EventKind::NetChange(_) => EvMeta::NetChange,
    }
}

struct Event<M> {
    kind: EventKind<M>,
    /// The `seq` of the event during whose processing this one was
    /// enqueued, or `None` for events scheduled from outside a dispatch
    /// (injections, actor registration, scripted net changes).
    caused_by: Option<u64>,
}

struct ActorSlot<M> {
    actor: Option<Box<dyn ActorObj<M>>>,
    rng: DetRng,
}

/// A lightweight description of one queued event, in `(time, seq)`
/// order, as exposed by [`Sim::pending_events`]. Schedule explorers use
/// this to decide which deliveries are worth permuting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingEvent {
    /// An actor's `on_start` is queued.
    Start {
        /// The starting actor.
        node: NodeId,
        /// When it runs.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A message is in flight.
    Deliver {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The scheduled delivery time.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A timer is armed on `node` (possibly already cancelled).
    Timer {
        /// The node whose timer it is.
        node: NodeId,
        /// When it fires.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A scheduled network mutation.
    NetChange {
        /// When it applies.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
}

impl PendingEvent {
    fn from_meta(time: SimTime, seq: u64, meta: EvMeta) -> Self {
        match meta {
            EvMeta::Start(node) => PendingEvent::Start { node, time, seq },
            EvMeta::Deliver { from, to } => PendingEvent::Deliver {
                from,
                to,
                time,
                seq,
            },
            EvMeta::Timer(node) => PendingEvent::Timer { node, time, seq },
            EvMeta::NetChange => PendingEvent::NetChange { time, seq },
        }
    }

    /// When the event is due.
    pub fn time(&self) -> SimTime {
        match self {
            PendingEvent::Start { time, .. }
            | PendingEvent::Deliver { time, .. }
            | PendingEvent::Timer { time, .. }
            | PendingEvent::NetChange { time, .. } => *time,
        }
    }

    /// The event's queue identity. Sequence numbers are assigned in
    /// scheduling order, so an event keeps its `seq` across
    /// [`Sim::step_nth`] reorderings — schedule explorers use it to
    /// track one in-flight message across interleavings.
    pub fn seq(&self) -> u64 {
        match self {
            PendingEvent::Start { seq, .. }
            | PendingEvent::Deliver { seq, .. }
            | PendingEvent::Timer { seq, .. }
            | PendingEvent::NetChange { seq, .. } => *seq,
        }
    }

    /// The node whose state the event touches when processed — the
    /// receiver for a delivery, the owner for a timer or start, `None`
    /// for a global network mutation.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            PendingEvent::Start { node, .. } | PendingEvent::Timer { node, .. } => Some(*node),
            PendingEvent::Deliver { to, .. } => Some(*to),
            PendingEvent::NetChange { .. } => None,
        }
    }
}

/// A record of the most recently processed event, with the causal
/// metadata schedule explorers need to reconstruct a happens-before
/// relation: which queued event ran, and which earlier event's
/// processing enqueued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedEvent {
    /// The event, as it appeared in the pending queue.
    pub desc: PendingEvent,
    /// The `seq` of the event during whose processing this one was
    /// enqueued, or `None` for externally scheduled events (injections,
    /// actor registration, scripted net changes).
    pub caused_by: Option<u64>,
}

/// A typed reference to the actor registered on one node, returned by
/// [`Sim::add_actor`] and redeemed with [`Sim::get`] / [`Sim::get_mut`].
///
/// The handle replaces the stringly `sim.actor::<A>(id)` downcast
/// pattern: the registration site names the concrete type once, and
/// every later access inherits it. Handles are plain `Copy` values — a
/// [`NodeId`] plus a compile-time type tag — so scenario builders can
/// hand them around or reconstruct one with [`ActorHandle::of`] when
/// only the id survives (e.g. inside an invariant that received node
/// ids). The type is still checked at access time: [`Sim::get`] returns
/// `None` if the node hosts a different actor type.
pub struct ActorHandle<A> {
    id: NodeId,
    _actor: PhantomData<fn() -> A>,
}

impl<A> ActorHandle<A> {
    /// A handle asserting that node `id` hosts an `A`. The assertion is
    /// checked at [`Sim::get`] time, not here.
    pub fn of(id: NodeId) -> Self {
        ActorHandle {
            id,
            _actor: PhantomData,
        }
    }

    /// The node this handle points at.
    pub fn id(&self) -> NodeId {
        self.id
    }
}

impl<A> Clone for ActorHandle<A> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<A> Copy for ActorHandle<A> {}

impl<A> std::fmt::Debug for ActorHandle<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ActorHandle({})", self.id)
    }
}

impl<A> PartialEq for ActorHandle<A> {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl<A> Eq for ActorHandle<A> {}

/// How long [`Sim::run`] keeps processing events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Until {
    /// Until the event queue is exhausted (or the event cap trips).
    Idle,
    /// While the next event is due at or before the deadline; afterwards
    /// the clock reads the deadline if it would otherwise lag behind.
    At(SimTime),
    /// For a span of simulated time from now (same clock semantics as
    /// [`Until::At`]).
    For(SimDuration),
    /// At most this many events.
    Events(u64),
}

/// Why [`Sim::run`] returned — quiescence is now distinguishable from
/// tripping the event cap, which used to look identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    Quiesced,
    /// The event budget ([`SimBuilder::max_events`] or
    /// [`Until::Events`]) was exhausted with work still queued.
    EventCapHit,
    /// The [`Until::At`] / [`Until::For`] deadline passed with later
    /// events still queued.
    DeadlineHit,
}

/// Configures and constructs a [`Sim`]: seed, network, topology,
/// telemetry and event budget in one fluent expression, replacing the
/// old `with_network` / `set_max_events` / `set_default_msg_bytes`
/// mutator sprawl.
///
/// # Examples
///
/// ```
/// use odp_sim::prelude::*;
///
/// let sim: Sim<u32> = SimBuilder::new(7)
///     .topology(|net| net.set_default_link(LinkSpec::wan(SimDuration::from_millis(20))))
///     .max_events(100_000)
///     .build();
/// assert_eq!(sim.now(), SimTime::ZERO);
/// ```
#[derive(Debug)]
pub struct SimBuilder {
    seed: u64,
    net: Network,
    queue: QueueKind,
    max_events: u64,
    default_msg_bytes: usize,
    telemetry: bool,
    trace_capacity: Option<usize>,
}

impl SimBuilder {
    /// Starts a builder with the default (LAN) network, the calendar
    /// queue, telemetry on, and a 50M-event runaway guard.
    pub fn new(seed: u64) -> Self {
        SimBuilder {
            seed,
            net: Network::default(),
            queue: QueueKind::default(),
            max_events: 50_000_000,
            default_msg_bytes: 256,
            telemetry: true,
            trace_capacity: None,
        }
    }

    /// Replaces the network model wholesale.
    pub fn network(mut self, net: Network) -> Self {
        self.net = net;
        self
    }

    /// Applies a topology builder to the network in place (composes
    /// with [`crate::topology`] helpers and with [`SimBuilder::network`]).
    pub fn topology(mut self, build: impl FnOnce(&mut Network)) -> Self {
        build(&mut self.net);
        self
    }

    /// Selects the event-queue implementation (default
    /// [`QueueKind::Calendar`]). [`QueueKind::Legacy`] exists for
    /// differential tests and the scale-bench baseline.
    pub fn queue(mut self, kind: QueueKind) -> Self {
        self.queue = kind;
        self
    }

    /// Caps the number of processed events, as a runaway-protocol
    /// guard; [`Sim::run`] reports [`RunOutcome::EventCapHit`] when it
    /// trips.
    pub fn max_events(mut self, max: u64) -> Self {
        self.max_events = max;
        self
    }

    /// Sets the wire size assumed for [`Ctx::send`] (default 256 bytes).
    pub fn default_msg_bytes(mut self, bytes: usize) -> Self {
        self.default_msg_bytes = bytes;
        self
    }

    /// Enables or disables trace recording (default on). Scale benches
    /// turn it off so only metrics are collected.
    pub fn telemetry(mut self, enabled: bool) -> Self {
        self.telemetry = enabled;
        self
    }

    /// Bounds the trace to a sliding window of the most recent
    /// `capacity` records (see [`Trace::with_capacity`]).
    pub fn trace_capacity(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Constructs the simulation.
    pub fn build<M: 'static>(self) -> Sim<M> {
        let mut trace = match self.trace_capacity {
            Some(cap) => Trace::with_capacity(cap),
            None => Trace::new(),
        };
        if !self.telemetry {
            trace.disable();
        }
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: EventQueue::new(self.queue),
            slots: Vec::new(),
            by_id: BTreeMap::new(),
            dense: Vec::new(),
            net: self.net,
            rng: DetRng::seed_from(self.seed),
            metrics: MetricsRegistry::new(),
            trace,
            hot: HotCounters::default(),
            hot_flushed: HotCounters::default(),
            scratch: Vec::new(),
            cancelled: CancelSet::new(self.queue),
            next_timer: 0,
            default_msg_bytes: self.default_msg_bytes,
            events_processed: 0,
            max_events: self.max_events,
            processing: None,
            last_executed: None,
            peak_pending: 0,
        }
    }
}

/// Engine-maintained counters kept as plain fields on the hot path and
/// folded into the string-keyed [`MetricsRegistry`] at `&mut`
/// boundaries ([`Sim::step`], [`Sim::step_nth`], the end of
/// [`Sim::run`], [`Sim::metrics_mut`]), so [`Sim::metrics`] always
/// reflects them by the time a caller can observe it.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct HotCounters {
    delivered: u64,
    sent: u64,
    sent_bytes: u64,
    no_actor: u64,
    reentrant: u64,
    drop_loss: u64,
    drop_partitioned: u64,
    drop_disconnected: u64,
}

/// Ids below this bound index directly into the dense `NodeId -> slot`
/// table; sparser ids fall back to the ordered map.
const DENSE_IDS: usize = 1 << 22;

/// The set of cancelled-but-still-queued timer ids.
///
/// Timer ids are handed out sequentially (`next_timer`), so the fast
/// engine keeps membership as a bitmap indexed by id — one bit per
/// timer ever armed, cache-resident even with millions of cancellations
/// outstanding, where a hashed set of the same ids spans tens of
/// megabytes and costs a cold miss per timer pop. The legacy engine
/// keeps the seed's `HashSet` so its cost model is preserved for the
/// scale-bench baseline. Membership — and therefore behaviour — is
/// identical either way.
enum CancelSet {
    Hash(HashSet<u64>),
    Bits { words: Vec<u64>, live: usize },
}

impl CancelSet {
    fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Legacy => CancelSet::Hash(HashSet::new()),
            QueueKind::Calendar => CancelSet::Bits {
                words: Vec::new(),
                live: 0,
            },
        }
    }

    fn is_empty(&self) -> bool {
        match self {
            CancelSet::Hash(set) => set.is_empty(),
            CancelSet::Bits { live, .. } => *live == 0,
        }
    }

    fn insert(&mut self, id: u64) {
        match self {
            CancelSet::Hash(set) => {
                set.insert(id);
            }
            CancelSet::Bits { words, live } => {
                let (w, bit) = ((id / 64) as usize, 1u64 << (id % 64));
                if w >= words.len() {
                    words.resize(w + 1, 0);
                }
                if words[w] & bit == 0 {
                    words[w] |= bit;
                    *live += 1;
                }
            }
        }
    }

    /// Removes `id`, reporting whether it was present.
    fn remove(&mut self, id: u64) -> bool {
        match self {
            CancelSet::Hash(set) => set.remove(&id),
            CancelSet::Bits { words, live } => {
                let (w, bit) = ((id / 64) as usize, 1u64 << (id % 64));
                if words.get(w).is_some_and(|word| word & bit != 0) {
                    words[w] &= !bit;
                    *live -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use odp_sim::prelude::*;
///
/// struct Pinger { peer: NodeId, pongs: u32 }
/// struct Ponger;
///
/// impl Actor<&'static str> for Pinger {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
///         ctx.send(self.peer, "ping");
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, &'static str>, _from: NodeId, _msg: &'static str) {
///         self.pongs += 1;
///         ctx.trace("pong.received", "");
///     }
/// }
/// impl Actor<&'static str> for Ponger {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, &'static str>, from: NodeId, _msg: &'static str) {
///         ctx.send(from, "pong");
///     }
/// }
///
/// let mut sim = SimBuilder::new(42).build();
/// let pinger = sim.add_actor(NodeId(0), Pinger { peer: NodeId(1), pongs: 0 });
/// sim.add_actor(NodeId(1), Ponger);
/// assert_eq!(sim.run(Until::Idle), RunOutcome::Quiesced);
/// assert_eq!(sim.get(pinger).map(|p| p.pongs), Some(1));
/// ```
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    /// The event queue; see [`crate::queue`]. Both implementations
    /// drain in `(time, seq)` order, so [`Sim::step`],
    /// [`Sim::step_nth`] and [`Sim::pending_events`] observe one total
    /// order regardless of kind.
    queue: EventQueue<Event<M>>,
    /// Arena of actor slots in registration order; dispatch indexes
    /// here directly instead of walking a map.
    slots: Vec<ActorSlot<M>>,
    /// `NodeId -> slot` in id order: the iteration view, the duplicate
    /// check, the overflow store for ids past [`DENSE_IDS`] — and the
    /// lookup path the legacy engine uses on every dispatch.
    by_id: BTreeMap<NodeId, u32>,
    /// `NodeId.0 -> slot + 1` (0 = vacant): the O(1) dispatch lookup.
    dense: Vec<u32>,
    net: Network,
    rng: DetRng,
    metrics: MetricsRegistry,
    trace: Trace,
    hot: HotCounters,
    hot_flushed: HotCounters,
    /// Reusable effects buffer for the fast dispatch path.
    scratch: Vec<Effect<M>>,
    cancelled: CancelSet,
    next_timer: u64,
    default_msg_bytes: usize,
    events_processed: u64,
    max_events: u64,
    /// `seq` of the event currently being processed; pushes made while
    /// it is set record it as their cause.
    processing: Option<u64>,
    last_executed: Option<ExecutedEvent>,
    peak_pending: usize,
}

impl<M: 'static> Sim<M> {
    /// Creates a simulation with the default (LAN) network and the given
    /// seed.
    #[deprecated(note = "use SimBuilder::new(seed).build()")]
    pub fn new(seed: u64) -> Self {
        SimBuilder::new(seed).build()
    }

    /// Creates a simulation over a specific network model.
    #[deprecated(note = "use SimBuilder::new(seed).network(net).build()")]
    pub fn with_network(seed: u64, net: Network) -> Self {
        SimBuilder::new(seed).network(net).build()
    }

    /// Registers an actor on node `id`, scheduling its
    /// [`Actor::on_start`] at the current time, and returns a typed
    /// handle for later [`Sim::get`] / [`Sim::get_mut`] access.
    ///
    /// # Panics
    ///
    /// Panics if an actor is already registered on `id`.
    pub fn add_actor<A: Actor<M> + Any>(&mut self, id: NodeId, actor: A) -> ActorHandle<A> {
        assert!(
            !self.by_id.contains_key(&id),
            "actor already registered on {id}"
        );
        let rng = self.rng.fork();
        let slot = self.slots.len() as u32;
        self.slots.push(ActorSlot {
            actor: Some(Box::new(actor)),
            rng,
        });
        self.by_id.insert(id, slot);
        let raw = id.0 as usize;
        if raw < DENSE_IDS {
            if raw >= self.dense.len() {
                self.dense.resize(raw + 1, 0);
            }
            self.dense[raw] = slot + 1;
        }
        self.push(self.now, EventKind::Start(id));
        ActorHandle::of(id)
    }

    /// Mutable access to the network model (mid-run degradation,
    /// partitions, link changes).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the network model.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedules a mutation of the network at time `at` (degradation,
    /// partition, connectivity change).
    pub fn schedule_net_change(
        &mut self,
        at: SimTime,
        change: impl FnOnce(&mut Network) + 'static,
    ) {
        assert!(at >= self.now, "cannot schedule a change in the past");
        self.push(at, EventKind::NetChange(Box::new(change)));
    }

    /// Injects an external stimulus: delivers `msg` to `to` at `at`
    /// (bypassing the network), attributed to `from`. Workload generators
    /// use this to script user behaviour.
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject in the past");
        self.push(at, EventKind::Deliver { from, to, msg });
    }

    /// Sets the wire size assumed for [`Ctx::send`] (default 256 bytes).
    #[deprecated(note = "configure via SimBuilder::default_msg_bytes")]
    pub fn set_default_msg_bytes(&mut self, bytes: usize) {
        self.default_msg_bytes = bytes;
    }

    /// Caps the number of processed events, as a runaway-protocol guard.
    #[deprecated(note = "configure via SimBuilder::max_events; run(Until) reports EventCapHit")]
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's metrics. Engine hot counters (`sim.delivered` etc.)
    /// are folded in at every public stepping boundary, so this view is
    /// current whenever a caller can observe it.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the run's metrics (for summaries, which sort).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        self.flush_hot();
        &mut self.metrics
    }

    /// The run's trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to disable it for big runs).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Borrows the actor a handle points at, downcast to its concrete
    /// type; `None` if the node is unregistered or hosts another type.
    pub fn get<A: Actor<M> + Any>(&self, handle: ActorHandle<A>) -> Option<&A> {
        let slot = self.slot_of(handle.id)?;
        self.slots[slot]
            .actor
            .as_ref()?
            .as_any()
            .downcast_ref::<A>()
    }

    /// Mutable variant of [`Sim::get`].
    pub fn get_mut<A: Actor<M> + Any>(&mut self, handle: ActorHandle<A>) -> Option<&mut A> {
        let slot = self.slot_of(handle.id)?;
        self.slots[slot]
            .actor
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<A>()
    }

    /// Borrows the actor on `id` downcast to its concrete type, for
    /// post-run inspection.
    #[deprecated(note = "use Sim::get with the ActorHandle from add_actor (or ActorHandle::of)")]
    pub fn actor<A: Actor<M> + Any>(&self, id: NodeId) -> Option<&A> {
        self.get(ActorHandle::of(id))
    }

    /// Mutable variant of the deprecated `actor` accessor.
    #[deprecated(
        note = "use Sim::get_mut with the ActorHandle from add_actor (or ActorHandle::of)"
    )]
    pub fn actor_mut<A: Actor<M> + Any>(&mut self, id: NodeId) -> Option<&mut A> {
        self.get_mut(ActorHandle::of(id))
    }

    /// Node ids with registered actors, in ascending order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.by_id.keys().copied().collect()
    }

    /// Which queue implementation this sim runs on.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue.kind()
    }

    /// The largest number of simultaneously queued events seen so far
    /// (scale benches report this as peak queue depth).
    pub fn peak_pending(&self) -> usize {
        self.peak_pending
    }

    fn slot_of(&self, id: NodeId) -> Option<usize> {
        let raw = id.0 as usize;
        if raw < self.dense.len() {
            match self.dense[raw] {
                0 => None,
                s => Some((s - 1) as usize),
            }
        } else if raw < DENSE_IDS {
            None
        } else {
            self.by_id.get(&id).map(|&s| s as usize)
        }
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        let meta = meta_of(&kind);
        self.queue.insert(
            time,
            seq,
            meta,
            Event {
                kind,
                caused_by: self.processing,
            },
        );
        if self.queue.len() > self.peak_pending {
            self.peak_pending = self.queue.len();
        }
    }

    /// Processes the next event. Returns false when the queue is empty or
    /// the event cap is reached.
    pub fn step(&mut self) -> bool {
        let stepped = self.step_inner();
        self.flush_hot();
        stepped
    }

    fn step_inner(&mut self) -> bool {
        if self.events_processed >= self.max_events {
            return false;
        }
        let Some(entry) = self.queue.pop_first() else {
            return false;
        };
        self.process(entry);
        true
    }

    /// Number of events currently queued (cancelled timers included).
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// When the next queued event is due, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.peek_key().map(|(time, _)| time)
    }

    /// Descriptions of every queued event in `(time, seq)` order — the
    /// order [`Sim::step`] would process them. Index `n` here is the `n`
    /// accepted by [`Sim::step_nth`]. On the calendar queue the first
    /// call arms an ordered side index that is mirrored from then on,
    /// so this stays an O(k) traversal rather than a sort.
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let mut out = Vec::with_capacity(self.queue.len());
        self.queue.for_each_in_order(|time, seq, meta| {
            out.push(PendingEvent::from_meta(time, seq, meta))
        });
        out
    }

    /// Processes the `n`-th queued event in `(time, seq)` order instead
    /// of the first — the schedule-exploration hook. Running an event
    /// early never rewinds the clock: simulated time is clamped to stay
    /// monotone, so a later `step` of an "overtaken" earlier event runs
    /// at the current time. Returns false when `n` is out of range or
    /// the event cap is reached. Removal costs O(log n) against the
    /// same armed index [`Sim::pending_events`] reads.
    pub fn step_nth(&mut self, n: usize) -> bool {
        if self.events_processed >= self.max_events {
            return false;
        }
        let Some(entry) = self.queue.remove_nth(n) else {
            return false;
        };
        self.process(entry);
        self.flush_hot();
        true
    }

    /// The most recently processed event, with its causal parent — the
    /// metadata schedule explorers use to build a happens-before
    /// relation over deliveries. `None` before the first step.
    pub fn last_executed(&self) -> Option<ExecutedEvent> {
        self.last_executed
    }

    fn process(&mut self, entry: QueueEntry<Event<M>>) {
        let QueueEntry {
            time,
            seq,
            meta,
            payload: ev,
        } = entry;
        self.events_processed += 1;
        // Under step_nth the chosen event may carry an earlier timestamp
        // than an already-processed one; the clock only moves forward.
        self.now = self.now.max(time);
        self.last_executed = Some(ExecutedEvent {
            desc: PendingEvent::from_meta(time, seq, meta),
            caused_by: ev.caused_by,
        });
        self.processing = Some(seq);
        let legacy = self.queue.kind() == QueueKind::Legacy;
        match ev.kind {
            EventKind::Start(node) => self.dispatch(node, Dispatch::Start),
            EventKind::Deliver { from, to, msg } => {
                if legacy {
                    self.metrics.incr("sim.delivered");
                } else {
                    self.hot.delivered += 1;
                }
                self.dispatch(to, Dispatch::Message { from, msg });
            }
            EventKind::Timer { node, id, tag } => {
                // In the common no-cancellation case skip the hash
                // lookup entirely; behaviour is identical since an
                // empty set can't contain the id.
                let fired = if self.cancelled.is_empty() {
                    true
                } else {
                    !self.cancelled.remove(id.0)
                };
                if fired {
                    self.dispatch(node, Dispatch::Timer { id, tag });
                }
            }
            EventKind::NetChange(f) => f(&mut self.net),
        }
        self.processing = None;
    }

    fn dispatch(&mut self, node: NodeId, what: Dispatch<M>) {
        if self.queue.kind() == QueueKind::Legacy {
            self.dispatch_legacy(node, what);
        } else {
            self.dispatch_fast(node, what);
        }
    }

    /// Arena dispatch: O(1) dense slot lookup, in-place actor and RNG
    /// borrows, and a reused effects buffer — no per-event allocation.
    fn dispatch_fast(&mut self, node: NodeId, what: Dispatch<M>) {
        let Some(slot_idx) = self.slot_of(node) else {
            self.hot.no_actor += 1;
            return;
        };
        let mut effects = std::mem::take(&mut self.scratch);
        debug_assert!(effects.is_empty());
        {
            let slot = &mut self.slots[slot_idx];
            let Some(actor) = slot.actor.as_mut() else {
                self.hot.reentrant += 1;
                self.scratch = effects;
                return;
            };
            let mut ctx = Ctx {
                now: self.now,
                id: node,
                rng: &mut slot.rng,
                effects: &mut effects,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                next_timer: &mut self.next_timer,
                default_msg_bytes: self.default_msg_bytes,
            };
            match what {
                Dispatch::Start => actor.on_start(&mut ctx),
                Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                Dispatch::Timer { id, tag } => actor.on_timer(&mut ctx, id, tag),
            }
        }
        self.apply_effects(node, &mut effects);
        self.scratch = effects;
    }

    /// The pre-refactor dispatch path, byte-for-byte in observable
    /// behaviour: ordered-map slot lookup, actor take/put, RNG clone
    /// and write-back, and a fresh effects vector per event. Kept so
    /// `QueueKind::Legacy` reproduces the seed engine's cost model for
    /// differential tests and the scale-bench baseline.
    fn dispatch_legacy(&mut self, node: NodeId, what: Dispatch<M>) {
        let Some(&slot_idx) = self.by_id.get(&node) else {
            self.metrics.incr("sim.no_actor");
            return;
        };
        let slot = &mut self.slots[slot_idx as usize];
        let Some(mut actor) = slot.actor.take() else {
            self.metrics.incr("sim.reentrant_dispatch");
            return;
        };
        let mut rng = slot.rng.clone();
        let mut effects: Vec<Effect<M>> = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                id: node,
                rng: &mut rng,
                effects: &mut effects,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                next_timer: &mut self.next_timer,
                default_msg_bytes: self.default_msg_bytes,
            };
            match what {
                Dispatch::Start => actor.on_start(&mut ctx),
                Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                Dispatch::Timer { id, tag } => actor.on_timer(&mut ctx, id, tag),
            }
        }
        let slot = &mut self.slots[slot_idx as usize];
        slot.actor = Some(actor);
        slot.rng = rng;
        self.apply_effects(node, &mut effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: &mut Vec<Effect<M>>) {
        let legacy = self.queue.kind() == QueueKind::Legacy;
        for eff in effects.drain(..) {
            match eff {
                Effect::Send { to, msg, bytes } => {
                    if legacy {
                        self.metrics.incr("sim.sent");
                        self.metrics.add("sim.sent_bytes", bytes as u64);
                    } else {
                        self.hot.sent += 1;
                        self.hot.sent_bytes += bytes as u64;
                    }
                    let verdict = if legacy {
                        self.net
                            .submit_unoptimized(self.now, node, to, bytes, &mut self.rng)
                    } else {
                        self.net.submit(self.now, node, to, bytes, &mut self.rng)
                    };
                    match verdict {
                        Verdict::DeliverAt(at) => {
                            self.push(
                                at,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                },
                            );
                        }
                        Verdict::Dropped(reason) => {
                            if legacy {
                                self.metrics.incr(&format!("sim.dropped.{reason:?}"));
                            } else {
                                match reason {
                                    DropReason::Loss => self.hot.drop_loss += 1,
                                    DropReason::Partitioned => self.hot.drop_partitioned += 1,
                                    DropReason::Disconnected => self.hot.drop_disconnected += 1,
                                }
                            }
                        }
                    }
                }
                Effect::SetTimer { id, at, tag } => {
                    self.push(at, EventKind::Timer { node, id, tag });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id.0);
                }
            }
        }
    }

    /// Folds hot-path counters into the string-keyed registry. Metric
    /// names match the legacy engine's exactly, so both queue kinds
    /// report identical registries.
    fn flush_hot(&mut self) {
        let (h, f) = (self.hot, self.hot_flushed);
        if h == f {
            return;
        }
        if h.delivered > f.delivered {
            self.metrics.add("sim.delivered", h.delivered - f.delivered);
        }
        if h.sent > f.sent {
            self.metrics.add("sim.sent", h.sent - f.sent);
        }
        if h.sent_bytes > f.sent_bytes {
            self.metrics
                .add("sim.sent_bytes", h.sent_bytes - f.sent_bytes);
        }
        if h.no_actor > f.no_actor {
            self.metrics.add("sim.no_actor", h.no_actor - f.no_actor);
        }
        if h.reentrant > f.reentrant {
            self.metrics
                .add("sim.reentrant_dispatch", h.reentrant - f.reentrant);
        }
        if h.drop_loss > f.drop_loss {
            self.metrics
                .add("sim.dropped.Loss", h.drop_loss - f.drop_loss);
        }
        if h.drop_partitioned > f.drop_partitioned {
            self.metrics.add(
                "sim.dropped.Partitioned",
                h.drop_partitioned - f.drop_partitioned,
            );
        }
        if h.drop_disconnected > f.drop_disconnected {
            self.metrics.add(
                "sim.dropped.Disconnected",
                h.drop_disconnected - f.drop_disconnected,
            );
        }
        self.hot_flushed = h;
    }

    /// Runs the simulation until the given condition and reports why it
    /// stopped — quiescence, the event cap, or the deadline.
    pub fn run(&mut self, until: Until) -> RunOutcome {
        let outcome = match until {
            Until::Idle => self.run_inner(SimTime::MAX, u64::MAX, false),
            Until::At(deadline) => self.run_inner(deadline, u64::MAX, true),
            Until::For(d) => {
                let deadline = self.now + d;
                self.run_inner(deadline, u64::MAX, true)
            }
            Until::Events(n) => self.run_inner(SimTime::MAX, n, false),
        };
        self.flush_hot();
        outcome
    }

    fn run_inner(&mut self, deadline: SimTime, budget: u64, bump_clock: bool) -> RunOutcome {
        let mut left = budget;
        let outcome = loop {
            if left == 0 || self.events_processed >= self.max_events {
                break match self.queue.peek_key() {
                    None => RunOutcome::Quiesced,
                    Some((t, _)) if t > deadline => RunOutcome::DeadlineHit,
                    Some(_) => RunOutcome::EventCapHit,
                };
            }
            match self.queue.pop_first_at_or_before(deadline) {
                Some(entry) => {
                    self.process(entry);
                    left -= 1;
                }
                None => {
                    break if self.queue.len() == 0 {
                        RunOutcome::Quiesced
                    } else {
                        RunOutcome::DeadlineHit
                    };
                }
            }
        };
        if bump_clock && self.now < deadline {
            self.now = deadline;
        }
        outcome
    }

    /// Runs while the next event is at or before `deadline`; afterwards
    /// the clock reads `deadline` if it would otherwise lag behind.
    #[deprecated(note = "use run(Until::At(deadline))")]
    pub fn run_until(&mut self, deadline: SimTime) {
        self.run(Until::At(deadline));
    }

    /// Runs for `d` of simulated time from now.
    #[deprecated(note = "use run(Until::For(d))")]
    pub fn run_for(&mut self, d: SimDuration) {
        self.run(Until::For(d));
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

enum Dispatch<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { id: TimerId, tag: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkSpec;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Client {
        server: NodeId,
        received: Vec<u32>,
        timer_fired: u32,
        cancelled_timer: Option<TimerId>,
    }

    impl Client {
        fn new(server: NodeId) -> Self {
            Client {
                server,
                received: Vec::new(),
                timer_fired: 0,
                cancelled_timer: None,
            }
        }
    }

    impl Actor<Msg> for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.server, Msg::Ping(1));
            let keep = ctx.set_timer(SimDuration::from_millis(10), 7);
            let _ = keep;
            let cancel_me = ctx.set_timer(SimDuration::from_millis(5), 9);
            ctx.cancel_timer(cancel_me);
            self.cancelled_timer = Some(cancel_me);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.received.push(n);
                ctx.trace("pong", n.to_string());
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _timer: TimerId, tag: u64) {
            assert_eq!(tag, 7, "cancelled timer must not fire");
            self.timer_fired += 1;
        }
    }

    struct Server;
    impl Actor<Msg> for Server {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    fn build_on(seed: u64, kind: QueueKind) -> (Sim<Msg>, ActorHandle<Client>) {
        let mut net = Network::new(LinkSpec::lan());
        net.set_default_link(LinkSpec::lan());
        let mut sim = SimBuilder::new(seed).network(net).queue(kind).build();
        let client = sim.add_actor(NodeId(0), Client::new(NodeId(1)));
        sim.add_actor(NodeId(1), Server);
        (sim, client)
    }

    fn build(seed: u64) -> (Sim<Msg>, ActorHandle<Client>) {
        build_on(seed, QueueKind::Calendar)
    }

    #[test]
    fn ping_pong_round_trip() {
        let (mut sim, client) = build(1);
        assert_eq!(sim.run(Until::Idle), RunOutcome::Quiesced);
        let client = sim.get(client).unwrap();
        assert_eq!(client.received, vec![1]);
        assert_eq!(client.timer_fired, 1);
        assert_eq!(sim.metrics().counter("sim.sent"), 2);
        assert_eq!(sim.metrics().counter("sim.delivered"), 2);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let (mut a, _) = build(99);
        let (mut b, _) = build(99);
        a.run(Until::Idle);
        b.run(Until::Idle);
        assert_eq!(a.trace().events(), b.trace().events());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn legacy_and_calendar_engines_agree_exactly() {
        let (mut cal, _) = build_on(99, QueueKind::Calendar);
        let (mut leg, _) = build_on(99, QueueKind::Legacy);
        let mut cal_execs = Vec::new();
        let mut leg_execs = Vec::new();
        while cal.step() {
            cal_execs.extend(cal.last_executed());
        }
        while leg.step() {
            leg_execs.extend(leg.last_executed());
        }
        assert_eq!(cal_execs, leg_execs);
        assert_eq!(cal.trace().events(), leg.trace().events());
        assert_eq!(cal.now(), leg.now());
        assert_eq!(
            cal.metrics().counter("sim.sent"),
            leg.metrics().counter("sim.sent")
        );
        assert_eq!(
            cal.metrics().counter("sim.delivered"),
            leg.metrics().counter("sim.delivered")
        );
    }

    #[test]
    fn different_seeds_may_differ_in_timing_but_not_logic() {
        let (mut a, ca) = build(1);
        let (mut b, cb) = build(2);
        a.run(Until::Idle);
        b.run(Until::Idle);
        let ca = a.get(ca).unwrap();
        let cb = b.get(cb).unwrap();
        assert_eq!(ca.received, cb.received);
    }

    #[test]
    fn run_until_stops_the_clock_at_the_deadline() {
        let (mut sim, client) = build(5);
        let outcome = sim.run(Until::At(SimTime::from_micros(1)));
        assert_eq!(outcome, RunOutcome::DeadlineHit, "timer still armed");
        // The 10ms timer has not fired yet.
        assert_eq!(sim.get(client).unwrap().timer_fired, 0);
        assert_eq!(
            sim.run(Until::For(SimDuration::from_millis(20))),
            RunOutcome::Quiesced
        );
        assert_eq!(sim.get(client).unwrap().timer_fired, 1);
        assert_eq!(
            sim.now(),
            SimTime::from_micros(1) + SimDuration::from_millis(20)
        );
    }

    #[test]
    fn run_events_budget_reports_cap() {
        let (mut sim, _) = build(8);
        assert_eq!(sim.run(Until::Events(1)), RunOutcome::EventCapHit);
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.run(Until::Events(1_000)), RunOutcome::Quiesced);
    }

    #[test]
    fn typed_handles_check_the_actor_type_at_access() {
        let (sim, client) = build(6);
        assert!(sim.get(client).is_some());
        assert!(sim.get(ActorHandle::<Server>::of(NodeId(1))).is_some());
        // Wrong type or unregistered node: None, not a panic.
        assert!(sim.get(ActorHandle::<Server>::of(NodeId(0))).is_none());
        assert!(sim.get(ActorHandle::<Client>::of(NodeId(77))).is_none());
        assert_eq!(client.id(), NodeId(0));
    }

    #[test]
    fn send_to_unregistered_node_is_counted_not_fatal() {
        struct Lost;
        impl Actor<Msg> for Lost {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.send(NodeId(42), Msg::Ping(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
        }
        let mut sim: Sim<Msg> = SimBuilder::new(3).build();
        sim.add_actor(NodeId(0), Lost);
        sim.run(Until::Idle);
        assert_eq!(sim.metrics().counter("sim.no_actor"), 1);
    }

    #[test]
    fn scheduled_net_change_takes_effect() {
        struct Spammer {
            peer: NodeId,
        }
        impl Actor<Msg> for Spammer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: TimerId, _: u64) {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        struct Sink {
            got: u32,
        }
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {
                self.got += 1;
            }
        }
        let mut sim = SimBuilder::new(7)
            .network(Network::new(LinkSpec::ideal()))
            .build();
        sim.add_actor(NodeId(0), Spammer { peer: NodeId(1) });
        let sink = sim.add_actor(NodeId(1), Sink { got: 0 });
        // Disconnect the sink from t=5ms.
        sim.schedule_net_change(SimTime::from_millis(5), |n| {
            n.set_connectivity(NodeId(1), crate::net::Connectivity::Disconnected);
        });
        sim.run(Until::At(SimTime::from_millis(10)));
        let got = sim.get(sink).unwrap().got;
        assert!((4..=5).contains(&got), "got={got}");
        assert!(sim.metrics().counter("sim.dropped.Disconnected") >= 4);
    }

    #[test]
    fn step_nth_reorders_but_keeps_time_monotone() {
        struct Collector {
            got: Vec<u32>,
        }
        impl Actor<Msg> for Collector {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, msg: Msg) {
                if let Msg::Ping(n) = msg {
                    self.got.push(n);
                }
            }
        }
        let mut sim: Sim<Msg> = SimBuilder::new(11).build();
        let collector = sim.add_actor(NodeId(0), Collector { got: Vec::new() });
        sim.inject(SimTime::from_millis(1), NodeId(9), NodeId(0), Msg::Ping(1));
        sim.inject(SimTime::from_millis(2), NodeId(9), NodeId(0), Msg::Ping(2));
        sim.inject(SimTime::from_millis(3), NodeId(9), NodeId(0), Msg::Ping(3));
        // Drain the Start event first, then deliver out of order: 3, 1, 2.
        assert!(sim.step());
        let pending = sim.pending_events();
        assert_eq!(pending.len(), 3);
        assert!(matches!(
            pending[0],
            PendingEvent::Deliver { to: NodeId(0), .. }
        ));
        assert!(sim.step_nth(2));
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert!(sim.step_nth(0));
        // The overtaken 1ms delivery ran late; the clock did not rewind.
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert!(sim.step());
        assert!(!sim.step_nth(0), "queue exhausted");
        let c = sim.get(collector).unwrap();
        assert_eq!(c.got, vec![3, 1, 2]);
    }

    #[test]
    fn executed_events_carry_seq_identity_and_cause() {
        let (mut sim, _) = build(4);
        // Start events were scheduled externally.
        assert!(sim.step());
        let start = sim.last_executed().expect("an event ran");
        assert!(matches!(start.desc, PendingEvent::Start { .. }));
        assert_eq!(start.caused_by, None);
        let start_seq = start.desc.seq();
        // The client's on_start sent Ping(1); that delivery was caused
        // by the start event and keeps its queue seq when surfaced.
        let ping = sim
            .pending_events()
            .into_iter()
            .find(|ev| matches!(ev, PendingEvent::Deliver { .. }))
            .expect("ping in flight");
        sim.run(Until::Idle);
        let deliveries: Vec<ExecutedEvent> = {
            // Replaying the same seed, collect every executed event.
            let (mut sim, _) = build(4);
            let mut seen = Vec::new();
            while sim.step() {
                seen.extend(sim.last_executed());
            }
            seen
        };
        let ping_exec = deliveries
            .iter()
            .find(|ev| ev.desc.seq() == ping.seq())
            .expect("ping executed");
        assert_eq!(ping_exec.caused_by, Some(start_seq));
        assert_eq!(ping_exec.desc.node(), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_actor_registration_panics() {
        let mut sim: Sim<Msg> = SimBuilder::new(0).build();
        sim.add_actor(NodeId(0), Server);
        sim.add_actor(NodeId(0), Server);
    }

    #[test]
    fn inject_delivers_external_stimuli() {
        let mut sim: Sim<Msg> = SimBuilder::new(0).build();
        sim.add_actor(NodeId(1), Server);
        sim.add_actor(NodeId(0), Client::new(NodeId(1)));
        sim.inject(SimTime::from_millis(50), NodeId(9), NodeId(1), Msg::Ping(5));
        sim.run(Until::Idle);
        // Server answered the injected ping to node 9 (unregistered).
        assert_eq!(sim.metrics().counter("sim.no_actor"), 1);
    }

    #[test]
    fn event_cap_stops_runaway_protocols() {
        struct LoopBack;
        impl Actor<Msg> for LoopBack {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: TimerId, _: u64) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut sim: Sim<Msg> = SimBuilder::new(0).max_events(1_000).build();
        sim.add_actor(NodeId(0), LoopBack);
        assert_eq!(sim.run(Until::Idle), RunOutcome::EventCapHit);
        assert!(sim.events_processed() <= 1_000);
    }

    #[test]
    fn builder_telemetry_and_capacity_shape_the_trace() {
        let mut quiet: Sim<Msg> = SimBuilder::new(1).telemetry(false).build();
        quiet.trace_mut().record(SimTime::ZERO, NodeId(0), "x", "");
        assert!(quiet.trace().is_empty());
        let bounded: Sim<Msg> = SimBuilder::new(1).trace_capacity(4).build();
        assert_eq!(bounded.trace().capacity(), Some(4));
    }

    #[test]
    fn peak_pending_tracks_queue_depth() {
        let mut sim: Sim<Msg> = SimBuilder::new(2).build();
        sim.add_actor(NodeId(0), Server);
        for i in 0..10 {
            sim.inject(SimTime::from_millis(i), NodeId(9), NodeId(0), Msg::Ping(0));
        }
        assert_eq!(sim.peak_pending(), 11, "start event + 10 injections");
        sim.run(Until::Idle);
        assert_eq!(sim.peak_pending(), 11);
    }

    #[test]
    fn sparse_node_ids_fall_back_to_the_map_index() {
        let mut sim: Sim<Msg> = SimBuilder::new(0).build();
        let far = NodeId(u32::MAX - 1);
        sim.add_actor(far, Server);
        sim.add_actor(NodeId(0), Client::new(far));
        assert_eq!(sim.run(Until::Idle), RunOutcome::Quiesced);
        assert_eq!(sim.metrics().counter("sim.delivered"), 2);
        assert_eq!(sim.node_ids(), vec![NodeId(0), far]);
        assert!(sim.get(ActorHandle::<Server>::of(far)).is_some());
    }

    /// The one-release compatibility shims still work; this module is
    /// the only in-repo caller allowed to exercise them.
    #[allow(deprecated)]
    mod deprecated_shims {
        use super::*;

        #[test]
        fn legacy_construction_and_run_surface_still_works() {
            let mut sim: Sim<Msg> = Sim::new(1);
            sim.set_max_events(10_000);
            sim.set_default_msg_bytes(128);
            sim.add_actor(NodeId(1), Server);
            sim.add_actor(NodeId(0), Client::new(NodeId(1)));
            sim.run_until(SimTime::from_millis(1));
            sim.run_for(SimDuration::from_millis(20));
            let client: &Client = sim.actor(NodeId(0)).expect("registered");
            assert_eq!(client.received, vec![1]);
            let client_mut: &mut Client = sim.actor_mut(NodeId(0)).expect("registered");
            client_mut.received.clear();
        }

        #[test]
        fn with_network_matches_builder_network() {
            let wan = || Network::new(LinkSpec::wan(SimDuration::from_millis(20)));
            let mut a: Sim<Msg> = Sim::with_network(9, wan());
            let mut b: Sim<Msg> = SimBuilder::new(9).network(wan()).build();
            a.add_actor(NodeId(0), Client::new(NodeId(1)));
            a.add_actor(NodeId(1), Server);
            b.add_actor(NodeId(0), Client::new(NodeId(1)));
            b.add_actor(NodeId(1), Server);
            a.run(Until::Idle);
            b.run(Until::Idle);
            assert_eq!(a.trace().events(), b.trace().events());
        }
    }
}
