//! The discrete-event engine.
//!
//! A [`Sim`] owns a set of actors (one per [`NodeId`]), a [`Network`], a
//! deterministic RNG, a [`MetricsRegistry`] and a [`Trace`]. Events are
//! processed in `(time, sequence)` order, so two runs with identical
//! configuration and seed produce identical traces.

use std::any::Any;
use std::collections::{BTreeMap, HashSet};

use crate::actor::{Actor, Ctx, Effect, TimerId};
use crate::metrics::MetricsRegistry;
use crate::net::{Network, NodeId, Verdict};
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Object-safe wrapper adding downcasting to [`Actor`].
trait ActorObj<M>: Actor<M> {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<M, T: Actor<M> + Any> ActorObj<M> for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum EventKind<M> {
    Start(NodeId),
    Deliver { from: NodeId, to: NodeId, msg: M },
    Timer { node: NodeId, id: TimerId, tag: u64 },
    NetChange(Box<dyn FnOnce(&mut Network)>),
}

struct Event<M> {
    kind: EventKind<M>,
    /// The `seq` of the event during whose processing this one was
    /// enqueued, or `None` for events scheduled from outside a dispatch
    /// (injections, actor registration, scripted net changes).
    caused_by: Option<u64>,
}

struct ActorSlot<M> {
    actor: Option<Box<dyn ActorObj<M>>>,
    rng: DetRng,
}

/// A lightweight description of one queued event, in `(time, seq)`
/// order, as exposed by [`Sim::pending_events`]. Schedule explorers use
/// this to decide which deliveries are worth permuting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PendingEvent {
    /// An actor's `on_start` is queued.
    Start {
        /// The starting actor.
        node: NodeId,
        /// When it runs.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A message is in flight.
    Deliver {
        /// The sender.
        from: NodeId,
        /// The destination.
        to: NodeId,
        /// The scheduled delivery time.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A timer is armed on `node` (possibly already cancelled).
    Timer {
        /// The node whose timer it is.
        node: NodeId,
        /// When it fires.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
    /// A scheduled network mutation.
    NetChange {
        /// When it applies.
        time: SimTime,
        /// The event's queue identity (unique within a run).
        seq: u64,
    },
}

impl PendingEvent {
    /// When the event is due.
    pub fn time(&self) -> SimTime {
        match self {
            PendingEvent::Start { time, .. }
            | PendingEvent::Deliver { time, .. }
            | PendingEvent::Timer { time, .. }
            | PendingEvent::NetChange { time, .. } => *time,
        }
    }

    /// The event's queue identity. Sequence numbers are assigned in
    /// scheduling order, so an event keeps its `seq` across
    /// [`Sim::step_nth`] reorderings — schedule explorers use it to
    /// track one in-flight message across interleavings.
    pub fn seq(&self) -> u64 {
        match self {
            PendingEvent::Start { seq, .. }
            | PendingEvent::Deliver { seq, .. }
            | PendingEvent::Timer { seq, .. }
            | PendingEvent::NetChange { seq, .. } => *seq,
        }
    }

    /// The node whose state the event touches when processed — the
    /// receiver for a delivery, the owner for a timer or start, `None`
    /// for a global network mutation.
    pub fn node(&self) -> Option<NodeId> {
        match self {
            PendingEvent::Start { node, .. } | PendingEvent::Timer { node, .. } => Some(*node),
            PendingEvent::Deliver { to, .. } => Some(*to),
            PendingEvent::NetChange { .. } => None,
        }
    }
}

/// A record of the most recently processed event, with the causal
/// metadata schedule explorers need to reconstruct a happens-before
/// relation: which queued event ran, and which earlier event's
/// processing enqueued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutedEvent {
    /// The event, as it appeared in the pending queue.
    pub desc: PendingEvent,
    /// The `seq` of the event during whose processing this one was
    /// enqueued, or `None` for externally scheduled events (injections,
    /// actor registration, scripted net changes).
    pub caused_by: Option<u64>,
}

/// A deterministic discrete-event simulation.
///
/// # Examples
///
/// ```
/// use odp_sim::prelude::*;
///
/// struct Pinger { peer: NodeId }
/// struct Ponger;
///
/// impl Actor<&'static str> for Pinger {
///     fn on_start(&mut self, ctx: &mut Ctx<'_, &'static str>) {
///         ctx.send(self.peer, "ping");
///     }
///     fn on_message(&mut self, ctx: &mut Ctx<'_, &'static str>, _from: NodeId, _msg: &'static str) {
///         ctx.trace("pong.received", "");
///     }
/// }
/// impl Actor<&'static str> for Ponger {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, &'static str>, from: NodeId, _msg: &'static str) {
///         ctx.send(from, "pong");
///     }
/// }
///
/// let mut sim = Sim::new(42);
/// sim.add_actor(NodeId(0), Pinger { peer: NodeId(1) });
/// sim.add_actor(NodeId(1), Ponger);
/// sim.run();
/// assert_eq!(sim.trace().with_label("pong.received").count(), 1);
/// ```
pub struct Sim<M> {
    now: SimTime,
    seq: u64,
    /// The event queue, keyed in `(time, seq)` order — the map itself is
    /// the one sorted view that [`Sim::step`], [`Sim::step_nth`] and
    /// [`Sim::pending_events`] all read, so removal of an arbitrary
    /// event is an `O(log n)` map operation instead of a heap rebuild.
    queue: BTreeMap<(SimTime, u64), Event<M>>,
    actors: BTreeMap<NodeId, ActorSlot<M>>,
    net: Network,
    rng: DetRng,
    metrics: MetricsRegistry,
    trace: Trace,
    cancelled: HashSet<u64>,
    next_timer: u64,
    default_msg_bytes: usize,
    events_processed: u64,
    max_events: u64,
    /// `seq` of the event currently being processed; pushes made while
    /// it is set record it as their cause.
    processing: Option<u64>,
    last_executed: Option<ExecutedEvent>,
}

impl<M: 'static> Sim<M> {
    /// Creates a simulation with the default (LAN) network and the given
    /// seed.
    pub fn new(seed: u64) -> Self {
        Sim::with_network(seed, Network::default())
    }

    /// Creates a simulation over a specific network model.
    pub fn with_network(seed: u64, net: Network) -> Self {
        Sim {
            now: SimTime::ZERO,
            seq: 0,
            queue: BTreeMap::new(),
            actors: BTreeMap::new(),
            net,
            rng: DetRng::seed_from(seed),
            metrics: MetricsRegistry::new(),
            trace: Trace::new(),
            cancelled: HashSet::new(),
            next_timer: 0,
            default_msg_bytes: 256,
            events_processed: 0,
            max_events: 50_000_000,
            processing: None,
            last_executed: None,
        }
    }

    /// Registers an actor on node `id`, scheduling its
    /// [`Actor::on_start`] at the current time.
    ///
    /// # Panics
    ///
    /// Panics if an actor is already registered on `id`.
    pub fn add_actor(&mut self, id: NodeId, actor: impl Actor<M> + Any) {
        assert!(
            !self.actors.contains_key(&id),
            "actor already registered on {id}"
        );
        let rng = self.rng.fork();
        self.actors.insert(
            id,
            ActorSlot {
                actor: Some(Box::new(actor)),
                rng,
            },
        );
        self.push(self.now, EventKind::Start(id));
    }

    /// Mutable access to the network model (topology setup before a run).
    pub fn network_mut(&mut self) -> &mut Network {
        &mut self.net
    }

    /// Read access to the network model.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Schedules a mutation of the network at time `at` (degradation,
    /// partition, connectivity change).
    pub fn schedule_net_change(
        &mut self,
        at: SimTime,
        change: impl FnOnce(&mut Network) + 'static,
    ) {
        assert!(at >= self.now, "cannot schedule a change in the past");
        self.push(at, EventKind::NetChange(Box::new(change)));
    }

    /// Injects an external stimulus: delivers `msg` to `to` at `at`
    /// (bypassing the network), attributed to `from`. Workload generators
    /// use this to script user behaviour.
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: M) {
        assert!(at >= self.now, "cannot inject in the past");
        self.push(at, EventKind::Deliver { from, to, msg });
    }

    /// Sets the wire size assumed for [`Ctx::send`] (default 256 bytes).
    pub fn set_default_msg_bytes(&mut self, bytes: usize) {
        self.default_msg_bytes = bytes;
    }

    /// Caps the number of processed events, as a runaway-protocol guard.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The run's metrics.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Mutable access to the run's metrics (for summaries, which sort).
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The run's trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Mutable access to the trace (e.g. to disable it for big runs).
    pub fn trace_mut(&mut self) -> &mut Trace {
        &mut self.trace
    }

    /// Borrows the actor on `id` downcast to its concrete type, for
    /// post-run inspection.
    pub fn actor<A: Actor<M> + Any>(&self, id: NodeId) -> Option<&A> {
        self.actors
            .get(&id)?
            .actor
            .as_ref()?
            .as_any()
            .downcast_ref::<A>()
    }

    /// Mutable variant of [`Sim::actor`].
    pub fn actor_mut<A: Actor<M> + Any>(&mut self, id: NodeId) -> Option<&mut A> {
        self.actors
            .get_mut(&id)?
            .actor
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<A>()
    }

    /// Node ids with registered actors, in ascending order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.actors.keys().copied().collect()
    }

    fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.insert(
            (time, seq),
            Event {
                kind,
                caused_by: self.processing,
            },
        );
    }

    /// Processes the next event. Returns false when the queue is empty or
    /// the event cap is reached.
    pub fn step(&mut self) -> bool {
        if self.events_processed >= self.max_events {
            return false;
        }
        let Some(((time, seq), ev)) = self.queue.pop_first() else {
            return false;
        };
        self.process(time, seq, ev);
        true
    }

    /// Number of events currently queued (cancelled timers included).
    pub fn pending_len(&self) -> usize {
        self.queue.len()
    }

    /// When the next queued event is due, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.queue.keys().next().map(|(time, _)| *time)
    }

    fn describe(key: (SimTime, u64), kind: &EventKind<M>) -> PendingEvent {
        let (time, seq) = key;
        match kind {
            EventKind::Start(node) => PendingEvent::Start {
                node: *node,
                time,
                seq,
            },
            EventKind::Deliver { from, to, .. } => PendingEvent::Deliver {
                from: *from,
                to: *to,
                time,
                seq,
            },
            EventKind::Timer { node, .. } => PendingEvent::Timer {
                node: *node,
                time,
                seq,
            },
            EventKind::NetChange(_) => PendingEvent::NetChange { time, seq },
        }
    }

    /// Descriptions of every queued event in `(time, seq)` order — the
    /// order [`Sim::step`] would process them. Index `n` here is the `n`
    /// accepted by [`Sim::step_nth`]. The queue itself is kept in this
    /// order, so this is a plain traversal, not a sort.
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        self.queue
            .iter()
            .map(|(key, ev)| Self::describe(*key, &ev.kind))
            .collect()
    }

    /// Processes the `n`-th queued event in `(time, seq)` order instead
    /// of the first — the schedule-exploration hook. Running an event
    /// early never rewinds the clock: simulated time is clamped to stay
    /// monotone, so a later `step` of an "overtaken" earlier event runs
    /// at the current time. Returns false when `n` is out of range or
    /// the event cap is reached.
    pub fn step_nth(&mut self, n: usize) -> bool {
        if self.events_processed >= self.max_events {
            return false;
        }
        let Some(key) = self.queue.keys().nth(n).copied() else {
            return false;
        };
        // The key was just read from the map.
        // odp-check: allow(unwrap)
        let ev = self.queue.remove(&key).expect("key exists");
        self.process(key.0, key.1, ev);
        true
    }

    /// The most recently processed event, with its causal parent — the
    /// metadata schedule explorers use to build a happens-before
    /// relation over deliveries. `None` before the first step.
    pub fn last_executed(&self) -> Option<ExecutedEvent> {
        self.last_executed
    }

    fn process(&mut self, time: SimTime, seq: u64, ev: Event<M>) {
        self.events_processed += 1;
        // Under step_nth the chosen event may carry an earlier timestamp
        // than an already-processed one; the clock only moves forward.
        self.now = self.now.max(time);
        self.last_executed = Some(ExecutedEvent {
            desc: Self::describe((time, seq), &ev.kind),
            caused_by: ev.caused_by,
        });
        self.processing = Some(seq);
        match ev.kind {
            EventKind::Start(node) => self.dispatch(node, Dispatch::Start),
            EventKind::Deliver { from, to, msg } => {
                self.metrics.incr("sim.delivered");
                self.dispatch(to, Dispatch::Message { from, msg });
            }
            EventKind::Timer { node, id, tag } => {
                if !self.cancelled.remove(&id.0) {
                    self.dispatch(node, Dispatch::Timer { id, tag });
                }
            }
            EventKind::NetChange(f) => f(&mut self.net),
        }
        self.processing = None;
    }

    fn dispatch(&mut self, node: NodeId, what: Dispatch<M>) {
        let Some(slot) = self.actors.get_mut(&node) else {
            self.metrics.incr("sim.no_actor");
            return;
        };
        let Some(mut actor) = slot.actor.take() else {
            self.metrics.incr("sim.reentrant_dispatch");
            return;
        };
        let mut rng = slot.rng.clone();
        let mut effects: Vec<Effect<M>> = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.now,
                id: node,
                rng: &mut rng,
                effects: &mut effects,
                metrics: &mut self.metrics,
                trace: &mut self.trace,
                next_timer: &mut self.next_timer,
                default_msg_bytes: self.default_msg_bytes,
            };
            match what {
                Dispatch::Start => actor.on_start(&mut ctx),
                Dispatch::Message { from, msg } => actor.on_message(&mut ctx, from, msg),
                Dispatch::Timer { id, tag } => actor.on_timer(&mut ctx, id, tag),
            }
        }
        // The slot was taken from this map when dispatch began.
        // odp-check: allow(unwrap)
        let slot = self.actors.get_mut(&node).expect("slot exists");
        slot.actor = Some(actor);
        slot.rng = rng;
        self.apply_effects(node, effects);
    }

    fn apply_effects(&mut self, node: NodeId, effects: Vec<Effect<M>>) {
        for eff in effects {
            match eff {
                Effect::Send { to, msg, bytes } => {
                    self.metrics.incr("sim.sent");
                    self.metrics.add("sim.sent_bytes", bytes as u64);
                    match self.net.submit(self.now, node, to, bytes, &mut self.rng) {
                        Verdict::DeliverAt(at) => {
                            self.push(
                                at,
                                EventKind::Deliver {
                                    from: node,
                                    to,
                                    msg,
                                },
                            );
                        }
                        Verdict::Dropped(reason) => {
                            self.metrics.incr(&format!("sim.dropped.{reason:?}"));
                        }
                    }
                }
                Effect::SetTimer { id, at, tag } => {
                    self.push(at, EventKind::Timer { node, id, tag });
                }
                Effect::CancelTimer(id) => {
                    self.cancelled.insert(id.0);
                }
            }
        }
    }

    /// Runs until the event queue is exhausted (or the event cap trips).
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Runs while the next event is at or before `deadline`; afterwards
    /// the clock reads `deadline` if it would otherwise lag behind.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.keys().next() {
                Some((time, _)) if *time <= deadline => {
                    if !self.step() {
                        break;
                    }
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Runs for `d` of simulated time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }
}

enum Dispatch<M> {
    Start,
    Message { from: NodeId, msg: M },
    Timer { id: TimerId, tag: u64 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::LinkSpec;

    #[derive(Debug, Clone, PartialEq)]
    enum Msg {
        Ping(u32),
        Pong(u32),
    }

    struct Client {
        server: NodeId,
        received: Vec<u32>,
        timer_fired: u32,
        cancelled_timer: Option<TimerId>,
    }

    impl Client {
        fn new(server: NodeId) -> Self {
            Client {
                server,
                received: Vec::new(),
                timer_fired: 0,
                cancelled_timer: None,
            }
        }
    }

    impl Actor<Msg> for Client {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(self.server, Msg::Ping(1));
            let keep = ctx.set_timer(SimDuration::from_millis(10), 7);
            let _ = keep;
            let cancel_me = ctx.set_timer(SimDuration::from_millis(5), 9);
            ctx.cancel_timer(cancel_me);
            self.cancelled_timer = Some(cancel_me);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: NodeId, msg: Msg) {
            if let Msg::Pong(n) = msg {
                self.received.push(n);
                ctx.trace("pong", n.to_string());
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, Msg>, _timer: TimerId, tag: u64) {
            assert_eq!(tag, 7, "cancelled timer must not fire");
            self.timer_fired += 1;
        }
    }

    struct Server;
    impl Actor<Msg> for Server {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: NodeId, msg: Msg) {
            if let Msg::Ping(n) = msg {
                ctx.send(from, Msg::Pong(n));
            }
        }
    }

    fn build(seed: u64) -> Sim<Msg> {
        let mut net = Network::new(LinkSpec::lan());
        net.set_default_link(LinkSpec::lan());
        let mut sim = Sim::with_network(seed, net);
        sim.add_actor(NodeId(0), Client::new(NodeId(1)));
        sim.add_actor(NodeId(1), Server);
        sim
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut sim = build(1);
        sim.run();
        let client: &Client = sim.actor(NodeId(0)).unwrap();
        assert_eq!(client.received, vec![1]);
        assert_eq!(client.timer_fired, 1);
        assert_eq!(sim.metrics().counter("sim.sent"), 2);
        assert_eq!(sim.metrics().counter("sim.delivered"), 2);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let mut a = build(99);
        let mut b = build(99);
        a.run();
        b.run();
        assert_eq!(a.trace().events(), b.trace().events());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn different_seeds_may_differ_in_timing_but_not_logic() {
        let mut a = build(1);
        let mut b = build(2);
        a.run();
        b.run();
        let ca: &Client = a.actor(NodeId(0)).unwrap();
        let cb: &Client = b.actor(NodeId(0)).unwrap();
        assert_eq!(ca.received, cb.received);
    }

    #[test]
    fn run_until_stops_the_clock_at_the_deadline() {
        let mut sim = build(5);
        sim.run_until(SimTime::from_micros(1));
        // The 10ms timer has not fired yet.
        let client: &Client = sim.actor(NodeId(0)).unwrap();
        assert_eq!(client.timer_fired, 0);
        sim.run_for(SimDuration::from_millis(20));
        let client: &Client = sim.actor(NodeId(0)).unwrap();
        assert_eq!(client.timer_fired, 1);
        assert_eq!(
            sim.now(),
            SimTime::from_micros(1) + SimDuration::from_millis(20)
        );
    }

    #[test]
    fn send_to_unregistered_node_is_counted_not_fatal() {
        struct Lost;
        impl Actor<Msg> for Lost {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.send(NodeId(42), Msg::Ping(0));
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
        }
        let mut sim: Sim<Msg> = Sim::new(3);
        sim.add_actor(NodeId(0), Lost);
        sim.run();
        assert_eq!(sim.metrics().counter("sim.no_actor"), 1);
    }

    #[test]
    fn scheduled_net_change_takes_effect() {
        struct Spammer {
            peer: NodeId,
        }
        impl Actor<Msg> for Spammer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: TimerId, _: u64) {
                ctx.send(self.peer, Msg::Ping(0));
                ctx.set_timer(SimDuration::from_millis(1), 0);
            }
        }
        struct Sink {
            got: u32,
        }
        impl Actor<Msg> for Sink {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {
                self.got += 1;
            }
        }
        let mut net = Network::new(LinkSpec::ideal());
        let mut sim = Sim::with_network(7, net.clone());
        sim.add_actor(NodeId(0), Spammer { peer: NodeId(1) });
        sim.add_actor(NodeId(1), Sink { got: 0 });
        // Disconnect the sink from t=5ms.
        sim.schedule_net_change(SimTime::from_millis(5), |n| {
            n.set_connectivity(NodeId(1), crate::net::Connectivity::Disconnected);
        });
        sim.run_until(SimTime::from_millis(10));
        let sink: &Sink = sim.actor(NodeId(1)).unwrap();
        assert!(sink.got >= 4 && sink.got <= 5, "got={}", sink.got);
        assert!(sim.metrics().counter("sim.dropped.Disconnected") >= 4);
        net.heal(); // silence unused-mut lint on the clone
    }

    #[test]
    fn step_nth_reorders_but_keeps_time_monotone() {
        let mut sim: Sim<Msg> = Sim::new(11);
        struct Collector {
            got: Vec<u32>,
        }
        impl Actor<Msg> for Collector {
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, msg: Msg) {
                if let Msg::Ping(n) = msg {
                    self.got.push(n);
                }
            }
        }
        sim.add_actor(NodeId(0), Collector { got: Vec::new() });
        sim.inject(SimTime::from_millis(1), NodeId(9), NodeId(0), Msg::Ping(1));
        sim.inject(SimTime::from_millis(2), NodeId(9), NodeId(0), Msg::Ping(2));
        sim.inject(SimTime::from_millis(3), NodeId(9), NodeId(0), Msg::Ping(3));
        // Drain the Start event first, then deliver out of order: 3, 1, 2.
        assert!(sim.step());
        let pending = sim.pending_events();
        assert_eq!(pending.len(), 3);
        assert!(matches!(
            pending[0],
            PendingEvent::Deliver { to: NodeId(0), .. }
        ));
        assert!(sim.step_nth(2));
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert!(sim.step_nth(0));
        // The overtaken 1ms delivery ran late; the clock did not rewind.
        assert_eq!(sim.now(), SimTime::from_millis(3));
        assert!(sim.step());
        assert!(!sim.step_nth(0), "queue exhausted");
        let c: &Collector = sim.actor(NodeId(0)).unwrap();
        assert_eq!(c.got, vec![3, 1, 2]);
    }

    #[test]
    fn executed_events_carry_seq_identity_and_cause() {
        let mut sim = build(4);
        // Start events were scheduled externally.
        assert!(sim.step());
        let start = sim.last_executed().expect("an event ran");
        assert!(matches!(start.desc, PendingEvent::Start { .. }));
        assert_eq!(start.caused_by, None);
        let start_seq = start.desc.seq();
        // The client's on_start sent Ping(1); that delivery was caused
        // by the start event and keeps its queue seq when surfaced.
        let ping = sim
            .pending_events()
            .into_iter()
            .find(|ev| matches!(ev, PendingEvent::Deliver { .. }))
            .expect("ping in flight");
        sim.run();
        let deliveries: Vec<ExecutedEvent> = {
            // Replaying the same seed, collect every executed event.
            let mut sim = build(4);
            let mut seen = Vec::new();
            while sim.step() {
                seen.extend(sim.last_executed());
            }
            seen
        };
        let ping_exec = deliveries
            .iter()
            .find(|ev| ev.desc.seq() == ping.seq())
            .expect("ping executed");
        assert_eq!(ping_exec.caused_by, Some(start_seq));
        assert_eq!(ping_exec.desc.node(), Some(NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn duplicate_actor_registration_panics() {
        let mut sim: Sim<Msg> = Sim::new(0);
        sim.add_actor(NodeId(0), Server);
        sim.add_actor(NodeId(0), Server);
    }

    #[test]
    fn inject_delivers_external_stimuli() {
        let mut sim: Sim<Msg> = Sim::new(0);
        sim.add_actor(NodeId(1), Server);
        sim.add_actor(NodeId(0), Client::new(NodeId(1)));
        sim.inject(SimTime::from_millis(50), NodeId(9), NodeId(1), Msg::Ping(5));
        sim.run();
        // Server answered the injected ping to node 9 (unregistered).
        assert_eq!(sim.metrics().counter("sim.no_actor"), 1);
    }

    #[test]
    fn event_cap_stops_runaway_protocols() {
        struct LoopBack;
        impl Actor<Msg> for LoopBack {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: NodeId, _: Msg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _: TimerId, _: u64) {
                ctx.set_timer(SimDuration::from_micros(1), 0);
            }
        }
        let mut sim: Sim<Msg> = Sim::new(0);
        sim.set_max_events(1_000);
        sim.add_actor(NodeId(0), LoopBack);
        sim.run();
        assert!(sim.events_processed() <= 1_000);
    }
}
