//! Event queues for the engine: the calendar-queue event wheel
//! (default) and the pre-refactor `BTreeMap` queue (retained for
//! differential testing and as the scale-bench baseline).
//!
//! Both implementations drain events in exactly the same `(time, seq)`
//! total order, so a run is bit-identical regardless of which queue it
//! executes on — the calendar queue only changes *how fast* the order
//! is produced, never the order itself. See DESIGN.md §10 for the
//! determinism argument.

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};

use crate::net::NodeId;
use crate::time::SimTime;

/// Which event-queue implementation a [`crate::sim::Sim`] runs on.
///
/// Selected at construction via
/// [`SimBuilder::queue`](crate::sim::SimBuilder::queue); the default is
/// [`QueueKind::Calendar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// Calendar-queue event wheel: O(1) amortized enqueue/dequeue with
    /// batched same-tick extraction.
    #[default]
    Calendar,
    /// The pre-refactor engine path: a `BTreeMap<(SimTime, seq)>` event
    /// queue and map-indexed actor dispatch. Retained so differential
    /// tests and `campus_rush_hour` can replay identical schedules
    /// through both engines and compare.
    Legacy,
}

/// Payload-independent description of a queued event. Stored alongside
/// each entry so [`crate::sim::Sim::pending_events`] and the lazily
/// armed explorer index can describe events without touching payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EvMeta {
    Start(NodeId),
    Deliver { from: NodeId, to: NodeId },
    Timer(NodeId),
    NetChange,
}

/// One queued event with its total-order key and description.
pub(crate) struct QueueEntry<T> {
    pub time: SimTime,
    pub seq: u64,
    pub meta: EvMeta,
    pub payload: T,
}

const MIN_BUCKETS: usize = 64;
/// Wheel size ceiling. Entries-per-bucket is what the pop path pays
/// (each tick staged out of a bucket rescans it), so the wheel must be
/// allowed to track the pending count into the millions; 2^20 headers
/// (~24 MB) still sit inside a server-class last-level cache, while a
/// bigger wheel turns every insert into a cold miss for little scan
/// relief.
const MAX_BUCKETS: usize = 1 << 20;
const MAX_SHIFT: u32 = 40;
const INITIAL_SHIFT: u32 = 10; // ~1ms buckets until the first resize
/// A pop scan longer than this many buckets counts as "long" — the
/// wheel's width no longer matches the queued distribution.
const LONG_SCAN_BUCKETS: usize = 32;
/// Consecutive long scans before the wheel self-heals with a rebuild
/// (which re-derives the bucket width from the live distribution).
const LONG_SCAN_POPS: u32 = 8;

/// A Brown-style calendar queue over power-of-two buckets.
///
/// Events hash into `buckets[(time >> shift) & mask]`; buckets are
/// unsorted. A pop extracts the *entire* earliest tick (every event
/// sharing the minimal time) into `batch` in one bucket scan, sorts it
/// by `seq` once, and serves subsequent same-tick pops from the front —
/// batched same-tick delivery. Same-tick events enqueued *while* the
/// batch drains append at the back: their `seq` is globally monotone,
/// so front-to-back remains `(time, seq)` order.
///
/// The cursor `cur` is the virtual bucket (`time >> shift`) where the
/// pop scan resumes. Its invariant — no queued event is earlier than
/// `cur`'s tick span — holds even under `step_nth` reordering because
/// every insert asserts `time >= now` upstream and the defensive guard
/// in [`CalendarQueue::insert`] pulls the cursor back otherwise.
pub(crate) struct CalendarQueue<T> {
    buckets: Vec<Vec<QueueEntry<T>>>,
    shift: u32,
    mask: u64,
    /// Total entries, batch included.
    len: usize,
    cur: u64,
    batch: VecDeque<QueueEntry<T>>,
    batch_time: SimTime,
    /// Consecutive pops whose bucket scan exceeded
    /// [`LONG_SCAN_BUCKETS`]; reaching [`LONG_SCAN_POPS`] triggers a
    /// width-re-deriving rebuild.
    long_scans: u32,
    /// Rebuild (grow) when `len` exceeds this — double the population
    /// at the last rebuild, so rebuilds stay geometrically spaced even
    /// when the tick-based wheel size is far below the event count.
    grow_len: usize,
    /// Ordered `(time, seq) -> meta` side index, armed lazily by the
    /// first `pending_events`/`step_nth` call and mirrored on every
    /// insert/remove thereafter. Explorer workloads pay O(log n) per
    /// queue operation for O(k) ordered traversal and O(log n)
    /// arbitrary-rank removal; plain runs never build it.
    index: RefCell<Option<BTreeMap<(SimTime, u64), EvMeta>>>,
}

impl<T> CalendarQueue<T> {
    fn new() -> Self {
        CalendarQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Vec::new()).collect(),
            shift: INITIAL_SHIFT,
            mask: MIN_BUCKETS as u64 - 1,
            len: 0,
            cur: 0,
            batch: VecDeque::new(),
            batch_time: SimTime::ZERO,
            long_scans: 0,
            grow_len: MIN_BUCKETS * 2,
            index: RefCell::new(None),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn insert(&mut self, e: QueueEntry<T>) {
        if let Some(idx) = self.index.get_mut() {
            idx.insert((e.time, e.seq), e.meta);
        }
        self.len += 1;
        if !self.batch.is_empty() && e.time == self.batch_time {
            // Enqueued mid-batch at the batch's own tick: seqs are
            // assigned in enqueue order, so appending keeps the batch
            // sorted.
            debug_assert!(self.batch.back().is_none_or(|b| b.seq < e.seq));
            self.batch.push_back(e);
            return;
        }
        let day = e.time.as_micros() >> self.shift;
        if day < self.cur {
            self.cur = day;
        }
        let b = (day & self.mask) as usize;
        self.buckets[b].push(e);
        // Thresholds count wheel residents only: a staged batch is
        // already extracted, so it must not be able to hold `len` above
        // the grow trigger and re-fire a rebuild on every insert.
        let residents = self.len - self.batch.len();
        if residents > self.grow_len {
            let target = residents
                .saturating_mul(2)
                .next_power_of_two()
                .clamp(MIN_BUCKETS, MAX_BUCKETS);
            if target == self.buckets.len() {
                // Usually the MAX_BUCKETS cap: a rebuild would reshuffle
                // millions of entries into the same wheel size for
                // nothing. Back the trigger off geometrically instead;
                // width pathologies are healed by the long-scan signal.
                self.grow_len = self.grow_len.saturating_mul(2);
            } else {
                self.rebuild();
            }
        }
    }

    /// The earliest tick with a queued (non-staged) event: its time,
    /// its bucket, and how many buckets the scan visited (the width
    /// health signal). Read-only; the caller persists any cursor jump.
    fn find_next_tick(&self) -> Option<(SimTime, usize, usize)> {
        if self.len == self.batch.len() {
            return None;
        }
        let mut day = self.cur;
        for scanned in 0..self.buckets.len() {
            let b = (day & self.mask) as usize;
            let mut best: Option<SimTime> = None;
            for e in &self.buckets[b] {
                if e.time.as_micros() >> self.shift == day && best.is_none_or(|t| e.time < t) {
                    best = Some(e.time);
                }
            }
            if let Some(t) = best {
                return Some((t, b, scanned));
            }
            day = day.wrapping_add(1);
        }
        // Nothing within one full wheel rotation — the horizon is
        // sparse. Scan every bucket once for the global minimum and
        // jump straight there.
        let mut best: Option<SimTime> = None;
        for bucket in &self.buckets {
            for e in bucket {
                if best.is_none_or(|t| e.time < t) {
                    best = Some(e.time);
                }
            }
        }
        let t = best?;
        Some((
            t,
            ((t.as_micros() >> self.shift) & self.mask) as usize,
            2 * self.buckets.len(),
        ))
    }

    /// Moves every event at time `tmin` from bucket `b` into the batch,
    /// sorted by `seq`, and parks the cursor on that tick.
    ///
    /// The extraction preserves bucket order. Buckets are filled by
    /// `push`, and seqs are assigned in enqueue order, so a bucket that
    /// has only ever been pushed to is already seq-sorted — the sort
    /// below then sees sorted input and finishes in one linear run.
    /// Rebuilds and prior stages can scramble residual order, so the
    /// sort stays as the guarantee rather than the common case.
    fn stage(&mut self, tmin: SimTime, b: usize) {
        debug_assert!(self.batch.is_empty());
        let bucket = &mut self.buckets[b];
        for e in bucket.extract_if(.., |e| e.time == tmin) {
            self.batch.push_back(e);
        }
        self.batch.make_contiguous().sort_unstable_by_key(|e| e.seq);
        self.batch_time = tmin;
        self.cur = tmin.as_micros() >> self.shift;
    }

    fn pop_first_at_or_before(&mut self, limit: SimTime) -> Option<QueueEntry<T>> {
        if self.batch.is_empty() {
            let (mut tmin, mut b, scanned) = self.find_next_tick()?;
            if scanned > LONG_SCAN_BUCKETS {
                // The bucket width was tuned for a distribution that no
                // longer matches the queue (e.g. a same-instant burst
                // followed by a wide timer spread). Re-derive it.
                self.long_scans += 1;
                if self.long_scans >= LONG_SCAN_POPS {
                    self.long_scans = 0;
                    self.rebuild();
                    (tmin, b, _) = self.find_next_tick()?;
                }
            } else {
                self.long_scans = 0;
            }
            if tmin > limit {
                return None;
            }
            self.stage(tmin, b);
        } else if self.batch_time > limit {
            return None;
        }
        let e = self.batch.pop_front()?;
        self.len -= 1;
        if let Some(idx) = self.index.get_mut() {
            idx.remove(&(e.time, e.seq));
        }
        Some(e)
    }

    fn peek_key(&self) -> Option<(SimTime, u64)> {
        if let Some(front) = self.batch.front() {
            return Some((front.time, front.seq));
        }
        let (t, b, _) = self.find_next_tick()?;
        let mut best = u64::MAX;
        for e in &self.buckets[b] {
            if e.time == t {
                best = best.min(e.seq);
            }
        }
        Some((t, best))
    }

    fn remove_key(&mut self, time: SimTime, seq: u64) -> Option<QueueEntry<T>> {
        let e = if !self.batch.is_empty() && time == self.batch_time {
            // A stage() moves *every* event at its tick into the batch
            // and later same-tick inserts append there too, so the
            // batch is the only possible home for this key.
            let i = self.batch.iter().position(|e| e.seq == seq)?;
            self.batch.remove(i)?
        } else {
            let b = ((time.as_micros() >> self.shift) & self.mask) as usize;
            let i = self.buckets[b]
                .iter()
                .position(|e| e.time == time && e.seq == seq)?;
            self.buckets[b].swap_remove(i)
        };
        self.len -= 1;
        if let Some(idx) = self.index.get_mut() {
            idx.remove(&(e.time, e.seq));
        }
        Some(e)
    }

    fn remove_nth(&mut self, n: usize) -> Option<QueueEntry<T>> {
        self.arm_index();
        let key = self
            .index
            .borrow()
            .as_ref()
            .and_then(|idx| idx.keys().nth(n).copied())?;
        self.remove_key(key.0, key.1)
    }

    fn arm_index(&self) {
        let mut idx = self.index.borrow_mut();
        if idx.is_some() {
            return;
        }
        let mut map = BTreeMap::new();
        for bucket in &self.buckets {
            for e in bucket {
                map.insert((e.time, e.seq), e.meta);
            }
        }
        for e in &self.batch {
            map.insert((e.time, e.seq), e.meta);
        }
        *idx = Some(map);
    }

    fn for_each_in_order(&self, mut f: impl FnMut(SimTime, u64, EvMeta)) {
        self.arm_index();
        if let Some(idx) = self.index.borrow().as_ref() {
            for (&(time, seq), &meta) in idx {
                f(time, seq, meta);
            }
        }
    }

    /// Re-sizes the wheel to ~2 buckets per event (capped at
    /// [`MAX_BUCKETS`]) and re-derives the bucket width from one
    /// constraint: a single wheel rotation must span the queued
    /// horizon. With the span covering the horizon no bucket ever
    /// mixes events from different rotations, so a stage only scans
    /// its own tick's bucket-neighbours and the pop path stays O(1)
    /// amortized regardless of how events cluster — a 20k-event
    /// aligned tick is one bucket drained in one stage, and a uniform
    /// spread puts ~1 event in each bucket. The horizon is measured at
    /// a sampled 95th percentile so a single far-future straggler
    /// cannot stretch the width and pile the live bulk into a handful
    /// of buckets; the tail past the span wraps and is reconsidered at
    /// the next self-heal rebuild. Rebuilds fire only when the wheel
    /// size would actually change (growth below the cap) or when the
    /// long-scan signal says the width no longer fits the distribution
    /// — a population at the [`MAX_BUCKETS`] cap never pays reshuffles
    /// for further growth, and a draining queue never pays shrink
    /// reshuffles at all. O(n + buckets), amortized against the
    /// doubling that triggered it. Membership is unchanged, so the
    /// explorer index needs no update.
    fn rebuild(&mut self) {
        let n = self.len - self.batch.len();
        let nbuckets = n
            .saturating_mul(2)
            .next_power_of_two()
            .clamp(MIN_BUCKETS, MAX_BUCKETS);
        // First pass, read-only: time bounds plus a strided ~1k sample
        // whose 95th percentile is the horizon the wheel must span. The
        // percentile keeps a single far-future straggler from
        // stretching the width and piling the live bulk into a handful
        // of buckets; the tail past the span wraps and is reconsidered
        // at the next self-heal rebuild.
        let stride = (n / 1024).max(1);
        let mut sample: Vec<u64> = Vec::with_capacity(n.div_ceil(stride));
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        let mut i = 0usize;
        for bucket in &self.buckets {
            for e in bucket {
                let t = e.time.as_micros();
                lo = lo.min(t);
                hi = hi.max(t);
                if i.is_multiple_of(stride) {
                    sample.push(t);
                }
                i += 1;
            }
        }
        // Re-derive the bucket width — but only when the residents
        // actually spread out. A same-instant burst (every actor's
        // Start event at t=0) says nothing about future gaps, and
        // collapsing the width to 1 µs would strand later wide-spread
        // timers across thousands of empty buckets.
        if n >= 2 && hi > lo {
            sample.sort_unstable();
            let s = sample.len();
            let pct95 = sample[s - 1 - s / 20];
            // Fall back to `hi` when the percentile collapses onto `lo`
            // (≥95 % of the queue at one instant): the burst drains in
            // a single stage anyway, so the width should serve whatever
            // is spread behind it.
            let robust_hi = if pct95 > lo { pct95 } else { hi };
            let width = ((robust_hi - lo) / nbuckets as u64).max(1);
            // Round *up* to the next power of two: rounding down would
            // halve the span and wrap the tail ticks onto the head
            // buckets.
            let ceil_log2 = 64 - (width - 1).leading_zeros();
            self.shift = ceil_log2.min(MAX_SHIFT);
        }
        // Second pass: re-scatter into the new wheel bucket by bucket,
        // never materializing the whole population in one flat vector.
        let old = std::mem::replace(
            &mut self.buckets,
            (0..nbuckets).map(|_| Vec::new()).collect(),
        );
        self.mask = nbuckets as u64 - 1;
        self.cur = if n == 0 { 0 } else { lo >> self.shift };
        for bucket in old {
            for e in bucket {
                let b = ((e.time.as_micros() >> self.shift) & self.mask) as usize;
                self.buckets[b].push(e);
            }
        }
        self.grow_len = (n * 2).max(MIN_BUCKETS * 2);
    }
}

/// The engine-facing queue: one API, two implementations, identical
/// drain order.
pub(crate) enum EventQueue<T> {
    Calendar(CalendarQueue<T>),
    Legacy(BTreeMap<(SimTime, u64), (EvMeta, T)>),
}

impl<T> EventQueue<T> {
    pub fn new(kind: QueueKind) -> Self {
        match kind {
            QueueKind::Calendar => EventQueue::Calendar(CalendarQueue::new()),
            QueueKind::Legacy => EventQueue::Legacy(BTreeMap::new()),
        }
    }

    pub fn kind(&self) -> QueueKind {
        match self {
            EventQueue::Calendar(_) => QueueKind::Calendar,
            EventQueue::Legacy(_) => QueueKind::Legacy,
        }
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::Calendar(q) => q.len(),
            EventQueue::Legacy(map) => map.len(),
        }
    }

    pub fn insert(&mut self, time: SimTime, seq: u64, meta: EvMeta, payload: T) {
        match self {
            EventQueue::Calendar(q) => q.insert(QueueEntry {
                time,
                seq,
                meta,
                payload,
            }),
            EventQueue::Legacy(map) => {
                map.insert((time, seq), (meta, payload));
            }
        }
    }

    pub fn pop_first(&mut self) -> Option<QueueEntry<T>> {
        self.pop_first_at_or_before(SimTime::MAX)
    }

    /// Pops the earliest event iff it is due at or before `limit` — the
    /// single-scan primitive behind both `run(Until::Idle)` and the
    /// deadline-bounded runs.
    pub fn pop_first_at_or_before(&mut self, limit: SimTime) -> Option<QueueEntry<T>> {
        match self {
            EventQueue::Calendar(q) => q.pop_first_at_or_before(limit),
            EventQueue::Legacy(map) => {
                let (&(time, _), _) = map.first_key_value()?;
                if time > limit {
                    return None;
                }
                map.pop_first()
                    .map(|((time, seq), (meta, payload))| QueueEntry {
                        time,
                        seq,
                        meta,
                        payload,
                    })
            }
        }
    }

    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        match self {
            EventQueue::Calendar(q) => q.peek_key(),
            EventQueue::Legacy(map) => map.keys().next().copied(),
        }
    }

    /// Removes the `n`-th queued event in `(time, seq)` order.
    pub fn remove_nth(&mut self, n: usize) -> Option<QueueEntry<T>> {
        match self {
            EventQueue::Calendar(q) => q.remove_nth(n),
            EventQueue::Legacy(map) => {
                let key = map.keys().nth(n).copied()?;
                map.remove(&key).map(|(meta, payload)| QueueEntry {
                    time: key.0,
                    seq: key.1,
                    meta,
                    payload,
                })
            }
        }
    }

    /// Visits every queued event's `(time, seq, meta)` in drain order.
    pub fn for_each_in_order(&self, mut f: impl FnMut(SimTime, u64, EvMeta)) {
        match self {
            EventQueue::Calendar(q) => q.for_each_in_order(f),
            EventQueue::Legacy(map) => {
                for (&(time, seq), &(meta, _)) in map.iter() {
                    f(time, seq, meta);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn entry(us: u64, seq: u64) -> (SimTime, u64, EvMeta, u64) {
        (t(us), seq, EvMeta::Timer(NodeId(0)), seq)
    }

    fn drain(q: &mut EventQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop_first() {
            out.push((e.time.as_micros(), e.seq));
        }
        out
    }

    #[test]
    fn calendar_drains_in_time_seq_order() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        let times = [5_000u64, 10, 99_000, 10, 0, 5_000, 1 << 44];
        for (seq, &us) in times.iter().enumerate() {
            let (time, seq, meta, payload) = entry(us, seq as u64);
            q.insert(time, seq, meta, payload);
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, &us)| (us, s as u64))
            .collect();
        expect.sort();
        assert_eq!(drain(&mut q), expect);
    }

    #[test]
    fn calendar_matches_legacy_on_random_workload() {
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut leg = EventQueue::new(QueueKind::Legacy);
        // A deterministic pseudo-random mix of inserts and pops.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut low_water = 0u64; // pops only move forward in time
        for seq in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(seq);
            let us = low_water + (state >> 33) % 1_000_000;
            let (time, s, meta, payload) = entry(us, seq);
            cal.insert(time, s, meta, payload);
            leg.insert(time, s, meta, payload);
            if state & 3 == 0 {
                let a = cal.pop_first().map(|e| (e.time, e.seq, e.payload));
                let b = leg.pop_first().map(|e| (e.time, e.seq, e.payload));
                assert_eq!(a, b);
                if let Some((popped, _, _)) = a {
                    low_water = popped.as_micros();
                }
            }
        }
        assert_eq!(drain(&mut cal), drain(&mut leg));
    }

    #[test]
    fn same_tick_inserts_during_batch_stay_in_seq_order() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        for s in 0..4u64 {
            let (time, seq, meta, payload) = entry(100, s);
            q.insert(time, seq, meta, payload);
        }
        // Pop one: stages the 4-event batch for tick 100.
        let first = q.pop_first().expect("staged");
        assert_eq!((first.time, first.seq), (t(100), 0));
        // Mid-batch, enqueue two more at the same tick.
        for s in 10..12u64 {
            let (time, seq, meta, payload) = entry(100, s);
            q.insert(time, seq, meta, payload);
        }
        let rest: Vec<u64> = std::iter::from_fn(|| q.pop_first().map(|e| e.seq)).collect();
        assert_eq!(rest, vec![1, 2, 3, 10, 11]);
    }

    #[test]
    fn remove_nth_and_ordered_traversal_agree_with_legacy() {
        let mut cal = EventQueue::new(QueueKind::Calendar);
        let mut leg = EventQueue::new(QueueKind::Legacy);
        for (seq, us) in [(0u64, 300u64), (1, 100), (2, 200), (3, 100), (4, 700)] {
            cal.insert(t(us), seq, EvMeta::NetChange, seq);
            leg.insert(t(us), seq, EvMeta::NetChange, seq);
        }
        let mut cal_keys = Vec::new();
        let mut leg_keys = Vec::new();
        cal.for_each_in_order(|time, seq, _| cal_keys.push((time, seq)));
        leg.for_each_in_order(|time, seq, _| leg_keys.push((time, seq)));
        assert_eq!(cal_keys, leg_keys);
        // Remove the 2nd-smallest from both; drains must still agree.
        let a = cal.remove_nth(2).expect("in range");
        let b = leg.remove_nth(2).expect("in range");
        assert_eq!((a.time, a.seq), (b.time, b.seq));
        assert!(cal.remove_nth(9).is_none());
        assert!(leg.remove_nth(9).is_none());
        assert_eq!(drain(&mut cal), drain(&mut leg));
    }

    #[test]
    fn index_stays_consistent_across_inserts_after_arming() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        for s in 0..8u64 {
            q.insert(t(s * 10), s, EvMeta::NetChange, s);
        }
        // Arm the index, then keep inserting and popping through it.
        let mut seen = Vec::new();
        q.for_each_in_order(|_, seq, _| seen.push(seq));
        assert_eq!(seen.len(), 8);
        q.insert(t(5), 100, EvMeta::NetChange, 100);
        let first = q.pop_first().expect("nonempty");
        assert_eq!(first.seq, 0, "t=0 precedes the late t=5 insert");
        let mut after = Vec::new();
        q.for_each_in_order(|_, seq, _| after.push(seq));
        assert_eq!(after[0], 100, "armed index saw the new insert");
        assert_eq!(after.len(), 8);
    }

    #[test]
    fn wheel_resizes_through_growth_and_drain() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        // Far beyond the initial 64 buckets, with a huge time span to
        // force a width re-derivation too.
        let n = 10_000u64;
        for s in 0..n {
            let us = (s * 7_919) % 50_000_000;
            q.insert(t(us), s, EvMeta::NetChange, s);
        }
        assert_eq!(q.len(), n as usize);
        let drained = drain(&mut q);
        assert_eq!(drained.len(), n as usize);
        assert!(drained.windows(2).all(|w| w[0] <= w[1]), "sorted drain");
    }

    #[test]
    fn sparse_far_future_events_are_found() {
        let mut q = EventQueue::new(QueueKind::Calendar);
        q.insert(t(0), 0, EvMeta::NetChange, 0);
        // A full wheel rotation away at the initial width.
        q.insert(t(1 << 30), 1, EvMeta::NetChange, 1);
        q.insert(t(1 << 50), 2, EvMeta::NetChange, 2);
        assert_eq!(drain(&mut q), vec![(0, 0), (1 << 30, 1), (1 << 50, 2)]);
    }

    #[test]
    fn deadline_bounded_pop_leaves_later_events() {
        for kind in [QueueKind::Calendar, QueueKind::Legacy] {
            let mut q = EventQueue::new(kind);
            q.insert(t(10), 0, EvMeta::NetChange, 0);
            q.insert(t(20), 1, EvMeta::NetChange, 1);
            assert!(q.pop_first_at_or_before(t(5)).is_none());
            assert_eq!(q.pop_first_at_or_before(t(10)).map(|e| e.seq), Some(0));
            assert!(q.pop_first_at_or_before(t(15)).is_none());
            assert_eq!(q.len(), 1);
            assert_eq!(q.peek_key(), Some((t(20), 1)));
        }
    }
}
