//! The actor programming model: protocol state machines driven by
//! messages and timers.

use std::fmt;

use crate::metrics::MetricsRegistry;
use crate::net::NodeId;
use crate::rng::DetRng;
use crate::time::{SimDuration, SimTime};
use crate::trace::Trace;

/// Identifies a pending timer, for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub(crate) u64);

impl TimerId {
    /// Reconstructs a timer id from its raw counter value. Intended for
    /// alternative transport backends (e.g. `odp-net`'s TCP driver)
    /// that run their own timer wheel but hand actors the same handle
    /// type; sim code never needs this.
    pub fn from_raw(raw: u64) -> Self {
        TimerId(raw)
    }

    /// The raw counter value behind this id.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for TimerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timer#{}", self.0)
    }
}

/// A protocol participant hosted on one simulated node.
///
/// Implementations are plain state machines: all effects (sending,
/// scheduling) go through the [`Ctx`] handed to each callback, which keeps
/// the run deterministic.
///
/// # Examples
///
/// ```
/// use odp_sim::prelude::*;
///
/// struct Echo;
/// impl Actor<String> for Echo {
///     fn on_message(&mut self, ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
///         ctx.send(from, msg);
///     }
/// }
/// ```
pub trait Actor<M> {
    /// Called once when the simulation starts (before any message).
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered to this actor.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeId, msg: M);

    /// Called when a timer set by this actor fires. `tag` is the value
    /// passed to [`Ctx::set_timer`].
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }
}

/// A deferred effect produced by an actor callback; applied by the engine
/// after the callback returns.
#[derive(Debug)]
pub(crate) enum Effect<M> {
    Send { to: NodeId, msg: M, bytes: usize },
    SetTimer { id: TimerId, at: SimTime, tag: u64 },
    CancelTimer(TimerId),
}

/// The capability handle given to actor callbacks: read the clock, send
/// messages, set timers, record metrics and trace events.
pub struct Ctx<'a, M> {
    pub(crate) now: SimTime,
    pub(crate) id: NodeId,
    pub(crate) rng: &'a mut DetRng,
    pub(crate) effects: &'a mut Vec<Effect<M>>,
    pub(crate) metrics: &'a mut MetricsRegistry,
    pub(crate) trace: &'a mut Trace,
    pub(crate) next_timer: &'a mut u64,
    pub(crate) default_msg_bytes: usize,
}

impl<'a, M> Ctx<'a, M> {
    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This actor's node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This actor's private deterministic RNG.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` to `to` with the engine's default wire size.
    pub fn send(&mut self, to: NodeId, msg: M) {
        let bytes = self.default_msg_bytes;
        self.send_sized(to, msg, bytes);
    }

    /// Sends `msg` to `to` accounting for `bytes` on the wire (drives the
    /// bandwidth model; continuous-media senders use real frame sizes).
    pub fn send_sized(&mut self, to: NodeId, msg: M, bytes: usize) {
        self.effects.push(Effect::Send { to, msg, bytes });
    }

    /// Sends the same message to every node in `to` (cloned per receiver).
    pub fn send_all(&mut self, to: impl IntoIterator<Item = NodeId>, msg: M)
    where
        M: Clone,
    {
        for node in to {
            self.send(node, msg.clone());
        }
    }

    /// Schedules [`Actor::on_timer`] to fire after `delay` with `tag`.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.effects.push(Effect::SetTimer {
            id,
            at: self.now + delay,
            tag,
        });
        id
    }

    /// Cancels a pending timer; firing of an already-cancelled or already-
    /// fired timer is silently suppressed.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.effects.push(Effect::CancelTimer(id));
    }

    /// The run-wide metrics registry.
    pub fn metrics(&mut self) -> &mut MetricsRegistry {
        self.metrics
    }

    /// Records a labelled trace event attributed to this actor.
    pub fn trace(&mut self, label: impl Into<String>, data: impl Into<String>) {
        self.trace.record(self.now, self.id, label, data);
    }

    /// Records a telemetry span opening into the binary span log — the
    /// allocation-free fast path telemetry instrumentation uses instead
    /// of hex-string trace events.
    pub fn span_open(&mut self, span: odp_fabric::SpanCarrier, kind: &str) {
        self.trace.span_open(self.now, self.id, span, kind);
    }

    /// Records a telemetry span closing into the binary span log.
    pub fn span_close(&mut self, span: odp_fabric::SpanCarrier) {
        self.trace.span_close(self.now, self.id, span);
    }
}
