//! Topology builders: convenient ways to lay common network shapes onto
//! a [`Network`] — multi-site organisations (the paper's "different
//! departments, sections or even organisations"), stars around a server,
//! and full meshes.

use crate::net::{LinkSpec, Network, NodeId};

/// A named group of co-located nodes.
#[derive(Debug, Clone)]
pub struct Site {
    /// A label for diagnostics.
    pub name: String,
    /// The nodes at this site.
    pub nodes: Vec<NodeId>,
}

impl Site {
    /// Creates a site.
    pub fn new(name: impl Into<String>, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        Site {
            name: name.into(),
            nodes: nodes.into_iter().collect(),
        }
    }
}

/// Applies a multi-site topology: `intra` links within each site, and
/// `inter(a, b)` links between nodes of site `a` and site `b` (indices
/// into `sites`). Typical use: LAN inside, WAN between.
pub fn sites(
    net: &mut Network,
    sites: &[Site],
    intra: LinkSpec,
    inter: impl Fn(usize, usize) -> LinkSpec,
) {
    for (i, site) in sites.iter().enumerate() {
        for (k, &a) in site.nodes.iter().enumerate() {
            for &b in &site.nodes[k + 1..] {
                net.set_link(a, b, intra);
            }
        }
        for (j, other) in sites.iter().enumerate().skip(i + 1) {
            let spec = inter(i, j);
            for &a in &site.nodes {
                for &b in &other.nodes {
                    net.set_link(a, b, spec);
                }
            }
        }
    }
}

/// Applies a star topology: every leaf connects to `hub` with `spoke`;
/// leaf-to-leaf traffic gets `leaf_to_leaf` (usually ~2× the spoke, as
/// if routed through the hub).
pub fn star(
    net: &mut Network,
    hub: NodeId,
    leaves: &[NodeId],
    spoke: LinkSpec,
    leaf_to_leaf: LinkSpec,
) {
    for &leaf in leaves {
        net.set_link(hub, leaf, spoke);
    }
    for (i, &a) in leaves.iter().enumerate() {
        for &b in &leaves[i + 1..] {
            net.set_link(a, b, leaf_to_leaf);
        }
    }
}

/// Applies a uniform full mesh over `nodes`.
pub fn full_mesh(net: &mut Network, nodes: &[NodeId], spec: LinkSpec) {
    for (i, &a) in nodes.iter().enumerate() {
        for &b in &nodes[i + 1..] {
            net.set_link(a, b, spec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn nodes(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId).collect()
    }

    #[test]
    fn sites_apply_intra_and_inter_links() {
        let mut net = Network::new(LinkSpec::ideal());
        let lancaster = Site::new("lancaster", nodes(0..2));
        let paris = Site::new("paris", nodes(2..4));
        let wan = LinkSpec::wan(SimDuration::from_millis(30));
        sites(&mut net, &[lancaster, paris], LinkSpec::lan(), |_, _| wan);
        assert_eq!(
            net.link(NodeId(0), NodeId(1)).latency,
            LinkSpec::lan().latency
        );
        assert_eq!(
            net.link(NodeId(2), NodeId(3)).latency,
            LinkSpec::lan().latency
        );
        assert_eq!(net.link(NodeId(0), NodeId(3)).latency, wan.latency);
        assert_eq!(
            net.link(NodeId(3), NodeId(0)).latency,
            wan.latency,
            "symmetric"
        );
    }

    #[test]
    fn site_pairs_can_differ() {
        let mut net = Network::new(LinkSpec::ideal());
        let s: Vec<Site> = (0..3)
            .map(|i| Site::new(format!("s{i}"), nodes(i * 2..i * 2 + 2)))
            .collect();
        sites(&mut net, &s, LinkSpec::lan(), |a, b| {
            LinkSpec::wan(SimDuration::from_millis(10 * (a + b) as u64))
        });
        assert_eq!(
            net.link(NodeId(0), NodeId(2)).latency,
            SimDuration::from_millis(10) // sites 0-1
        );
        assert_eq!(
            net.link(NodeId(2), NodeId(4)).latency,
            SimDuration::from_millis(30) // sites 1-2
        );
    }

    #[test]
    fn star_routes_leaves_through_the_hub() {
        let mut net = Network::new(LinkSpec::ideal());
        let spoke = LinkSpec::wan(SimDuration::from_millis(10));
        let double = LinkSpec::wan(SimDuration::from_millis(20));
        star(&mut net, NodeId(0), &nodes(1..4), spoke, double);
        assert_eq!(net.link(NodeId(0), NodeId(2)).latency, spoke.latency);
        assert_eq!(net.link(NodeId(1), NodeId(3)).latency, double.latency);
    }

    #[test]
    fn full_mesh_is_uniform() {
        let mut net = Network::new(LinkSpec::ideal());
        let spec = LinkSpec::wan(SimDuration::from_millis(5));
        full_mesh(&mut net, &nodes(0..4), spec);
        for a in 0..4u32 {
            for b in 0..4u32 {
                if a != b {
                    assert_eq!(net.link(NodeId(a), NodeId(b)).latency, spec.latency);
                }
            }
        }
    }
}
