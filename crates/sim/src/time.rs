//! Virtual time for the discrete-event simulator.
//!
//! Simulated time is measured in integer **microseconds** from the start of
//! the run. Using integers keeps the simulator deterministic (no floating
//! point drift) and makes event ordering total.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, in microseconds since the simulation epoch.
///
/// # Examples
///
/// ```
/// use odp_sim::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_micros(), 5_000);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// # Examples
///
/// ```
/// use odp_sim::time::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_micros(), 2_500);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Returns the number of microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the number of whole milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the time since the epoch as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the duration elapsed since `earlier`, saturating at zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns `self + d`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Returns the length of this duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the length of this duration in whole milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the length as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a dimensionless factor, rounding to the
    /// nearest microsecond and saturating on overflow.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "duration factor must be non-negative");
        let scaled = (self.0 as f64 * factor).round();
        if scaled >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(scaled as u64)
        }
    }

    /// Returns true if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let us = self.0;
        if us >= 1_000_000 && us.is_multiple_of(1_000_000) {
            write!(f, "{}s", us / 1_000_000)
        } else if us >= 1_000 && us.is_multiple_of(1_000) {
            write!(f, "{}ms", us / 1_000)
        } else {
            write!(f, "{}us", us)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_millis(10);
        let d = SimDuration::from_micros(250);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(1_500_000).as_secs_f64(), 1.5);
    }

    #[test]
    fn saturating_ops_do_not_panic() {
        assert_eq!(
            SimTime::ZERO.saturating_since(SimTime::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_micros(1).saturating_sub(SimDuration::from_micros(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn mul_f64_rounds_and_saturates() {
        assert_eq!(
            SimDuration::from_micros(100).mul_f64(1.5),
            SimDuration::from_micros(150)
        );
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
        assert_eq!(SimDuration::from_micros(3).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn display_uses_natural_units() {
        assert_eq!(SimDuration::from_secs(2).to_string(), "2s");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(SimTime::from_millis(5).to_string(), "t+5ms");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_micros(10),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(10),
                SimTime::from_millis(3)
            ]
        );
    }
}
