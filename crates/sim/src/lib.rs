#![warn(missing_docs)]

//! # odp-sim — deterministic discrete-event simulation substrate
//!
//! The engineering-viewpoint substrate for the CSCW/ODP middleware
//! reproduction (Blair & Rodden, 1993). Every protocol in the workspace —
//! group multicast, cooperative concurrency control, QoS-managed streams,
//! mobile hosts — runs as [`actor::Actor`] state machines inside a
//! [`sim::Sim`], over a configurable [`net::Network`] with latency, jitter,
//! bandwidth, loss, partitions and per-node connectivity levels.
//!
//! Determinism is the design centre: a run is a pure function of its
//! configuration and seed, so every derived experiment in the evaluation
//! suite is exactly reproducible.
//!
//! ## Quick start
//!
//! ```
//! use odp_sim::prelude::*;
//!
//! struct Greeter { peer: NodeId }
//! impl Actor<String> for Greeter {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, String>) {
//!         ctx.send(self.peer, "hello".to_owned());
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
//!         ctx.trace("received", format!("{msg} from {from}"));
//!     }
//! }
//!
//! let mut sim = SimBuilder::new(7).build();
//! sim.add_actor(NodeId(0), Greeter { peer: NodeId(1) });
//! sim.add_actor(NodeId(1), Greeter { peer: NodeId(0) });
//! assert_eq!(sim.run(Until::Idle), RunOutcome::Quiesced);
//! assert_eq!(sim.trace().with_label("received").count(), 2);
//! ```

pub mod actor;
pub mod metrics;
pub mod net;
mod queue;
pub mod rng;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use crate::actor::{Actor, Ctx, TimerId};
    pub use crate::metrics::{Histogram, MetricsRegistry, Summary};
    pub use crate::net::{Connectivity, DropReason, LinkSpec, Network, NodeId, Verdict};
    pub use crate::rng::DetRng;
    pub use crate::sim::{
        ActorHandle, ExecutedEvent, PendingEvent, QueueKind, RunOutcome, Sim, SimBuilder, Until,
    };
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{Trace, TraceEvent};
}

pub use prelude::*;
