//! Deterministic random number generation for simulations.
//!
//! Every stochastic decision in the simulator (jitter, loss, workload
//! arrival) draws from a [`DetRng`] seeded explicitly, so that a run is a
//! pure function of its configuration and seed.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random number generator for simulation use.
///
/// Wraps a seeded [`SmallRng`] and adds simulation-flavoured helpers
/// (jitter sampling, Bernoulli trials, exponential inter-arrival times).
///
/// # Examples
///
/// ```
/// use odp_sim::rng::DetRng;
///
/// let mut a = DetRng::seed_from(42);
/// let mut b = DetRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator; used to give each actor its
    /// own stream so actor-local draws do not perturb each other.
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from(self.next_u64())
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Returns a uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Bernoulli trial: returns true with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Samples symmetric uniform jitter in `[-max_jitter, +max_jitter]` and
    /// applies it to `base`, saturating at zero.
    pub fn jittered(&mut self, base: SimDuration, max_jitter: SimDuration) -> SimDuration {
        if max_jitter.is_zero() {
            return base;
        }
        let span = max_jitter.as_micros();
        let offset = self.range_u64(0, 2 * span + 1) as i64 - span as i64;
        let value = base.as_micros() as i64 + offset;
        SimDuration::from_micros(value.max(0) as u64)
    }

    /// Samples an exponentially distributed duration with the given mean;
    /// useful for Poisson arrival processes in workload generators.
    pub fn exponential(&mut self, mean: SimDuration) -> SimDuration {
        // Inverse-CDF sampling; clamp u away from 0 to avoid ln(0).
        let u = self.unit_f64().max(1e-12);
        let sample = -(u.ln()) * mean.as_micros() as f64;
        SimDuration::from_micros(sample.min(u64::MAX as f64 / 2.0) as u64)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(7);
        let mut b = DetRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_are_deterministic_and_distinct() {
        let mut root1 = DetRng::seed_from(1);
        let mut root2 = DetRng::seed_from(1);
        let mut c1 = root1.fork();
        let mut c2 = root2.fork();
        assert_eq!(c1.next_u64(), c2.next_u64());
        let mut sibling = root1.fork();
        assert_ne!(c1.next_u64(), sibling.next_u64());
    }

    #[test]
    fn chance_handles_extremes() {
        let mut r = DetRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn jitter_stays_within_bounds() {
        let mut r = DetRng::seed_from(11);
        let base = SimDuration::from_micros(1_000);
        let jit = SimDuration::from_micros(200);
        for _ in 0..1_000 {
            let d = r.jittered(base, jit);
            assert!(d.as_micros() >= 800 && d.as_micros() <= 1_200, "{d}");
        }
    }

    #[test]
    fn jitter_saturates_at_zero() {
        let mut r = DetRng::seed_from(13);
        let base = SimDuration::from_micros(10);
        let jit = SimDuration::from_micros(1_000);
        for _ in 0..1_000 {
            let _ = r.jittered(base, jit); // must not underflow / panic
        }
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut r = DetRng::seed_from(17);
        let mean = SimDuration::from_micros(10_000);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_micros()).sum();
        let observed = total as f64 / n as f64;
        assert!(
            (observed - 10_000.0).abs() < 500.0,
            "observed mean {observed}"
        );
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = DetRng::seed_from(19);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
