//! Property tests for QoS negotiation and media playout.

use odp_sim::net::Connectivity;
use odp_sim::time::{SimDuration, SimTime};
use odp_streams::media::{Frame, FrameFate, MediaKind, MediaSink, StreamId};
use odp_streams::qos::{negotiate, NegotiationOutcome, QosSpec};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = QosSpec> {
    (1u32..120, 1u64..2_000, 0u64..500, 0.0f64..0.5).prop_map(|(fps, lat, jit, loss)| QosSpec {
        throughput_fps: fps,
        latency_bound: SimDuration::from_millis(lat),
        jitter_bound: SimDuration::from_millis(jit),
        loss_bound: loss,
        min_connectivity: Connectivity::Full,
    })
}

proptest! {
    /// `satisfies` is reflexive and transitive.
    #[test]
    fn satisfies_is_a_preorder(a in arb_spec(), b in arb_spec(), c in arb_spec()) {
        prop_assert!(a.satisfies(&a));
        if a.satisfies(&b) && b.satisfies(&c) {
            prop_assert!(a.satisfies(&c));
        }
    }

    /// Negotiation soundness: an agreed contract is always satisfiable by
    /// the offer and never stronger than the requirement.
    #[test]
    fn negotiation_is_sound(offer in arb_spec(), required in arb_spec()) {
        match negotiate(&offer, &required) {
            NegotiationOutcome::Agreed(spec) => {
                prop_assert!(offer.satisfies(&spec), "offer must meet what it agreed to");
                prop_assert!(required.satisfies(&spec) || spec == required,
                    "agreement never promises more than asked");
            }
            NegotiationOutcome::BestEffortOnly(best) => {
                prop_assert_eq!(best, offer);
            }
        }
    }

    /// Degradation is monotone: every rung of the ladder is weaker.
    #[test]
    fn degradation_is_monotone(spec in arb_spec()) {
        let mut current = spec;
        let mut steps = 0;
        while let Some(next) = current.degraded() {
            prop_assert!(current.satisfies(&next), "each rung is weaker");
            prop_assert!(next.throughput_fps <= current.throughput_fps);
            current = next;
            steps += 1;
            prop_assert!(steps < 64, "ladder terminates");
        }
        prop_assert_eq!(current.throughput_fps, 1);
    }

    /// Playout accounting: played + late + lost equals the frames whose
    /// slots were resolved, and integrity is their played fraction.
    #[test]
    fn sink_accounting_is_complete(
        deliveries in prop::collection::vec((0u64..30, 0u64..400), 1..40),
    ) {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        let mut sorted = deliveries.clone();
        sorted.sort_by_key(|&(seq, extra)| seq * 40 + 10 + extra);
        let mut seen = std::collections::BTreeSet::new();
        for (seq, extra_delay) in sorted {
            if !seen.insert(seq) {
                continue; // each frame arrives once
            }
            let captured = SimTime::from_millis(seq * 40);
            let arrival = captured + SimDuration::from_millis(10 + extra_delay);
            sink.arrive(
                Frame {
                    stream: StreamId(0),
                    seq,
                    kind: MediaKind::Video,
                    captured,
                    bytes: 100,
                    span: None,
                },
                arrival,
            );
            sink.play_until(arrival);
        }
        sink.play_until(SimTime::from_secs(3600));
        let (played, late, lost) = sink.tallies();
        let resolved = sink.records().len() as u64;
        prop_assert_eq!(played + late + lost, resolved);
        let integrity = sink.integrity();
        prop_assert!((0.0..=1.0).contains(&integrity));
        if lost == 0 && late == 0 && played > 0 {
            prop_assert_eq!(integrity, 1.0);
        }
        // Frames delivered within the playout budget are never Late.
        for r in sink.records() {
            if let (FrameFate::Late, Some(d)) = (r.fate, r.delay) {
                prop_assert!(d > SimDuration::from_millis(100),
                    "late frame {} had delay {d}", r.seq);
            }
        }
    }
}
