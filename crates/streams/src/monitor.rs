//! End-to-end QoS monitoring: sliding-window measurement of a stream
//! against its contract, emitting violations when the contract breaks —
//! the paper's "end-to-end monitoring of QoS so that the application can
//! be informed if degradations occur".

use std::collections::VecDeque;

use odp_sim::net::Connectivity;
use odp_sim::time::{SimDuration, SimTime};

use crate::media::{FrameFate, PlayoutRecord};
use crate::qos::{QosSpec, ViolationKind};

/// A detected contract violation.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which bound broke.
    pub kind: ViolationKind,
    /// When it was detected.
    pub at: SimTime,
    /// Measured value, in the unit of the bound (fps / us / us / fraction).
    pub measured: f64,
    /// The contract value it exceeded or undercut.
    pub bound: f64,
}

/// Sliding-window QoS monitor for one stream.
///
/// # Examples
///
/// ```
/// use odp_streams::monitor::QosMonitor;
/// use odp_streams::qos::QosSpec;
/// use odp_sim::time::SimDuration;
///
/// let m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
/// assert_eq!(m.contract().throughput_fps, 25);
/// ```
#[derive(Debug, Clone)]
pub struct QosMonitor {
    contract: QosSpec,
    window: SimDuration,
    /// `(playout time, record)` within the window.
    recent: VecDeque<(SimTime, PlayoutRecord)>,
    violations: u64,
    /// Suppress duplicate reports until the stream recovers.
    in_violation: bool,
    /// Time of the first observation — no judgement until a full window
    /// has elapsed from here (warm-up).
    started: Option<SimTime>,
    /// The host's current connectivity (mobile sinks): judgement pauses
    /// below the contract's accepted level (§4.2.2: "quality of service
    /// requests [should] specify accepted levels of disconnection").
    connectivity: Connectivity,
}

impl QosMonitor {
    /// Creates a monitor for `contract` measuring over `window`.
    pub fn new(contract: QosSpec, window: SimDuration) -> Self {
        QosMonitor {
            contract,
            window,
            recent: VecDeque::new(),
            violations: 0,
            in_violation: false,
            started: None,
            connectivity: Connectivity::Full,
        }
    }

    /// Updates the host's connectivity level; while it is below the
    /// contract's `min_connectivity`, no violations are reported (the
    /// degradation is *accepted*, per the contract).
    pub fn set_connectivity(&mut self, level: Connectivity) {
        self.connectivity = level;
    }

    /// True while the stream is in a latched violation.
    pub fn is_in_violation(&self) -> bool {
        self.in_violation
    }

    /// The contract being monitored.
    pub fn contract(&self) -> &QosSpec {
        &self.contract
    }

    /// Replaces the contract (after re-negotiation) and clears the
    /// violation latch. Re-announcements of the unchanged contract (the
    /// source's soft-state beacon) are idempotent — they do not clear
    /// the latch, so sustained violations are not masked.
    pub fn set_contract(&mut self, contract: QosSpec) {
        if self.contract != contract {
            self.contract = contract;
            self.in_violation = false;
        }
    }

    /// Total violations reported.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// Feeds playout records at time `now`; returns at most one new
    /// violation (further reports are latched until recovery).
    pub fn observe(&mut self, records: &[PlayoutRecord], now: SimTime) -> Option<Violation> {
        // The warm-up clock starts at the first actual record, not the
        // first (possibly empty) observation.
        if !records.is_empty() {
            self.started.get_or_insert(now);
        }
        let started = self.started?;
        for &r in records {
            self.recent.push_back((now, r));
        }
        let window = self.effective_window();
        let horizon = if now.as_micros() > window.as_micros() {
            now - window
        } else {
            SimTime::ZERO
        };
        while let Some(&(t, _)) = self.recent.front() {
            if t < horizon {
                self.recent.pop_front();
            } else {
                break;
            }
        }
        // Judge only after a full (rate-adjusted) window has elapsed since
        // the first record. The effective window never spans fewer than
        // ~3 frame intervals of the contract, so low-rate contracts
        // (e.g. 1 fps after heavy re-negotiation) are still judgeable and
        // a momentarily empty window is not a false stall.
        if now.saturating_since(started) < self.effective_window() {
            return None;
        }
        // Accepted disconnection: below the contract's connectivity floor
        // the contract is suspended, not violated.
        if rank(self.connectivity) < rank(self.contract.min_connectivity) {
            return None;
        }
        let violation = self.current_violation(now);
        match violation {
            Some(v) if !self.in_violation => {
                self.in_violation = true;
                self.violations += 1;
                Some(v)
            }
            Some(_) => None, // latched
            None => {
                self.in_violation = false;
                None
            }
        }
    }

    /// The measurement window, widened so it always spans at least ~3
    /// frame intervals of the current contract.
    fn effective_window(&self) -> SimDuration {
        let three_frames =
            SimDuration::from_micros(3_000_000 / self.contract.throughput_fps.max(1) as u64);
        self.window.max(three_frames)
    }

    fn current_violation(&self, now: SimTime) -> Option<Violation> {
        let total = self.recent.len() as f64;
        // Throughput: played frames per second over the window. An empty
        // window is a stalled stream: zero throughput.
        let played: Vec<SimDuration> = self
            .recent
            .iter()
            .filter(|(_, r)| r.fate == FrameFate::Played)
            .filter_map(|(_, r)| r.delay)
            .collect();
        let fps = played.len() as f64 / self.effective_window().as_secs_f64();
        if fps < self.contract.throughput_fps as f64 * 0.9 {
            return Some(Violation {
                kind: ViolationKind::Throughput,
                at: now,
                measured: fps,
                bound: self.contract.throughput_fps as f64,
            });
        }
        // Loss: late + lost fraction (vacuously zero on an empty window;
        // the throughput check above already covers total stalls).
        let bad = self
            .recent
            .iter()
            .filter(|(_, r)| r.fate != FrameFate::Played)
            .count() as f64;
        let loss = if total == 0.0 { 0.0 } else { bad / total };
        if loss > self.contract.loss_bound {
            return Some(Violation {
                kind: ViolationKind::Loss,
                at: now,
                measured: loss,
                bound: self.contract.loss_bound,
            });
        }
        // Latency: mean delay of played frames.
        if !played.is_empty() {
            let mean_us =
                played.iter().map(|d| d.as_micros() as f64).sum::<f64>() / played.len() as f64;
            if mean_us > self.contract.latency_bound.as_micros() as f64 {
                return Some(Violation {
                    kind: ViolationKind::Latency,
                    at: now,
                    measured: mean_us,
                    bound: self.contract.latency_bound.as_micros() as f64,
                });
            }
            // Jitter: standard deviation of delays.
            if played.len() >= 2 {
                let var = played
                    .iter()
                    .map(|d| {
                        let x = d.as_micros() as f64 - mean_us;
                        x * x
                    })
                    .sum::<f64>()
                    / (played.len() as f64 - 1.0);
                let sd = var.sqrt();
                if sd > self.contract.jitter_bound.as_micros() as f64 {
                    return Some(Violation {
                        kind: ViolationKind::Jitter,
                        at: now,
                        measured: sd,
                        bound: self.contract.jitter_bound.as_micros() as f64,
                    });
                }
            }
        }
        None
    }
}

/// Orders connectivity levels for the accepted-disconnection check.
fn rank(level: Connectivity) -> u8 {
    match level {
        Connectivity::Disconnected => 0,
        Connectivity::Partial => 1,
        Connectivity::Full => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn played(seq: u64, delay_ms: u64) -> PlayoutRecord {
        PlayoutRecord {
            seq,
            fate: FrameFate::Played,
            delay: Some(SimDuration::from_millis(delay_ms)),
        }
    }

    fn lost(seq: u64) -> PlayoutRecord {
        PlayoutRecord {
            seq,
            fate: FrameFate::Lost,
            delay: None,
        }
    }

    fn feed_steady_from(
        m: &mut QosMonitor,
        start_ms: u64,
        n: u64,
        delay_ms: u64,
        step_ms: u64,
    ) -> Vec<Violation> {
        let mut out = Vec::new();
        for i in 0..n {
            let t = SimTime::from_millis(start_ms + i * step_ms);
            if let Some(v) = m.observe(&[played(i, delay_ms)], t) {
                out.push(v);
            }
        }
        out
    }

    #[test]
    fn healthy_stream_reports_nothing() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        let v = feed_steady_from(&mut m, 0, 50, 50, 40);
        assert!(v.is_empty(), "{v:?}");
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn excess_latency_is_detected() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        let v = feed_steady_from(&mut m, 0, 50, 400, 40);
        assert_eq!(v.len(), 1, "latched after the first report: {v:?}");
        assert_eq!(v[0].kind, ViolationKind::Latency);
        assert!(v[0].measured > v[0].bound);
    }

    #[test]
    fn loss_is_detected() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        let mut hits = Vec::new();
        for i in 0..50u64 {
            let t = SimTime::from_millis(1_000 + i * 40);
            let rec = if i % 3 == 0 { lost(i) } else { played(i, 50) };
            if let Some(v) = m.observe(&[rec], t) {
                hits.push(v);
            }
        }
        assert!(!hits.is_empty());
        // Heavy loss also drags throughput down; either report is valid.
        assert!(matches!(
            hits[0].kind,
            ViolationKind::Loss | ViolationKind::Throughput
        ));
    }

    #[test]
    fn recovery_unlatches_future_reports() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        assert_eq!(feed_steady_from(&mut m, 0, 50, 400, 40).len(), 1);
        // Recover: healthy delays flush the window.
        let mut t = 3_000u64;
        for i in 100..160u64 {
            m.observe(&[played(i, 40)], SimTime::from_millis(t));
            t += 40;
        }
        assert_eq!(m.violations(), 1);
        // Degrade again: a second report fires.
        let mut hits = 0;
        for i in 200..260u64 {
            if m.observe(&[played(i, 400)], SimTime::from_millis(t))
                .is_some()
            {
                hits += 1;
            }
            t += 40;
        }
        assert_eq!(hits, 1);
        assert_eq!(m.violations(), 2);
    }

    #[test]
    fn renegotiated_contract_accepts_the_degraded_stream() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        assert_eq!(feed_steady_from(&mut m, 0, 50, 400, 40).len(), 1);
        m.set_contract(QosSpec::mobile_video());
        // 400 ms delay at 25 fps satisfies the 500 ms mobile contract.
        let v = feed_steady_from(&mut m, 0, 50, 400, 40);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn accepted_disconnection_suspends_judgement() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        m.set_connectivity(Connectivity::Partial);
        // Terrible delays, but the host is below the contract's floor:
        // nothing is reported.
        let v = feed_steady_from(&mut m, 0, 50, 900, 40);
        assert!(v.is_empty(), "{v:?}");
        // Back at full connectivity the contract re-engages.
        m.set_connectivity(Connectivity::Full);
        let v2 = feed_steady_from(&mut m, 3_000, 50, 900, 40);
        assert_eq!(v2.len(), 1);
    }

    #[test]
    fn needs_a_minimum_sample_before_judging() {
        let mut m = QosMonitor::new(QosSpec::video(), SimDuration::from_secs(1));
        // Only 3 records, all terrible — too few to judge.
        for i in 0..3 {
            assert!(m
                .observe(&[played(i, 5_000)], SimTime::from_millis(2_000 + i * 40))
                .is_none());
        }
    }
}
