//! Continuous-media primitives: frames, sources and playout sinks.
//!
//! "The most fundamental characteristic of multimedia systems is that
//! they incorporate continuous media ... If the required rate of
//! presentation is not met, the integrity of these media is destroyed"
//! (§4.2.2 i). Sources generate frames at a fixed rate; sinks play them
//! out behind a fixed playout delay, counting every frame as played,
//! late, or lost — the integrity measure.

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::time::{SimDuration, SimTime};
use odp_telemetry::span::{Carrier, SpanContext};
use serde::{Deserialize, Serialize};

/// The kind of a continuous-media stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MediaKind {
    /// Sampled sound.
    Audio,
    /// Moving pictures.
    Video,
    /// Animated graphics.
    Animation,
}

impl fmt::Display for MediaKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MediaKind::Audio => "audio",
            MediaKind::Video => "video",
            MediaKind::Animation => "animation",
        };
        f.write_str(s)
    }
}

/// Identifies a stream within a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u32);

/// One media frame (headers only — payload bytes are simulated by size).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frame {
    /// Which stream.
    pub stream: StreamId,
    /// Sequence number, starting at 0.
    pub seq: u64,
    /// Media kind.
    pub kind: MediaKind,
    /// Capture timestamp at the source.
    pub captured: SimTime,
    /// Wire size in bytes (drives the bandwidth model).
    pub bytes: usize,
    /// Piggybacked telemetry span (the source's `stream.frame` root),
    /// if the source has telemetry on.
    pub span: Option<SpanContext>,
}

impl Carrier for Frame {
    fn span(&self) -> Option<SpanContext> {
        self.span
    }

    fn set_span(&mut self, span: Option<SpanContext>) {
        self.span = span;
    }
}

/// Generates frames at a fixed rate.
///
/// # Examples
///
/// ```
/// use odp_streams::media::{MediaKind, MediaSource, StreamId};
/// use odp_sim::time::SimTime;
///
/// let mut src = MediaSource::new(StreamId(0), MediaKind::Video, 25, 8_000);
/// let f0 = src.next_frame(SimTime::ZERO);
/// let f1 = src.next_frame(SimTime::from_millis(40));
/// assert_eq!(f0.seq, 0);
/// assert_eq!(f1.seq, 1);
/// assert_eq!(src.interval().as_millis(), 40);
/// ```
#[derive(Debug, Clone)]
pub struct MediaSource {
    stream: StreamId,
    kind: MediaKind,
    fps: u32,
    frame_bytes: usize,
    next_seq: u64,
}

impl MediaSource {
    /// Creates a source emitting `fps` frames of `frame_bytes` each per
    /// second.
    ///
    /// # Panics
    ///
    /// Panics if `fps` is zero.
    pub fn new(stream: StreamId, kind: MediaKind, fps: u32, frame_bytes: usize) -> Self {
        assert!(fps > 0, "frame rate must be positive");
        MediaSource {
            stream,
            kind,
            fps,
            frame_bytes,
            next_seq: 0,
        }
    }

    /// The inter-frame interval.
    pub fn interval(&self) -> SimDuration {
        SimDuration::from_micros(1_000_000 / self.fps as u64)
    }

    /// The configured rate.
    pub fn fps(&self) -> u32 {
        self.fps
    }

    /// Re-rates the source (renegotiation outcome).
    ///
    /// # Panics
    ///
    /// Panics if `fps` is zero.
    pub fn set_fps(&mut self, fps: u32) {
        assert!(fps > 0, "frame rate must be positive");
        self.fps = fps;
    }

    /// Produces the next frame, stamped `now`.
    pub fn next_frame(&mut self, now: SimTime) -> Frame {
        let frame = Frame {
            stream: self.stream,
            seq: self.next_seq,
            kind: self.kind,
            captured: now,
            bytes: self.frame_bytes,
            span: None,
        };
        self.next_seq += 1;
        frame
    }

    /// Frames generated so far.
    pub fn generated(&self) -> u64 {
        self.next_seq
    }
}

/// How a frame fared at the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FrameFate {
    /// Arrived in time and was played at its deadline.
    Played,
    /// Arrived after its playout deadline (integrity damaged).
    Late,
    /// Never arrived (counted when a later frame is played).
    Lost,
}

/// Per-frame playout record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlayoutRecord {
    /// The frame sequence number.
    pub seq: u64,
    /// What happened.
    pub fate: FrameFate,
    /// One-way network delay (for played/late frames).
    pub delay: Option<SimDuration>,
}

/// A playout sink: buffers arriving frames and plays each at
/// `captured + playout_delay`.
#[derive(Debug, Clone)]
pub struct MediaSink {
    stream: StreamId,
    playout_delay: SimDuration,
    /// Arrived frames not yet played, keyed by seq.
    buffer: BTreeMap<u64, (Frame, SimTime)>,
    next_play: u64,
    records: Vec<PlayoutRecord>,
}

impl MediaSink {
    /// Creates a sink with the given playout delay.
    pub fn new(stream: StreamId, playout_delay: SimDuration) -> Self {
        MediaSink {
            stream,
            playout_delay,
            buffer: BTreeMap::new(),
            next_play: 0,
            records: Vec::new(),
        }
    }

    /// The configured playout delay.
    pub fn playout_delay(&self) -> SimDuration {
        self.playout_delay
    }

    /// Adjusts the playout delay (continuous synchronisation does this).
    pub fn set_playout_delay(&mut self, delay: SimDuration) {
        self.playout_delay = delay;
    }

    /// Accepts an arriving frame.
    pub fn arrive(&mut self, frame: Frame, now: SimTime) {
        debug_assert_eq!(frame.stream, self.stream);
        if frame.seq >= self.next_play {
            self.buffer.insert(frame.seq, (frame, now));
        } else {
            // Arrived after its slot was already given up: late.
            self.records.push(PlayoutRecord {
                seq: frame.seq,
                fate: FrameFate::Late,
                delay: Some(now.saturating_since(frame.captured)),
            });
        }
    }

    /// Advances playout to `now`: plays every frame whose deadline
    /// (`captured + playout_delay`) has passed, marking gaps as lost.
    /// Returns the new records.
    pub fn play_until(&mut self, now: SimTime) -> Vec<PlayoutRecord> {
        let mut out = Vec::new();
        // The next frame to play is next_play; check whether its deadline
        // has arrived, based on any buffered frame's capture time (frames
        // are equally spaced, so use what we have).
        while let Some((&seq, &(frame, arrived))) = self.buffer.iter().next() {
            let deadline = frame.captured + self.playout_delay;
            if deadline > now {
                break;
            }
            // Frames between next_play and seq never arrived in time: as
            // their successors' deadlines pass, declare them lost.
            while self.next_play < seq {
                let rec = PlayoutRecord {
                    seq: self.next_play,
                    fate: FrameFate::Lost,
                    delay: None,
                };
                self.records.push(rec);
                out.push(rec);
                self.next_play += 1;
            }
            self.buffer.remove(&seq);
            let delay = arrived.saturating_since(frame.captured);
            let fate = if arrived <= deadline {
                FrameFate::Played
            } else {
                FrameFate::Late
            };
            let rec = PlayoutRecord {
                seq,
                fate,
                delay: Some(delay),
            };
            self.records.push(rec);
            out.push(rec);
            self.next_play = seq + 1;
        }
        out
    }

    /// All playout records so far.
    pub fn records(&self) -> &[PlayoutRecord] {
        &self.records
    }

    /// `(played, late, lost)` counts.
    pub fn tallies(&self) -> (u64, u64, u64) {
        let mut played = 0;
        let mut late = 0;
        let mut lost = 0;
        for r in &self.records {
            match r.fate {
                FrameFate::Played => played += 1,
                FrameFate::Late => late += 1,
                FrameFate::Lost => lost += 1,
            }
        }
        (played, late, lost)
    }

    /// Media integrity: fraction of frames played on time.
    pub fn integrity(&self) -> f64 {
        let (played, late, lost) = self.tallies();
        let total = played + late + lost;
        if total == 0 {
            1.0
        } else {
            played as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(seq: u64, captured_ms: u64) -> Frame {
        Frame {
            stream: StreamId(0),
            seq,
            kind: MediaKind::Video,
            captured: SimTime::from_millis(captured_ms),
            bytes: 1000,
            span: None,
        }
    }

    #[test]
    fn source_paces_frames() {
        let mut src = MediaSource::new(StreamId(0), MediaKind::Video, 25, 8000);
        assert_eq!(src.interval(), SimDuration::from_millis(40));
        let f = src.next_frame(SimTime::ZERO);
        assert_eq!(f.bytes, 8000);
        assert_eq!(src.generated(), 1);
    }

    #[test]
    fn in_time_frames_play() {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        sink.arrive(frame(0, 0), SimTime::from_millis(30));
        let recs = sink.play_until(SimTime::from_millis(100));
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].fate, FrameFate::Played);
        assert_eq!(recs[0].delay, Some(SimDuration::from_millis(30)));
        assert_eq!(sink.integrity(), 1.0);
    }

    #[test]
    fn frames_arriving_past_deadline_are_late() {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        sink.arrive(frame(0, 0), SimTime::from_millis(150));
        let recs = sink.play_until(SimTime::from_millis(200));
        assert_eq!(recs[0].fate, FrameFate::Late);
    }

    #[test]
    fn gaps_count_as_lost_when_successors_play() {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        sink.arrive(frame(0, 0), SimTime::from_millis(10));
        // Frame 1 never arrives; frame 2 does.
        sink.arrive(frame(2, 80), SimTime::from_millis(90));
        let recs = sink.play_until(SimTime::from_millis(500));
        let fates: Vec<FrameFate> = recs.iter().map(|r| r.fate).collect();
        assert_eq!(
            fates,
            vec![FrameFate::Played, FrameFate::Lost, FrameFate::Played]
        );
        let (played, late, lost) = sink.tallies();
        assert_eq!((played, late, lost), (2, 0, 1));
        assert!((sink.integrity() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn very_late_arrivals_after_slot_given_up_are_late() {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        sink.arrive(frame(1, 40), SimTime::from_millis(60));
        sink.play_until(SimTime::from_millis(200)); // frame 0 declared lost
        sink.arrive(frame(0, 0), SimTime::from_millis(220));
        let (_, late, lost) = sink.tallies();
        assert_eq!(late, 1, "the stale arrival is recorded late");
        assert_eq!(lost, 1);
    }

    #[test]
    fn playout_not_due_yet_plays_nothing() {
        let mut sink = MediaSink::new(StreamId(0), SimDuration::from_millis(100));
        sink.arrive(frame(0, 0), SimTime::from_millis(10));
        assert!(sink.play_until(SimTime::from_millis(99)).is_empty());
        assert_eq!(sink.play_until(SimTime::from_millis(100)).len(), 1);
    }

    #[test]
    #[should_panic(expected = "frame rate must be positive")]
    fn zero_fps_is_rejected() {
        MediaSource::new(StreamId(0), MediaKind::Audio, 0, 100);
    }

    #[test]
    fn empty_sink_has_full_integrity() {
        let sink = MediaSink::new(StreamId(0), SimDuration::from_millis(1));
        assert_eq!(sink.integrity(), 1.0);
        assert_eq!(sink.tallies(), (0, 0, 0));
    }
}
