//! Bounded-chunk bulk transfer planning.
//!
//! Migrating a cluster (odp-place) or shipping rejoin state moves
//! megabytes through links sized for frames: the transfer must be cut
//! into chunks small enough to interleave with interactive traffic. A
//! [`ChunkPlan`] is the deterministic, side-effect-free description of
//! that cut — which byte ranges travel in which chunk, and how long the
//! whole transfer should take under a byte-rate bound — so senders on
//! any backend (sim or TCP) walk the identical sequence.

use odp_sim::time::SimDuration;

/// A deterministic slicing of `total_bytes` into chunks of at most
/// `chunk_bytes` bytes, the last chunk carrying the remainder.
///
/// # Examples
///
/// ```
/// use odp_streams::transfer::ChunkPlan;
///
/// let plan = ChunkPlan::bounded(10_000, 4_096);
/// assert_eq!(plan.count(), 3);
/// assert_eq!(plan.range_of(2), 8_192..10_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkPlan {
    total_bytes: usize,
    chunk_bytes: usize,
}

impl ChunkPlan {
    /// Plans a transfer of `total_bytes` in chunks of at most
    /// `chunk_bytes` (clamped to at least 1 so the plan always makes
    /// progress).
    pub fn bounded(total_bytes: usize, chunk_bytes: usize) -> Self {
        ChunkPlan {
            total_bytes,
            chunk_bytes: chunk_bytes.max(1),
        }
    }

    /// Total bytes the plan covers.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }

    /// The chunk-size bound.
    pub fn chunk_bytes(&self) -> usize {
        self.chunk_bytes
    }

    /// Number of chunks (zero for an empty transfer).
    pub fn count(&self) -> u32 {
        self.total_bytes.div_ceil(self.chunk_bytes) as u32
    }

    /// The byte range chunk `index` carries. Empty for out-of-range
    /// indices, so a paranoid receiver can range-check with it.
    pub fn range_of(&self, index: u32) -> std::ops::Range<usize> {
        let start = (index as usize).saturating_mul(self.chunk_bytes);
        let start = start.min(self.total_bytes);
        let end = start.saturating_add(self.chunk_bytes).min(self.total_bytes);
        start..end
    }

    /// Minimum duration for the whole transfer at `bytes_per_sec`
    /// (clamped to at least 1 B/s): the pacing floor a sender should
    /// respect so bulk state never starves interactive frames.
    pub fn duration_at(&self, bytes_per_sec: u64) -> SimDuration {
        let rate = bytes_per_sec.max(1);
        let micros = (self.total_bytes as u128 * 1_000_000).div_ceil(rate as u128);
        SimDuration::from_micros(micros.min(u64::MAX as u128) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiple_has_equal_chunks() {
        let plan = ChunkPlan::bounded(8_192, 4_096);
        assert_eq!(plan.count(), 2);
        assert_eq!(plan.range_of(0), 0..4_096);
        assert_eq!(plan.range_of(1), 4_096..8_192);
        assert!(plan.range_of(2).is_empty());
    }

    #[test]
    fn remainder_rides_the_last_chunk() {
        let plan = ChunkPlan::bounded(10, 4);
        assert_eq!(plan.count(), 3);
        assert_eq!(plan.range_of(2), 8..10);
    }

    #[test]
    fn empty_transfer_has_no_chunks() {
        let plan = ChunkPlan::bounded(0, 4_096);
        assert_eq!(plan.count(), 0);
        assert!(plan.range_of(0).is_empty());
        assert_eq!(plan.duration_at(1_000_000), SimDuration::ZERO);
    }

    #[test]
    fn zero_chunk_bound_is_clamped() {
        let plan = ChunkPlan::bounded(3, 0);
        assert_eq!(plan.count(), 3);
        assert_eq!(plan.range_of(1), 1..2);
    }

    #[test]
    fn ranges_tile_the_payload_exactly_once() {
        let plan = ChunkPlan::bounded(65_536 + 17, 4_096);
        let mut covered = 0usize;
        for i in 0..plan.count() {
            let r = plan.range_of(i);
            assert_eq!(r.start, covered, "chunks are contiguous");
            covered = r.end;
        }
        assert_eq!(covered, plan.total_bytes());
    }

    #[test]
    fn duration_respects_the_rate_floor() {
        let plan = ChunkPlan::bounded(1_000_000, 8_192);
        assert_eq!(plan.duration_at(1_000_000), SimDuration::from_secs(1));
        // A zero rate clamps instead of dividing by zero.
        assert!(plan.duration_at(0) > SimDuration::ZERO);
    }
}
