//! Stream interfaces and bindings — the computational-viewpoint model
//! the paper reports ODP adding ("extensions have been made in terms of
//! stream interfaces and stream bindings. The draft standards also
//! include text on quality of service annotations of interfaces",
//! §4.2.2).
//!
//! A [`StreamInterface`] is a typed endpoint (media kind + direction)
//! annotated with a [`QosSpec`]. A [`BindingRegistry`] type-checks and
//! QoS-negotiates bindings between one producer and one or more consumers
//! (multicast bindings for "a video source displayed in a number of
//! distinct video windows simultaneously").

use std::collections::BTreeMap;
use std::fmt;

use odp_sim::net::NodeId;
use serde::{Deserialize, Serialize};

use crate::media::MediaKind;
use crate::qos::QosSpec;

/// Names a stream interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InterfaceId(pub u32);

/// Whether an interface produces or consumes media.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Emits frames.
    Producer,
    /// Receives frames.
    Consumer,
}

/// A QoS-annotated, typed stream endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamInterface {
    /// Its name.
    pub id: InterfaceId,
    /// The hosting node.
    pub node: NodeId,
    /// Media type (compatibility-checked at bind time).
    pub kind: MediaKind,
    /// Producer or consumer.
    pub direction: Direction,
    /// Producer: the QoS it can offer. Consumer: the QoS it requires.
    pub qos: QosSpec,
}

/// Names a binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BindingId(pub u32);

/// The lifecycle of a binding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BindingState {
    /// Running at the agreed contract.
    Established(QosSpec),
    /// Running at a renegotiated (weaker) contract.
    Degraded(QosSpec),
    /// Torn down.
    Failed,
}

/// A bound stream: one producer, N consumers, one agreed contract.
#[derive(Debug, Clone)]
pub struct StreamBinding {
    /// Its name.
    pub id: BindingId,
    /// The producing interface.
    pub producer: InterfaceId,
    /// The consuming interfaces.
    pub consumers: Vec<InterfaceId>,
    /// Current state.
    pub state: BindingState,
}

/// Why a bind attempt failed.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    /// No such interface.
    UnknownInterface(InterfaceId),
    /// Producer/consumer roles are wrong.
    WrongDirection(InterfaceId),
    /// Media kinds differ.
    TypeMismatch {
        /// The producer's kind.
        producer: MediaKind,
        /// The offending consumer's kind.
        consumer: MediaKind,
    },
    /// The producer cannot satisfy a consumer even after degradation.
    QosUnsatisfiable {
        /// The consumer whose requirement failed.
        consumer: InterfaceId,
    },
    /// A binding needs at least one consumer.
    NoConsumers,
    /// Admitting the binding would exceed the producing node's capacity.
    AdmissionDenied {
        /// The producing node.
        node: NodeId,
        /// Its configured budget (frames/s across all its streams).
        budget_fps: u32,
        /// The load the new binding would bring it to.
        would_be_fps: u32,
    },
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownInterface(i) => write!(f, "unknown interface {}", i.0),
            BindError::WrongDirection(i) => write!(f, "interface {} has the wrong direction", i.0),
            BindError::TypeMismatch { producer, consumer } => {
                write!(f, "type mismatch: producer {producer} vs consumer {consumer}")
            }
            BindError::QosUnsatisfiable { consumer } => {
                write!(f, "qos unsatisfiable for consumer {}", consumer.0)
            }
            BindError::NoConsumers => write!(f, "binding requires at least one consumer"),
            BindError::AdmissionDenied { node, budget_fps, would_be_fps } => write!(
                f,
                "admission denied on {node}: {would_be_fps} fps would exceed the {budget_fps} fps budget"
            ),
        }
    }
}

impl std::error::Error for BindError {}

/// Registers interfaces and creates type-checked, QoS-negotiated
/// bindings.
///
/// # Examples
///
/// ```
/// use odp_sim::net::NodeId;
/// use odp_streams::binding::{BindingRegistry, Direction, InterfaceId, StreamInterface};
/// use odp_streams::media::MediaKind;
/// use odp_streams::qos::QosSpec;
///
/// let mut reg = BindingRegistry::new();
/// reg.register(StreamInterface {
///     id: InterfaceId(0), node: NodeId(0), kind: MediaKind::Video,
///     direction: Direction::Producer, qos: QosSpec::video(),
/// });
/// reg.register(StreamInterface {
///     id: InterfaceId(1), node: NodeId(1), kind: MediaKind::Video,
///     direction: Direction::Consumer, qos: QosSpec::video(),
/// });
/// let binding = reg.bind(InterfaceId(0), &[InterfaceId(1)])?;
/// assert_eq!(binding.consumers.len(), 1);
/// # Ok::<(), odp_streams::binding::BindError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct BindingRegistry {
    interfaces: BTreeMap<InterfaceId, StreamInterface>,
    bindings: BTreeMap<BindingId, StreamBinding>,
    /// Per-node admission budgets in aggregate frames/s (a deliberately
    /// simple capacity unit; absent = unlimited).
    budgets: BTreeMap<NodeId, u32>,
    next_binding: u32,
}

impl BindingRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        BindingRegistry::default()
    }

    /// Registers an interface.
    pub fn register(&mut self, iface: StreamInterface) {
        self.interfaces.insert(iface.id, iface);
    }

    /// Looks up an interface.
    pub fn interface(&self, id: InterfaceId) -> Option<&StreamInterface> {
        self.interfaces.get(&id)
    }

    /// Sets a node's admission budget: the aggregate frames/s its live
    /// bindings may carry. Unset nodes are unlimited.
    pub fn set_node_budget_fps(&mut self, node: NodeId, budget_fps: u32) {
        self.budgets.insert(node, budget_fps);
    }

    /// The aggregate contracted frames/s currently admitted on `node`'s
    /// producing interfaces (failed bindings do not count).
    pub fn admitted_fps(&self, node: NodeId) -> u32 {
        self.bindings
            .values()
            .filter_map(|b| {
                let spec = match b.state {
                    BindingState::Established(s) | BindingState::Degraded(s) => s,
                    BindingState::Failed => return None,
                };
                let producer = self.interfaces.get(&b.producer)?;
                (producer.node == node).then_some(spec.throughput_fps)
            })
            .sum()
    }

    /// Binds `producer` to `consumers`: checks directions and media
    /// types, requires the offer to satisfy **every** consumer, and
    /// establishes one shared contract — the pointwise-strictest of the
    /// consumer requirements, since a single multicast stream must meet
    /// them all. (Degrading an established binding is a separate,
    /// explicit renegotiation via [`BindingRegistry::degrade`].)
    ///
    /// # Errors
    ///
    /// See [`BindError`].
    pub fn bind(
        &mut self,
        producer: InterfaceId,
        consumers: &[InterfaceId],
    ) -> Result<StreamBinding, BindError> {
        if consumers.is_empty() {
            return Err(BindError::NoConsumers);
        }
        let p = self
            .interfaces
            .get(&producer)
            .ok_or(BindError::UnknownInterface(producer))?;
        if p.direction != Direction::Producer {
            return Err(BindError::WrongDirection(producer));
        }
        let mut agreed: Option<QosSpec> = None;
        for &cid in consumers {
            let c = self
                .interfaces
                .get(&cid)
                .ok_or(BindError::UnknownInterface(cid))?;
            if c.direction != Direction::Consumer {
                return Err(BindError::WrongDirection(cid));
            }
            if c.kind != p.kind {
                return Err(BindError::TypeMismatch {
                    producer: p.kind,
                    consumer: c.kind,
                });
            }
            if !p.qos.satisfies(&c.qos) {
                return Err(BindError::QosUnsatisfiable { consumer: cid });
            }
            agreed = Some(match agreed {
                None => c.qos,
                Some(prev) => strictest(prev, c.qos),
            });
        }
        let agreed = agreed.ok_or(BindError::NoConsumers)?;
        // Admission control: the producing node must have headroom for
        // the new contract on top of everything already admitted.
        let node = p.node;
        if let Some(&budget) = self.budgets.get(&node) {
            let would_be = self.admitted_fps(node) + agreed.throughput_fps;
            if would_be > budget {
                return Err(BindError::AdmissionDenied {
                    node,
                    budget_fps: budget,
                    would_be_fps: would_be,
                });
            }
        }
        let id = BindingId(self.next_binding);
        self.next_binding += 1;
        let binding = StreamBinding {
            id,
            producer,
            consumers: consumers.to_vec(),
            state: BindingState::Established(agreed),
        };
        self.bindings.insert(id, binding.clone());
        Ok(binding)
    }

    /// Binds a *trader-resolved* producer: registers the interface the
    /// trader handed back (typically hosted on a node this registry has
    /// never seen) and binds it to local consumers in one step. The
    /// normal [`BindingRegistry::bind`] checks all apply, so a stale
    /// trader resolution still fails cleanly rather than establishing a
    /// broken contract.
    ///
    /// # Errors
    ///
    /// See [`BindError`].
    pub fn bind_resolved(
        &mut self,
        producer: StreamInterface,
        consumers: &[InterfaceId],
    ) -> Result<StreamBinding, BindError> {
        self.register(producer);
        self.bind(producer.id, consumers)
    }

    /// Downgrades a binding's contract (renegotiation outcome).
    pub fn degrade(&mut self, id: BindingId, to: QosSpec) -> bool {
        match self.bindings.get_mut(&id) {
            Some(b) => {
                b.state = BindingState::Degraded(to);
                true
            }
            None => false,
        }
    }

    /// Tears a binding down.
    pub fn unbind(&mut self, id: BindingId) -> bool {
        match self.bindings.get_mut(&id) {
            Some(b) => {
                b.state = BindingState::Failed;
                true
            }
            None => false,
        }
    }

    /// Looks up a binding.
    pub fn binding(&self, id: BindingId) -> Option<&StreamBinding> {
        self.bindings.get(&id)
    }
}

/// The pointwise-stricter of two specs (what a shared multicast stream
/// must deliver so every consumer is satisfied).
fn strictest(a: QosSpec, b: QosSpec) -> QosSpec {
    QosSpec {
        throughput_fps: a.throughput_fps.max(b.throughput_fps),
        latency_bound: a.latency_bound.min(b.latency_bound),
        jitter_bound: a.jitter_bound.min(b.jitter_bound),
        loss_bound: a.loss_bound.min(b.loss_bound),
        min_connectivity: a.min_connectivity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(kind_c: MediaKind, qos_c: QosSpec) -> BindingRegistry {
        let mut reg = BindingRegistry::new();
        reg.register(StreamInterface {
            id: InterfaceId(0),
            node: NodeId(0),
            kind: MediaKind::Video,
            direction: Direction::Producer,
            qos: QosSpec::video(),
        });
        reg.register(StreamInterface {
            id: InterfaceId(1),
            node: NodeId(1),
            kind: kind_c,
            direction: Direction::Consumer,
            qos: qos_c,
        });
        reg
    }

    #[test]
    fn successful_bind_establishes_a_contract() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        let b = reg.bind(InterfaceId(0), &[InterfaceId(1)]).unwrap();
        assert!(matches!(b.state, BindingState::Established(_)));
        assert!(reg.binding(b.id).is_some());
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut reg = reg_with(MediaKind::Audio, QosSpec::audio());
        let err = reg.bind(InterfaceId(0), &[InterfaceId(1)]).unwrap_err();
        assert!(matches!(err, BindError::TypeMismatch { .. }));
    }

    #[test]
    fn wrong_direction_is_rejected() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        assert!(matches!(
            reg.bind(InterfaceId(1), &[InterfaceId(0)]),
            Err(BindError::WrongDirection(_))
        ));
    }

    #[test]
    fn unknown_interfaces_and_empty_consumer_lists_error() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        assert!(matches!(
            reg.bind(InterfaceId(9), &[InterfaceId(1)]),
            Err(BindError::UnknownInterface(_))
        ));
        assert!(matches!(
            reg.bind(InterfaceId(0), &[]),
            Err(BindError::NoConsumers)
        ));
    }

    #[test]
    fn multicast_binding_agrees_on_the_strictest_consumer() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        reg.register(StreamInterface {
            id: InterfaceId(2),
            node: NodeId(2),
            kind: MediaKind::Video,
            direction: Direction::Consumer,
            qos: QosSpec::mobile_video(), // much weaker requirement
        });
        let b = reg
            .bind(InterfaceId(0), &[InterfaceId(1), InterfaceId(2)])
            .unwrap();
        let BindingState::Established(spec) = b.state else {
            panic!("expected establishment");
        };
        // The shared stream must meet the *strict* consumer (25 fps,
        // 150 ms) — the tolerant mobile consumer simply gets more.
        assert_eq!(spec.throughput_fps, 25);
        assert_eq!(spec.latency_bound, QosSpec::video().latency_bound);
    }

    #[test]
    fn unsatisfiable_consumer_fails_the_bind() {
        let demanding = QosSpec {
            throughput_fps: 1000,
            ..QosSpec::video()
        };
        let mut reg = reg_with(MediaKind::Video, demanding);
        assert!(matches!(
            reg.bind(InterfaceId(0), &[InterfaceId(1)]),
            Err(BindError::QosUnsatisfiable { .. })
        ));
    }

    #[test]
    fn admission_control_enforces_node_budgets() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        reg.register(StreamInterface {
            id: InterfaceId(2),
            node: NodeId(2),
            kind: MediaKind::Video,
            direction: Direction::Consumer,
            qos: QosSpec::video(),
        });
        // Budget fits exactly one 25 fps video binding.
        reg.set_node_budget_fps(NodeId(0), 40);
        let b1 = reg.bind(InterfaceId(0), &[InterfaceId(1)]).unwrap();
        assert_eq!(reg.admitted_fps(NodeId(0)), 25);
        let err = reg.bind(InterfaceId(0), &[InterfaceId(2)]).unwrap_err();
        assert!(
            matches!(
                err,
                BindError::AdmissionDenied {
                    would_be_fps: 50,
                    budget_fps: 40,
                    ..
                }
            ),
            "{err:?}"
        );
        // Tearing the first binding down frees the budget.
        reg.unbind(b1.id);
        assert_eq!(reg.admitted_fps(NodeId(0)), 0);
        assert!(reg.bind(InterfaceId(0), &[InterfaceId(2)]).is_ok());
    }

    #[test]
    fn unbudgeted_nodes_admit_everything() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        for _ in 0..10 {
            assert!(reg.bind(InterfaceId(0), &[InterfaceId(1)]).is_ok());
        }
        assert_eq!(reg.admitted_fps(NodeId(0)), 250);
    }

    #[test]
    fn bind_resolved_registers_and_binds_a_foreign_producer() {
        // Only the consumer is known locally; the producer arrives from
        // a trader lookup.
        let mut reg = BindingRegistry::new();
        reg.register(StreamInterface {
            id: InterfaceId(1),
            node: NodeId(1),
            kind: MediaKind::Video,
            direction: Direction::Consumer,
            qos: QosSpec::video(),
        });
        let resolved = StreamInterface {
            id: InterfaceId(40),
            node: NodeId(9),
            kind: MediaKind::Video,
            direction: Direction::Producer,
            qos: QosSpec::video(),
        };
        let b = reg.bind_resolved(resolved, &[InterfaceId(1)]).unwrap();
        assert!(matches!(b.state, BindingState::Established(_)));
        assert_eq!(reg.interface(InterfaceId(40)).unwrap().node, NodeId(9));
        // A resolved *consumer* interface still fails direction checks.
        let bogus = StreamInterface {
            id: InterfaceId(41),
            node: NodeId(9),
            kind: MediaKind::Video,
            direction: Direction::Consumer,
            qos: QosSpec::video(),
        };
        assert!(matches!(
            reg.bind_resolved(bogus, &[InterfaceId(1)]),
            Err(BindError::WrongDirection(_))
        ));
    }

    #[test]
    fn degrade_and_unbind_update_state() {
        let mut reg = reg_with(MediaKind::Video, QosSpec::video());
        let b = reg.bind(InterfaceId(0), &[InterfaceId(1)]).unwrap();
        assert!(reg.degrade(b.id, QosSpec::mobile_video()));
        assert!(matches!(
            reg.binding(b.id).unwrap().state,
            BindingState::Degraded(_)
        ));
        assert!(reg.unbind(b.id));
        assert!(matches!(
            reg.binding(b.id).unwrap().state,
            BindingState::Failed
        ));
        assert!(!reg.degrade(BindingId(99), QosSpec::video()));
    }
}
